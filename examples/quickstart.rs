//! Quickstart: build a database, define a workload, run DTA, inspect the
//! recommendation, implement it, and verify with real execution.
//!
//! Run with: `cargo run --release --example quickstart`

use dta::prelude::*;

fn main() {
    // ---- 1. a server with one database -------------------------------
    let mut server = Server::new("production");
    let mut db = Database::new("shop");
    db.add_table(
        Table::new(
            "orders",
            vec![
                Column::new("o_id", ColumnType::BigInt),
                Column::new("o_customer", ColumnType::Int),
                Column::new("o_month", ColumnType::Int),
                Column::new("o_total", ColumnType::Float),
                Column::new("o_note", ColumnType::Str(64)),
            ],
        )
        .with_primary_key(&["o_id"]),
    )
    .unwrap();
    server.create_database(db).unwrap();

    // load 100k rows
    let data = server.table_data_mut("shop", "orders").unwrap();
    for i in 0..100_000i64 {
        data.push_row(vec![
            Value::Int(i),
            Value::Int(i % 5_000),
            Value::Int(i % 12),
            Value::Float((i % 997) as f64 / 10.0),
            Value::Str(format!("order number {i}")),
        ]);
    }

    // ---- 2. the workload (e.g. captured by a profiler) ----------------
    let mut sql = String::new();
    for c in [17, 42, 99, 1234, 4999] {
        sql.push_str(&format!("SELECT o_total FROM orders WHERE o_customer = {c};\n"));
    }
    sql.push_str("SELECT o_month, COUNT(*), SUM(o_total) FROM orders GROUP BY o_month;\n");
    sql.push_str("SELECT o_note FROM orders WHERE o_month = 6 AND o_total > 50.0;\n");
    let workload = Workload::from_sql_file("shop", &sql).unwrap();
    println!("workload: {} statements, {:.0} events", workload.len(), workload.total_events());

    // ---- 3. tune -------------------------------------------------------
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload, &TuningOptions::default()).expect("tuning succeeds");
    println!("\n{result}");

    // ---- 4. implement and verify with actual execution ----------------
    server.deploy(server.raw_configuration());
    let raw_work: f64 = workload
        .items
        .iter()
        .map(|i| server.execute(&i.database, &i.statement).unwrap().work.work_units())
        .sum();

    server.deploy(result.recommendation.clone());
    let tuned_work: f64 = workload
        .items
        .iter()
        .map(|i| server.execute(&i.database, &i.statement).unwrap().work.work_units())
        .sum();

    println!("\nactual execution work: raw = {raw_work:.0}, tuned = {tuned_work:.0}");
    println!(
        "actual improvement: {:.1}% (DTA estimated {:.1}%)",
        (1.0 - tuned_work / raw_work) * 100.0,
        result.expected_improvement() * 100.0
    );
}
