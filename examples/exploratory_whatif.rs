//! Exploratory ("what-if") analysis and user-specified configurations —
//! §6.2 and §6.3 of the paper.
//!
//! The DBA's scenario from §6.2: should the fact table be range
//! partitioned *by month* or *by quarter*? Either is acceptable for
//! manageability; DTA evaluates both as user-specified configurations —
//! without ever materializing anything — and the DBA picks the better
//! one. The chosen design is then exported through the public XML schema
//! and fed back into a second, refining tuning run (§6.3's iterative
//! tuning).
//!
//! Run with: `cargo run --release --example exploratory_whatif`

use dta::advisor::{evaluate_configuration, tune, AlignmentMode, TuningOptions};
use dta::prelude::*;
use dta::xml::{configuration_from_xml, configuration_to_xml};

fn main() {
    // a sales fact table with a date-ish month column
    let mut server = Server::new("prod");
    let mut db = Database::new("sales");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("month", ColumnType::Int), // 0..=11
                Column::new("store", ColumnType::Int),
                Column::new("amount", ColumnType::Float),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    let data = server.table_data_mut("sales", "fact").unwrap();
    for i in 0..120_000i64 {
        data.push_row(vec![
            Value::Int(i),
            Value::Int(i % 12),
            Value::Int(i % 400),
            Value::Float((i % 1009) as f64),
        ]);
    }
    data.set_scale(20.0);

    let workload = Workload::from_sql_file(
        "sales",
        "SELECT store, SUM(amount) FROM fact WHERE month = 3 GROUP BY store;
         SELECT store, SUM(amount) FROM fact WHERE month BETWEEN 0 AND 2 GROUP BY store;
         SELECT COUNT(*) FROM fact WHERE month = 11;
         SELECT amount FROM fact WHERE store = 123;",
    )
    .unwrap();
    let target = TuningTarget::Single(&server);

    // ---- §6.2: month vs quarter, tried without materializing anything ----
    let by_month = Configuration::from_structures([PhysicalStructure::TablePartitioning {
        database: "sales".into(),
        table: "fact".into(),
        scheme: RangePartitioning::new("month", (0..11).map(Value::Int).collect()),
    }]);
    let by_quarter = Configuration::from_structures([PhysicalStructure::TablePartitioning {
        database: "sales".into(),
        table: "fact".into(),
        scheme: RangePartitioning::new("month", vec![Value::Int(2), Value::Int(5), Value::Int(8)]),
    }]);

    let mut best: Option<(&str, Configuration, f64)> = None;
    for (name, user) in [("by month", by_month), ("by quarter", by_quarter)] {
        let options = TuningOptions {
            user_specified: Some(user),
            alignment: AlignmentMode::Lazy,
            ..Default::default()
        };
        let result = tune(&target, &workload, &options).unwrap();
        println!(
            "partitioning {name:10}: expected improvement {:.1}% ({} structures)",
            result.expected_improvement() * 100.0,
            result.recommendation.len()
        );
        let cost = result.recommended_cost;
        if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
            best = Some((name, result.recommendation, cost));
        }
    }
    let (winner, config, _) = best.expect("two candidates evaluated");
    println!("the DBA picks: {winner}");

    // ---- §6.3: evaluate the chosen design in detail ---------------------
    let report =
        evaluate_configuration(&target, &workload, &server.raw_configuration(), &config).unwrap();
    println!("\n{report}");

    // ---- §6.1/§6.3: XML round-trip into a refining run -------------------
    let xml = configuration_to_xml(&config);
    println!("exported configuration ({} bytes of XML)", xml.len());
    let imported = configuration_from_xml(&xml).expect("schema round-trips");
    assert_eq!(imported, config);
    let refined = tune(
        &target,
        &workload,
        &TuningOptions { user_specified: Some(imported), ..Default::default() },
    )
    .unwrap();
    println!(
        "refining run keeps the user design and reaches {:.1}% expected improvement",
        refined.expected_improvement() * 100.0
    );
}
