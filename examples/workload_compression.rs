//! Workload compression — §5.1 of the paper.
//!
//! Generates the SYNT1-style workload (thousands of queries from ~100
//! templates), compresses it, and compares tuning time and recommendation
//! quality with and without compression — Table 3's experiment at
//! example scale.
//!
//! Run with: `cargo run --release --example workload_compression`

use dta::advisor::{tune, workload_cost, TuningOptions};
use dta::prelude::*;
use dta::workload::synt1;

fn main() {
    println!("generating SYNT1 (SetQuery-style) workload...");
    let bench = synt1::build(0.25, 11); // 2000 statements
    let server = &bench.server;
    let workload = &bench.workload;
    println!("workload: {} statements", workload.len());

    // what compression alone does
    let out = compress(workload, CompressionOptions::default());
    println!(
        "compression: {} -> {} statements across {} templates ({}x)",
        out.before,
        out.compressed.len(),
        out.partitions,
        out.compression_ratio() as i64,
    );

    let target = TuningTarget::Single(server);
    let base = server.raw_configuration();
    let base_cost = workload_cost(&target, workload, &base).unwrap();

    for (label, compress_flag) in [("with compression   ", true), ("without compression", false)] {
        server.reset_overhead();
        let options = TuningOptions { compress: compress_flag, ..Default::default() };
        let result = tune(&target, workload, &options).unwrap();
        // quality is judged on the FULL workload either way
        let full = workload_cost(&target, workload, &result.recommendation).unwrap();
        let quality = (1.0 - full / base_cost) * 100.0;
        println!(
            "{label}: tuned {:>5} stmts, {:>8} what-if calls, {:>10.0} work units, quality {quality:.1}%",
            result.statements_tuned, result.whatif_calls, result.tuning_work_units
        );
    }
    println!("\n(the paper's Table 3: SYNT1 compresses ~43x in tuning time at ~1% quality loss)");
}
