//! Production/test-server tuning — §5.3 of the paper.
//!
//! Copies *metadata and statistics only* (never data) from a production
//! server to a test server, simulates the production hardware on the
//! test server, tunes there, and shows (a) that the recommendation is
//! identical to tuning directly on production and (b) how much overhead
//! the production server is spared (Figure 3's measure).
//!
//! Run with: `cargo run --release --example production_test_server`

use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;

fn main() {
    println!("building the production server (TPC-H)...");
    let production = tpch::build_server(tpch::TpchScale::new(0.005, 1.0), 7);
    let workload = tpch::workload();
    let options = TuningOptions { ..Default::default() };

    // ---- tune directly on production -----------------------------------
    production.reset_overhead();
    let on_prod = tune(&TuningTarget::Single(&production), &workload, &options).unwrap();
    let prod_only_overhead = production.overhead_units();
    println!(
        "tuning on production alone: {:.0} work units of overhead, {:.1}% expected improvement",
        prod_only_overhead,
        on_prod.expected_improvement() * 100.0
    );

    // ---- set up the test server: metadata + statistics, no data --------
    let mut test = Server::new("test").with_hardware(HardwareParams::test_default());
    prepare_test_server(&production, &mut test).unwrap();
    println!(
        "test server prepared: {} tables imported, {} bytes of data copied",
        test.catalog().database("tpch").unwrap().table_count(),
        test.total_data_bytes() // metadata + statistics only: zero data pages
    );

    // ---- tune via the test server --------------------------------------
    production.reset_overhead();
    test.reset_overhead();
    let target = TuningTarget::ProdTest { production: &production, test: &test };
    let via_test = tune(&target, &workload, &options).unwrap();
    let prod_overhead = production.overhead_units();
    let test_overhead = test.overhead_units();

    println!(
        "tuning via test server: production overhead {:.0} units, test server {:.0} units",
        prod_overhead, test_overhead
    );
    println!(
        "reduction in production-server overhead: {:.0}%  (paper's Figure 3: 60-90%)",
        (1.0 - prod_overhead / prod_only_overhead) * 100.0
    );
    println!(
        "expected improvement via test server: {:.1}% (vs {:.1}% directly)",
        via_test.expected_improvement() * 100.0,
        on_prod.expected_improvement() * 100.0
    );

    // the recommendations agree because the test server simulates the
    // production hardware and owns identical statistics
    let mut a: Vec<String> = on_prod.recommendation.iter().map(|s| s.name()).collect();
    let mut b: Vec<String> = via_test.recommendation.iter().map(|s| s.name()).collect();
    a.sort();
    b.sort();
    println!(
        "recommendations identical: {}",
        if a == b { "yes" } else { "no (statistics sampled at different times)" }
    );
}
