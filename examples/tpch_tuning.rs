//! TPC-H tuning — §7.2 of the paper in miniature.
//!
//! Generates a TPC-H database, tunes the 22-query benchmark workload
//! with a 3× storage bound (as in the paper), implements the
//! recommendation, and compares DTA's *estimated* improvement against
//! the improvement in *actual* execution work.
//!
//! Run with: `cargo run --release --example tpch_tuning`

use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;

fn main() {
    println!("generating TPC-H data (materialized SF 0.005)...");
    let server = tpch::build_server(tpch::TpchScale::new(0.005, 1.0), 42);
    let workload = tpch::workload();
    let raw = server.raw_configuration();

    // storage bound: three times the raw data size (§7.2)
    let storage = server.total_data_bytes() * 3;
    let options = TuningOptions { storage_bytes: Some(storage), ..Default::default() };

    println!("tuning the 22-query workload...");
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload, &options).expect("tuning succeeds");
    println!("\n{result}");

    // ---- estimated vs actual (warm runs: best-of semantics are moot in
    // a deterministic simulator; one run per query suffices) ------------
    println!("executing all 22 queries under both configurations...");
    let mut raw_work = 0.0;
    let mut tuned_work = 0.0;
    server.deploy(raw.clone());
    for (i, item) in workload.items.iter().enumerate() {
        match server.execute(&item.database, &item.statement) {
            Ok(res) => raw_work += res.work.work_units(),
            Err(e) => println!("  Q{} raw run failed: {e}", i + 1),
        }
    }
    server.deploy(result.recommendation.clone());
    for (i, item) in workload.items.iter().enumerate() {
        match server.execute(&item.database, &item.statement) {
            Ok(res) => tuned_work += res.work.work_units(),
            Err(e) => println!("  Q{} tuned run failed: {e}", i + 1),
        }
    }

    let actual = (1.0 - tuned_work / raw_work) * 100.0;
    println!("\n=== TPC-H summary (paper §7.2: expected 88%, actual 83%) ===");
    println!(
        "expected improvement (optimizer-estimated): {:.1}%",
        result.expected_improvement() * 100.0
    );
    println!("actual improvement (execution work):        {actual:.1}%");
}
