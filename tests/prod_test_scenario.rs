//! §5.3 production/test-server scenario, end to end.

use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;

#[test]
fn tuning_via_test_server_matches_production_and_sheds_load() {
    let production = tpch::build_server(tpch::TpchScale::tiny(), 5);
    let workload = tpch::workload();
    let options = TuningOptions { parallel_workers: 1, ..Default::default() };

    // 1) tune directly on production, measuring its overhead
    production.reset_overhead();
    let direct = tune(&TuningTarget::Single(&production), &workload, &options).unwrap();
    let direct_overhead = production.overhead_units();
    assert!(direct_overhead > 0.0);

    // 2) prepare a (weaker) test server: metadata + statistics only
    let mut test = Server::new("test").with_hardware(HardwareParams::test_default());
    prepare_test_server(&production, &mut test).unwrap();
    // hardware simulation happened
    assert_eq!(test.hardware(), production.hardware());
    // zero data was copied
    for (db, table) in [("tpch", "lineitem"), ("tpch", "orders"), ("tpch", "customer")] {
        assert_eq!(test.store().table(db, table).unwrap().rows(), 0, "{table} has data!");
    }

    // 3) tune via the pair
    production.reset_overhead();
    test.reset_overhead();
    let target = TuningTarget::ProdTest { production: &production, test: &test };
    let via_test = tune(&target, &workload, &options).unwrap();
    let prod_overhead = production.overhead_units();

    // production only pays for statistics creation — a large reduction
    assert!(
        prod_overhead < direct_overhead * 0.6,
        "overhead reduction too small: {prod_overhead} vs {direct_overhead}"
    );
    // and the test server did real work
    assert!(test.overhead_units() > 0.0);

    // 4) recommendation quality matches direct tuning closely (the test
    //    server owns the same statistics and simulated hardware; small
    //    divergence can come from sampling order)
    assert!(
        (via_test.expected_improvement() - direct.expected_improvement()).abs() < 0.15,
        "via test {:.3} vs direct {:.3}",
        via_test.expected_improvement(),
        direct.expected_improvement()
    );
}

#[test]
fn what_if_costs_identical_after_import() {
    // the key §5.3 claim: with metadata + statistics + hardware simulated,
    // the optimizer behaves as it would on production
    let production = tpch::build_server(tpch::TpchScale::tiny(), 6);
    production.create_statistics(&[
        dta::stats::StatKey::new("tpch", "lineitem", &["l_shipdate"]),
        dta::stats::StatKey::new("tpch", "orders", &["o_orderdate"]),
    ]);
    let mut test = Server::new("test");
    prepare_test_server(&production, &mut test).unwrap();

    let config = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
        "tpch",
        "lineitem",
        &["l_shipdate"],
        &["l_extendedprice", "l_discount", "l_quantity"],
    ))]);
    for item in tpch::workload().items.iter().take(8) {
        let p = production.whatif(&item.database, &item.statement, &config).unwrap();
        let t = test.whatif(&item.database, &item.statement, &config).unwrap();
        assert!(
            (p.cost - t.cost).abs() < 1e-6,
            "costs diverge for {}: {} vs {}",
            item.statement,
            p.cost,
            t.cost
        );
    }
}
