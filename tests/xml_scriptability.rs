//! §6 scriptability: the whole tuning loop driven through the public XML
//! schema — workload in, options in, recommendation out, recommendation
//! back in as a user-specified configuration for a refining run.

use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::xml;

fn setup() -> (Server, Workload) {
    let mut server = Server::new("s");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "t",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("pad", ColumnType::Str(40)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    let data = server.table_data_mut("d", "t").unwrap();
    for i in 0..30_000i64 {
        data.push_row(vec![
            Value::Int(i),
            Value::Int(i % 300),
            Value::Int(i % 10),
            Value::Str(format!("{i:040}")),
        ]);
    }
    data.set_scale(20.0);
    let workload = Workload::from_sql_file(
        "d",
        "SELECT pad FROM t WHERE a = 17;
         SELECT pad FROM t WHERE a = 100;
         SELECT g, COUNT(*) FROM t WHERE a BETWEEN 10 AND 60 GROUP BY g;",
    )
    .unwrap();
    (server, workload)
}

#[test]
fn full_xml_loop() {
    let (server, workload) = setup();

    // ship the workload as XML (as another tool would)
    let workload_xml = xml::workload_to_xml(&workload);
    let workload2 = xml::workload_from_xml(&workload_xml).expect("workload parses back");
    assert_eq!(workload, workload2);

    // ship options as XML
    let options = TuningOptions::default().with_storage_mb(500);
    let options_xml = xml::options_to_xml(&options);
    let options2 = xml::options_from_xml(&options_xml).expect("options parse back");
    assert_eq!(options2.storage_bytes, options.storage_bytes);

    // tune with the deserialized inputs
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload2, &options2).expect("tuning succeeds");
    assert!(result.expected_improvement() > 0.3);

    // serialize the full output; recover the recommendation
    let out_xml = xml::result_to_xml(&result);
    let recommendation = xml::schema::recommendation_from_output(&out_xml).expect("output parses");
    assert_eq!(recommendation, result.recommendation);

    // feed it back in as a user-specified configuration (§6.3 iterative
    // tuning): the refining run must honor every structure
    let refine_options =
        TuningOptions { user_specified: Some(recommendation.clone()), ..TuningOptions::default() };
    let refined = tune(&target, &workload2, &refine_options).expect("refining run succeeds");
    for s in recommendation.iter() {
        assert!(refined.recommendation.contains(s), "refinement dropped {}", s.name());
    }
    // and it can only get better (or stay equal)
    assert!(refined.recommended_cost <= result.recommended_cost * 1.001);
}

/// §9 robustness: a budget-exhausted session shipped through the XML
/// checkpoint schema — as a script would persist it between invocations —
/// resumes to the byte-identical answer of an uninterrupted run.
#[test]
fn checkpoint_xml_roundtrip_resumes_byte_identically() {
    let (server, workload) = setup();
    let target = TuningTarget::Single(&server);
    let options =
        TuningOptions { work_budget_units: Some(2), compress: false, ..TuningOptions::default() };

    let interrupted = tune(&target, &workload, &options).expect("budgeted run succeeds");
    let checkpoint = interrupted.checkpoint.as_deref().expect("a 2-unit budget must exhaust");

    // persist → reload through the public XML schema
    let cp_xml = xml::checkpoint_to_xml(checkpoint);
    let restored = xml::checkpoint_from_xml(&cp_xml).expect("checkpoint parses back");
    assert_eq!(xml::checkpoint_to_xml(&restored), cp_xml, "re-serialization drifted");

    // resume from the reloaded checkpoint; compare to an uninterrupted run
    let resumed = tune_resume(&target, &restored, None).expect("resumed run succeeds");
    let uninterrupted =
        tune(&target, &workload, &TuningOptions { work_budget_units: None, ..options })
            .expect("uninterrupted run succeeds");

    assert_eq!(resumed.completion, Completion::Complete);
    assert_eq!(
        resumed.recommendation.to_string(),
        uninterrupted.recommendation.to_string(),
        "resume changed the recommendation"
    );
    assert_eq!(resumed.recommended_cost.to_bits(), uninterrupted.recommended_cost.to_bits());
    assert_eq!(resumed.base_cost.to_bits(), uninterrupted.base_cost.to_bits());
}

/// A corrupted checkpoint yields a typed schema error — never a panic,
/// never a half-resumed session.
#[test]
fn corrupted_checkpoint_xml_is_a_typed_error() {
    let (server, workload) = setup();
    let target = TuningTarget::Single(&server);
    let options =
        TuningOptions { work_budget_units: Some(2), compress: false, ..TuningOptions::default() };
    let interrupted = tune(&target, &workload, &options).unwrap();
    let cp_xml = xml::checkpoint_to_xml(interrupted.checkpoint.as_deref().unwrap());

    // structural damage: drop the consumed-units ledger
    let damaged = cp_xml.replacen("consumedUnits", "consumedUnitz", 1);
    assert_ne!(damaged, cp_xml, "fixture no longer matches the schema");
    let err = xml::checkpoint_from_xml(&damaged).expect_err("damage must be detected");
    let msg = err.to_string();
    assert!(!msg.is_empty());

    // truncation: cut the document in half
    let err = xml::checkpoint_from_xml(&cp_xml[..cp_xml.len() / 2])
        .expect_err("truncation must be detected");
    assert!(!err.to_string().is_empty());
}

#[test]
fn configuration_xml_handles_every_structure_kind() {
    let (server, workload) = setup();
    let target = TuningTarget::Single(&server);
    // force views + partitioning into the recommendation space
    let options = TuningOptions::default();
    let result = tune(&target, &workload, &options).unwrap();
    let xml_text = xml::configuration_to_xml(&result.recommendation);
    let parsed = xml::configuration_from_xml(&xml_text).unwrap();
    assert_eq!(parsed, result.recommendation, "\n{xml_text}");
    // the XML is also valid input for evaluation on the server
    let errors = parsed.validate(server.catalog());
    assert!(errors.is_empty(), "{errors:?}");
}
