//! Property-based tests on cross-crate invariants.

use dta::prelude::*;
use dta::sql::{parse_statement, signature};
use dta::stats::Histogram;
use proptest::prelude::*;

// ---- SQL: parse → print → parse is the identity -------------------------

/// A generator of well-formed SELECT statements in the dialect.
fn arb_select() -> impl Strategy<Value = String> {
    let ident = prop::sample::select(vec!["a", "b", "c", "x", "y"]);
    let table = prop::sample::select(vec!["t", "u", "orders"]);
    let cmp = prop::sample::select(vec!["=", "<", "<=", ">", ">=", "<>"]);
    (
        prop::collection::vec(ident.clone(), 1..4),
        table,
        prop::option::of((ident.clone(), cmp, -1000i64..1000)),
        prop::option::of(ident.clone()),
        prop::option::of(ident),
        any::<bool>(),
    )
        .prop_map(|(cols, table, pred, group, order, distinct)| {
            let mut sql = String::from("SELECT ");
            if distinct {
                sql.push_str("DISTINCT ");
            }
            sql.push_str(&cols.join(", "));
            sql.push_str(&format!(" FROM {table}"));
            if let Some((c, op, v)) = pred {
                sql.push_str(&format!(" WHERE {c} {op} {v}"));
            }
            if let Some(g) = group {
                // grouped variant replaces the whole statement
                sql = format!("SELECT {g}, COUNT(*) FROM {table} GROUP BY {g}");
            }
            if let Some(o) = order {
                if !sql.contains("GROUP BY") {
                    sql.push_str(&format!(" ORDER BY {o}"));
                }
            }
            sql
        })
}

proptest! {
    #[test]
    fn sql_roundtrip(sql in arb_select()) {
        let stmt = parse_statement(&sql).expect("generated SQL parses");
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed).expect("printed SQL parses");
        prop_assert_eq!(&stmt, &reparsed);
        // and signatures are stable across the round trip
        prop_assert_eq!(signature(&stmt), signature(&reparsed));
    }

    #[test]
    fn histogram_selectivities_are_probabilities(
        values in prop::collection::vec(-10_000i64..10_000, 0..500),
        probe in -12_000i64..12_000,
    ) {
        let h = Histogram::build(values.iter().copied().map(Value::Int).collect());
        let v = Value::Int(probe);
        for s in [
            h.selectivity_eq(&v),
            h.selectivity_lt(&v, false),
            h.selectivity_lt(&v, true),
            h.selectivity_gt(&v, false),
            h.selectivity_gt(&v, true),
        ] {
            prop_assert!((0.0..=1.0).contains(&s), "selectivity {} out of range", s);
        }
        // lt + gt partition the non-null space (within rounding)
        if !h.is_empty() {
            let total = h.selectivity_lt(&v, true) + h.selectivity_gt(&v, false);
            prop_assert!(total <= 1.0 + 1e-6, "lt+gt = {}", total);
        }
    }

    #[test]
    fn histogram_eq_matches_exact_frequency(
        values in prop::collection::vec(0i64..50, 1..400),
        probe in 0i64..50,
    ) {
        let n = values.len() as f64;
        let h = Histogram::build(values.iter().copied().map(Value::Int).collect());
        let actual = values.iter().filter(|&&x| x == probe).count() as f64 / n;
        let est = h.selectivity_eq(&Value::Int(probe));
        // small domains build exact histograms (≤200 buckets): estimates
        // should be very close to truth
        prop_assert!((est - actual).abs() < 0.05, "est {} vs actual {}", est, actual);
    }

    #[test]
    fn partitioning_covers_domain(
        mut boundaries in prop::collection::vec(-1000i64..1000, 0..10),
        probe in -1500i64..1500,
    ) {
        boundaries.sort();
        let p = RangePartitioning::new("c", boundaries.iter().copied().map(Value::Int).collect());
        let idx = p.partition_of(&Value::Int(probe));
        prop_assert!(idx < p.partition_count());
        // a point range touches exactly one partition
        let v = Value::Int(probe);
        prop_assert_eq!(p.partitions_touched(Some(&v), Some(&v)), 1);
        // the unbounded range touches all of them
        prop_assert_eq!(p.partitions_touched(None, None), p.partition_count());
    }

    #[test]
    fn configuration_set_semantics(names in prop::collection::vec("[a-d]", 1..8)) {
        // adding the same structures in any order yields the same set
        let mut cfg = Configuration::new();
        for n in &names {
            cfg.add(PhysicalStructure::Index(Index::non_clustered("db", "t", &[n.as_str()], &[])));
        }
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(cfg.len(), unique.len());
        // union is idempotent
        let u = cfg.union(&cfg);
        prop_assert_eq!(u.len(), cfg.len());
    }
}

// ---- signatures: instances of one template always collapse ---------------

proptest! {
    #[test]
    fn signatures_ignore_constants(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let s1 = parse_statement(&format!("SELECT x FROM t WHERE a = {a} AND b < {b}")).unwrap();
        let s2 = parse_statement("SELECT x FROM t WHERE a = 0 AND b < 1").unwrap();
        prop_assert_eq!(signature(&s1), signature(&s2));
    }
}
