//! Property-style tests on cross-crate invariants.
//!
//! `proptest` is unavailable offline, so each property is checked over a
//! few hundred seeded-random cases generated with the in-tree `rand`
//! shim — same invariants, deterministic inputs.

use dta::prelude::*;
use dta::sql::{parse_statement, signature};
use dta::stats::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 300;

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// A generator of well-formed SELECT statements in the dialect.
fn arb_select(rng: &mut StdRng) -> String {
    let idents = ["a", "b", "c", "x", "y"];
    let tables = ["t", "u", "orders"];
    let cmps = ["=", "<", "<=", ">", ">=", "<>"];
    let table = pick(rng, &tables);
    let cols: Vec<&str> = (0..rng.gen_range(1..4usize)).map(|_| pick(rng, &idents)).collect();

    if rng.gen_bool(0.3) {
        // grouped variant
        let g = pick(rng, &idents);
        return format!("SELECT {g}, COUNT(*) FROM {table} GROUP BY {g}");
    }
    let mut sql = String::from("SELECT ");
    if rng.gen_bool(0.5) {
        sql.push_str("DISTINCT ");
    }
    sql.push_str(&cols.join(", "));
    sql.push_str(&format!(" FROM {table}"));
    if rng.gen_bool(0.5) {
        let c = pick(rng, &idents);
        let op = pick(rng, &cmps);
        let v = rng.gen_range(-1000i64..1000);
        sql.push_str(&format!(" WHERE {c} {op} {v}"));
    }
    if rng.gen_bool(0.5) {
        let o = pick(rng, &idents);
        sql.push_str(&format!(" ORDER BY {o}"));
    }
    sql
}

// ---- SQL: parse → print → parse is the identity -------------------------

#[test]
fn sql_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD7A0);
    for _ in 0..CASES {
        let sql = arb_select(&mut rng);
        let stmt = parse_statement(&sql).expect("generated SQL parses");
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed).expect("printed SQL parses");
        assert_eq!(stmt, reparsed, "round trip changed {sql:?}");
        // and signatures are stable across the round trip
        assert_eq!(signature(&stmt), signature(&reparsed));
    }
}

// ---- histograms ----------------------------------------------------------

#[test]
fn histogram_selectivities_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0xD7A1);
    for _ in 0..CASES {
        let n = rng.gen_range(0..500usize);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-10_000i64..10_000)).collect();
        let probe = rng.gen_range(-12_000i64..12_000);
        let h = Histogram::build(values.iter().copied().map(Value::Int).collect());
        let v = Value::Int(probe);
        for s in [
            h.selectivity_eq(&v),
            h.selectivity_lt(&v, false),
            h.selectivity_lt(&v, true),
            h.selectivity_gt(&v, false),
            h.selectivity_gt(&v, true),
        ] {
            assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        }
        // lt + gt partition the non-null space (within rounding)
        if !h.is_empty() {
            let total = h.selectivity_lt(&v, true) + h.selectivity_gt(&v, false);
            assert!(total <= 1.0 + 1e-6, "lt+gt = {total}");
        }
    }
}

#[test]
fn histogram_eq_matches_exact_frequency() {
    let mut rng = StdRng::seed_from_u64(0xD7A2);
    for _ in 0..CASES {
        let n = rng.gen_range(1..400usize);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..50)).collect();
        let probe = rng.gen_range(0i64..50);
        let h = Histogram::build(values.iter().copied().map(Value::Int).collect());
        let actual = values.iter().filter(|&&x| x == probe).count() as f64 / n as f64;
        let est = h.selectivity_eq(&Value::Int(probe));
        // small domains build exact histograms (≤200 buckets): estimates
        // should be very close to truth
        assert!((est - actual).abs() < 0.05, "est {est} vs actual {actual}");
    }
}

// ---- partitioning --------------------------------------------------------

#[test]
fn partitioning_covers_domain() {
    let mut rng = StdRng::seed_from_u64(0xD7A3);
    for _ in 0..CASES {
        let n = rng.gen_range(0..10usize);
        let mut boundaries: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        boundaries.sort_unstable();
        let probe = rng.gen_range(-1500i64..1500);
        let p = RangePartitioning::new("c", boundaries.iter().copied().map(Value::Int).collect());
        let idx = p.partition_of(&Value::Int(probe));
        assert!(idx < p.partition_count());
        // a point range touches exactly one partition
        let v = Value::Int(probe);
        assert_eq!(p.partitions_touched(Some(&v), Some(&v)), 1);
        // the unbounded range touches all of them
        assert_eq!(p.partitions_touched(None, None), p.partition_count());
    }
}

// ---- configurations ------------------------------------------------------

#[test]
fn configuration_set_semantics() {
    let mut rng = StdRng::seed_from_u64(0xD7A4);
    for _ in 0..CASES {
        let n = rng.gen_range(1..8usize);
        let names: Vec<&str> = (0..n).map(|_| pick(&mut rng, &["a", "b", "c", "d"])).collect();
        // adding the same structures in any order yields the same set
        let mut cfg = Configuration::new();
        for name in &names {
            cfg.add(PhysicalStructure::Index(Index::non_clustered("db", "t", &[name], &[])));
        }
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(cfg.len(), unique.len());
        // union is idempotent
        let u = cfg.union(&cfg);
        assert_eq!(u.len(), cfg.len());
    }
}

// ---- signatures: instances of one template always collapse ---------------

#[test]
fn signatures_ignore_constants() {
    let mut rng = StdRng::seed_from_u64(0xD7A5);
    for _ in 0..CASES {
        let a = rng.gen_range(-10_000i64..10_000);
        let b = rng.gen_range(-10_000i64..10_000);
        let s1 = parse_statement(&format!("SELECT x FROM t WHERE a = {a} AND b < {b}")).unwrap();
        let s2 = parse_statement("SELECT x FROM t WHERE a = 0 AND b < 1").unwrap();
        assert_eq!(signature(&s1), signature(&s2));
    }
}
