//! Whole-system integration: generate TPC-H, tune it, implement the
//! recommendation, and verify with real execution that the improvement
//! is real — the paper's §7.2 loop at test scale.

use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;

#[test]
fn tpch_tune_deploy_execute() {
    let server = tpch::build_server(tpch::TpchScale::tiny(), 99);
    let workload = tpch::workload();
    let target = TuningTarget::Single(&server);

    let storage = server.total_data_bytes() * 3;
    let options =
        TuningOptions { storage_bytes: Some(storage), parallel_workers: 2, ..Default::default() };
    let result = tune(&target, &workload, &options).expect("TPC-H tunes");

    assert!(
        result.expected_improvement() > 0.4,
        "expected >40% improvement on TPC-H, got {:.1}%",
        result.expected_improvement() * 100.0
    );
    assert!(result.storage_bytes <= storage, "storage bound violated");

    // implement and execute everything under both configurations
    let mut raw_work = 0.0;
    let mut tuned_work = 0.0;
    let mut raw_rows = Vec::new();
    let mut tuned_rows = Vec::new();
    server.deploy(server.raw_configuration());
    for item in &workload.items {
        let res = server.execute(&item.database, &item.statement).expect("raw run");
        raw_work += res.work.work_units();
        raw_rows.push(res.rows.len());
    }
    server.deploy(result.recommendation.clone());
    for item in &workload.items {
        let res = server.execute(&item.database, &item.statement).expect("tuned run");
        tuned_work += res.work.work_units();
        tuned_rows.push(res.rows.len());
    }

    // 1) answers must not change with physical design
    assert_eq!(raw_rows, tuned_rows, "physical design changed query answers!");

    // 2) the actual improvement is substantial and within shouting
    //    distance of the estimate (§7.2: 88% estimated vs 83% actual)
    let actual = 1.0 - tuned_work / raw_work;
    assert!(actual > 0.25, "actual improvement only {:.1}%", actual * 100.0);
    let gap = (result.expected_improvement() - actual).abs();
    assert!(gap < 0.45, "estimate/actual gap too wide: {gap:.2}");
}

#[test]
fn multi_database_tuning() {
    // DTA tunes workloads spanning several databases simultaneously (§2.1)
    let mut server = Server::new("multi");
    for dbname in ["db1", "db2"] {
        let mut db = Database::new(dbname);
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::new("k", ColumnType::BigInt),
                    Column::new("a", ColumnType::Int),
                    Column::new("pad", ColumnType::Str(50)),
                ],
            )
            .with_primary_key(&["k"]),
        )
        .unwrap();
        server.create_database(db).unwrap();
        let data = server.table_data_mut(dbname, "t").unwrap();
        for i in 0..20_000i64 {
            data.push_row(vec![Value::Int(i), Value::Int(i % 500), Value::Str(format!("{i:050}"))]);
        }
        data.set_scale(20.0);
    }
    let mut items = Vec::new();
    for i in 0..10 {
        items.push(WorkloadItem::new(
            "db1",
            parse_statement(&format!("SELECT pad FROM t WHERE a = {}", i * 7)).unwrap(),
        ));
        items.push(WorkloadItem::new(
            "db2",
            parse_statement(&format!("SELECT pad FROM t WHERE a = {}", i * 13)).unwrap(),
        ));
    }
    let workload = Workload::from_items(items);
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload, &TuningOptions::default()).unwrap();
    // structures recommended in BOTH databases
    let dbs: std::collections::BTreeSet<&str> = result
        .recommendation
        .difference(&server.raw_configuration())
        .iter()
        .map(|s| s.database())
        .collect();
    assert!(dbs.contains("db1") && dbs.contains("db2"), "{dbs:?}");
    assert!(result.expected_improvement() > 0.5);
}

// Figure 4/5 at test scale. `events_fraction`/`max_items` size the
// SYNT1 statement pool; `quality_slack` is how far DTA's improvement
// may trail ITW's (small pools are noisier). The "DTA does less tuning
// work than ITW" shape is scale-dependent — ITW's per-query tuning
// overtakes DTA's pool enumeration only as the statement count grows —
// so `assert_work` is on for the full pool and off for the smoke.
fn itw_vs_dta_shapes(
    events_fraction: f64,
    max_items: usize,
    quality_slack: f64,
    assert_work: bool,
) {
    let mut bench = dta::workload::synt1::build(events_fraction, 3);
    bench.workload.items.truncate(max_items);
    let target = TuningTarget::Single(&bench.server);
    bench.server.reset_overhead();
    let dta_result =
        tune(&target, &bench.workload, &TuningOptions { ..Default::default() }).unwrap();
    let itw_result = dta::baselines::tune_itw(&target, &bench.workload, None).unwrap();

    if assert_work {
        assert!(
            dta_result.tuning_work_units < itw_result.tuning_work_units,
            "DTA {} !< ITW {}",
            dta_result.tuning_work_units,
            itw_result.tuning_work_units
        );
    }
    // quality on the full workload within a few points of each other,
    // and both tuners must find real improvements
    let base = bench.server.raw_configuration();
    let base_cost = dta::advisor::workload_cost(&target, &bench.workload, &base).unwrap();
    let q = |cfg: &Configuration| {
        1.0 - dta::advisor::workload_cost(&target, &bench.workload, cfg).unwrap() / base_cost
    };
    let dq = q(&dta_result.recommendation);
    let iq = q(&itw_result.recommendation);
    assert!(dq > 0.2, "DTA improvement only {dq:.3}");
    assert!(iq > 0.2, "ITW improvement only {iq:.3}");
    assert!(dq >= iq - quality_slack, "DTA quality {dq:.3} fell too far below ITW {iq:.3}");
}

#[test]
#[ignore = "full 640-statement pool runs ~40 min in debug (see the PR 4 entry in \
            CHANGES.md); itw_vs_dta_shapes_smoke covers the quality shape in CI time"]
fn itw_vs_dta_shapes_hold() {
    itw_vs_dta_shapes(0.08, usize::MAX, 0.08, true); // 640 statements
}

#[test]
fn itw_vs_dta_shapes_smoke() {
    // trimmed pool: 24 of the 0.01-fraction statements. Quality shapes
    // only — at this scale DTA's pool enumeration costs more than ITW's
    // per-query tuning, so the Figure 4 work comparison stays in the
    // (ignored) full-pool test above.
    itw_vs_dta_shapes(0.01, 24, 0.10, false);
}
