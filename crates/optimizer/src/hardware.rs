//! Hardware parameters the cost model is sensitive to.
//!
//! §5.3: "the hardware parameters of production server that are modeled
//! by the query optimizer ... need to be appropriately simulated on the
//! test server. For example, since query optimizer's cost model considers
//! the number of CPUs and the available memory, these parameters need to
//! be part of the interface that DTA uses to make a what-if call."

/// CPU and memory characteristics of the server being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareParams {
    /// Number of CPUs available for parallel operators.
    pub cpus: u32,
    /// Memory available to query execution, in bytes. Bounds hash tables
    /// and in-memory sorts; exceeding it spills.
    pub memory_bytes: u64,
}

impl HardwareParams {
    /// A modest production server: 4 CPUs, 256 MB of query memory.
    pub fn production_default() -> Self {
        Self { cpus: 4, memory_bytes: 256 << 20 }
    }

    /// A small test server: 1 CPU, 64 MB.
    pub fn test_default() -> Self {
        Self { cpus: 1, memory_bytes: 64 << 20 }
    }

    /// Degree of parallelism usable by a large scan or join: capped so
    /// small inputs do not get imaginary speedups.
    pub fn parallel_factor(&self, input_pages: f64) -> f64 {
        if input_pages < 512.0 || self.cpus <= 1 {
            1.0
        } else {
            f64::from(self.cpus.min(8))
        }
    }

    /// Memory available in pages.
    pub fn memory_pages(&self) -> u64 {
        self.memory_bytes / dta_storage::PAGE_SIZE
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        Self::production_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_applies_only_to_large_inputs() {
        let h = HardwareParams { cpus: 4, memory_bytes: 1 << 30 };
        assert_eq!(h.parallel_factor(10.0), 1.0);
        assert_eq!(h.parallel_factor(10_000.0), 4.0);
        let single = HardwareParams { cpus: 1, memory_bytes: 1 << 30 };
        assert_eq!(single.parallel_factor(10_000.0), 1.0);
    }

    #[test]
    fn memory_pages() {
        let h = HardwareParams { cpus: 1, memory_bytes: 8192 * 100 };
        assert_eq!(h.memory_pages(), 100);
    }

    #[test]
    fn defaults_differ() {
        assert_ne!(HardwareParams::production_default(), HardwareParams::test_default());
    }
}
