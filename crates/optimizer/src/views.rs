//! Materialized-view matching.
//!
//! A view is usable for a query when the query's entire join graph is the
//! view's join graph (full-match): same table set, same equi-join pairs,
//! and the view produces every column the query still needs. Grouped
//! views additionally require the view's group-by to subsume the query's
//! group-by plus all filter columns, and the query's aggregates to be
//! derivable from the view's (directly, or by re-aggregation for
//! SUM/COUNT/MIN/MAX when the view groups more finely).

use crate::access::{elimination_fraction, PlanContext, CPU_W};
use crate::plan::PlanNode;
use crate::query::{BoundColumn, BoundSelect, Sarg};
use dta_physical::{JoinPair, MaterializedView, QualifiedColumn};
use dta_sql::AggFunc;
use dta_storage::pages_for;
use std::collections::BTreeMap;

/// A usable view rewrite.
pub struct ViewPlan {
    /// The `ViewScan` node (cost/cardinality filled in).
    pub scan: PlanNode,
    /// Whether the view already answers the query's grouping exactly
    /// (no re-aggregation needed). Meaningless for non-aggregate queries.
    pub answers_grouping: bool,
}

/// Estimated row count of a materialized view (group count for grouped
/// views, join cardinality otherwise).
pub fn estimate_view_rows(ctx: &PlanContext<'_>, view: &MaterializedView) -> f64 {
    // join cardinality of the view's FROM
    let mut rows = 1.0;
    for t in &view.tables {
        rows *= (ctx.sizes.rows(ctx.database, t) as f64).max(1.0);
    }
    for jp in &view.join_pairs {
        let lr = ctx.sizes.rows(ctx.database, &jp.left.table) as f64;
        let rr = ctx.sizes.rows(ctx.database, &jp.right.table) as f64;
        rows *= ctx.estimator.join_selectivity(
            &jp.left.table,
            &jp.left.column,
            lr,
            &jp.right.table,
            &jp.right.column,
            rr,
        );
    }
    if !view.is_grouped() {
        return rows.max(1.0);
    }
    let cols: Vec<(String, BoundColumn)> = view
        .group_by
        .iter()
        .map(|qc| (qc.table.clone(), BoundColumn::new(&qc.table, &qc.column)))
        .collect();
    ctx.estimator.group_count(&cols, rows).max(1.0)
}

/// Materialized width in bytes of one view row.
pub fn view_row_width(ctx: &PlanContext<'_>, view: &MaterializedView) -> u32 {
    let produced = if view.is_grouped() { &view.group_by } else { &view.projected };
    let mut w: u32 =
        produced.iter().map(|c| ctx.sizes.column_width(ctx.database, &c.table, &c.column)).sum();
    w += 8 * view.aggregates.len() as u32;
    w + dta_physical::sizing::ROW_OVERHEAD_BYTES
}

/// Can `agg` be answered from the view's aggregate list, possibly with
/// re-aggregation over coarser groups? `arg` is the canonical
/// table-qualified argument text (None = COUNT(*)).
fn aggregate_available(
    view: &MaterializedView,
    func: AggFunc,
    arg: &Option<String>,
    need_reaggregation: bool,
    distinct: bool,
) -> bool {
    if distinct {
        // DISTINCT aggregates are only valid without re-aggregation and
        // are not stored in our views
        return false;
    }
    let direct = view.aggregates.iter().any(|va| va.func == func && va.arg == *arg);
    if !need_reaggregation {
        return direct
            || (func == AggFunc::Count
                && view.aggregates.iter().any(|va| va.func == AggFunc::Count && va.arg.is_none()));
    }
    // re-aggregation: SUM of SUMs, MIN of MINs, MAX of MAXs, SUM of COUNTs
    match func {
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => direct,
        AggFunc::Count => {
            view.aggregates.iter().any(|va| va.func == AggFunc::Count && va.arg.is_none())
        }
        AggFunc::Avg => false,
    }
}

/// Try to match every view in the configuration against the query;
/// returns all usable rewrites.
pub fn view_plans(ctx: &PlanContext<'_>, bound: &BoundSelect) -> Vec<ViewPlan> {
    // self-joins make binding→table translation ambiguous; skip
    let mut table_to_binding: BTreeMap<&str, &str> = BTreeMap::new();
    for t in &bound.tables {
        if table_to_binding.insert(t.table.as_str(), t.binding.as_str()).is_some() {
            return Vec::new();
        }
    }
    let to_table = |bc: &BoundColumn| -> Option<QualifiedColumn> {
        bound.table_of(&bc.binding).map(|t| QualifiedColumn::new(t, &bc.column))
    };

    // the query's join pairs in table-qualified normalized form
    let mut q_pairs: Vec<JoinPair> = Vec::new();
    for jp in &bound.joins {
        let (Some(l), Some(r)) = (to_table(&jp.left), to_table(&jp.right)) else {
            return Vec::new();
        };
        q_pairs.push(JoinPair::new(l, r));
    }
    q_pairs.sort();
    q_pairs.dedup();

    let mut q_tables: Vec<&str> = bound.tables.iter().map(|t| t.table.as_str()).collect();
    q_tables.sort_unstable();

    let mut out = Vec::new();
    'views: for view in ctx.config.views(ctx.database) {
        // --- full-match join graph ------------------------------------
        let v_tables: Vec<&str> = view.tables.iter().map(String::as_str).collect();
        if v_tables != q_tables {
            continue;
        }
        if view.join_pairs != q_pairs {
            continue;
        }
        // residual predicates cannot be evaluated against a view that may
        // not produce their columns; be conservative
        if bound.cross_residuals > 0 || !bound.residuals.is_empty() {
            continue;
        }

        let q_groups: Vec<QualifiedColumn> =
            match bound.group_by.iter().map(to_table).collect::<Option<Vec<_>>>() {
                Some(g) => g,
                None => continue,
            };

        let produced: &[QualifiedColumn] =
            if view.is_grouped() { &view.group_by } else { &view.projected };
        let produces = |qc: &QualifiedColumn| produced.iter().any(|p| p == qc);

        // every sarg column must be produced by the view
        let mut view_sargs: Vec<Sarg> = Vec::new();
        for s in &bound.sargs {
            let Some(qc) = to_table(&s.column) else { continue 'views };
            if !produces(&qc) {
                continue 'views;
            }
            view_sargs.push(s.clone());
        }

        let (answers_grouping, est_rows);
        let v_rows = estimate_view_rows(ctx, view);
        if view.is_grouped() {
            if !bound.is_aggregate() {
                continue; // a grouped view cannot recover raw rows
            }
            // view group-by must subsume the query's group-by
            if !q_groups.iter().all(|g| view.group_by.contains(g)) {
                continue;
            }
            let exact = q_groups.len() == view.group_by.len();
            // aggregates must be derivable (by canonical argument text)
            for a in &bound.aggregates {
                let arg = match &a.arg_expr {
                    Some(e) => match crate::query::canonical_agg_arg(bound, e) {
                        Some((text, _)) => Some(text),
                        None => continue 'views,
                    },
                    None => None,
                };
                if !aggregate_available(view, a.func, &arg, !exact, a.distinct) {
                    continue 'views;
                }
            }
            answers_grouping = exact;
            let sel = sarg_selectivity_on_view(ctx, view, &view_sargs);
            est_rows = (v_rows * sel).max(0.0);
        } else {
            // ungrouped view: must produce every referenced column
            for (binding, cols) in &bound.referenced {
                let Some(table) = bound.table_of(binding) else { continue 'views };
                for c in cols {
                    if !produces(&QualifiedColumn::new(table, c)) {
                        continue 'views;
                    }
                }
            }
            answers_grouping = false;
            let sel = sarg_selectivity_on_view(ctx, view, &view_sargs);
            est_rows = (v_rows * sel).max(0.0);
        }

        // scan cost over the materialized view
        let width = view_row_width(ctx, view);
        let pages = pages_for(v_rows.max(1.0) as u64, width) as f64;
        let elim = view.partitioning.as_ref().map_or(1.0, |p| {
            let refs: Vec<&Sarg> = view_sargs.iter().collect();
            elimination_fraction(p, &refs)
        });
        let io = (pages * elim).max(1.0);
        let cpu = v_rows * elim / ctx.hardware.parallel_factor(io);
        let cost = io + cpu * CPU_W;

        out.push(ViewPlan {
            scan: PlanNode::ViewScan {
                view: view.clone(),
                replaced: bound.tables.iter().map(|t| t.binding.clone()).collect(),
                sargs: view_sargs,
                answers_grouping,
                est_rows,
                est_cost: cost,
            },
            answers_grouping,
        });
    }
    out
}

/// Selectivity of sargs evaluated against view output. Histograms are on
/// base-table columns, which is exactly what the view's group-by columns
/// carry (modulo group skew — acceptable for costing).
fn sarg_selectivity_on_view(
    ctx: &PlanContext<'_>,
    _view: &MaterializedView,
    sargs: &[Sarg],
) -> f64 {
    let mut sel = 1.0;
    for s in sargs {
        // the sarg's binding maps to a base table in the same database
        sel *= ctx.estimator.sarg_selectivity(&table_of_sarg(s), s);
    }
    sel
}

fn table_of_sarg(s: &Sarg) -> String {
    // by construction view sargs keep their original binding == table
    // when bindings are unaliased; for aliased bindings histogram lookup
    // simply misses and falls back, which is acceptable
    s.column.binding.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareParams;
    use crate::provider::FixedSizes;
    use crate::query::{bind, BoundStatement};
    use crate::selectivity::Estimator;
    use dta_catalog::{Catalog, Column, ColumnType, Database, Table};
    use dta_physical::{Configuration, PhysicalStructure, ViewAggregate};
    use dta_sql::parse_statement;
    use dta_stats::StatisticsManager;

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::BigInt),
                Column::new("o_date", ColumnType::Date),
            ],
        ))
        .unwrap();
        db.add_table(Table::new(
            "lineitem",
            vec![
                Column::new("l_orderkey", ColumnType::BigInt),
                Column::new("l_price", ColumnType::Float),
            ],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn the_view() -> MaterializedView {
        MaterializedView::grouped(
            "db",
            &["lineitem", "orders"],
            vec![JoinPair::new(
                QualifiedColumn::new("lineitem", "l_orderkey"),
                QualifiedColumn::new("orders", "o_orderkey"),
            )],
            vec![QualifiedColumn::new("orders", "o_date")],
            vec![
                ViewAggregate::column(AggFunc::Sum, QualifiedColumn::new("lineitem", "l_price")),
                ViewAggregate::count_star(),
            ],
        )
    }

    fn setup(cat: &Catalog, sql: &str, config: &Configuration) -> (BoundSelect, FixedSizes) {
        let b = match bind(cat, "db", &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let _ = config;
        let sizes = FixedSizes::default()
            .with_table("db", "orders", 150_000, 16)
            .with_table("db", "lineitem", 600_000, 16);
        (b, sizes)
    }

    fn plans(cat: &Catalog, sql: &str, config: &Configuration) -> usize {
        let (b, sizes) = setup(cat, sql, config);
        let stats = StatisticsManager::new();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config,
            sizes: &sizes,
            hardware: HardwareParams::default(),
            database: "db",
        };
        view_plans(&ctx, &b).len()
    }

    #[test]
    fn exact_match_found() {
        let cat = catalog();
        let config = Configuration::from_structures([PhysicalStructure::View(the_view())]);
        let n = plans(
            &cat,
            "SELECT o_date, SUM(l_price), COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_date",
            &config,
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn no_match_on_different_joins_or_groups() {
        let cat = catalog();
        let config = Configuration::from_structures([PhysicalStructure::View(the_view())]);
        // missing join predicate
        assert_eq!(
            plans(&cat, "SELECT o_date, COUNT(*) FROM lineitem, orders GROUP BY o_date", &config),
            0
        );
        // grouping by a column the view does not produce
        assert_eq!(
            plans(
                &cat,
                "SELECT l_orderkey, COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY l_orderkey",
                &config
            ),
            0
        );
        // aggregate not derivable (AVG)
        assert_eq!(
            plans(
                &cat,
                "SELECT o_date, AVG(l_price) FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_date",
                &config
            ),
            0
        );
    }

    #[test]
    fn filter_on_group_column_ok_others_rejected() {
        let cat = catalog();
        let config = Configuration::from_structures([PhysicalStructure::View(the_view())]);
        assert_eq!(
            plans(
                &cat,
                "SELECT o_date, COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_date < '1995-01-01' GROUP BY o_date",
                &config
            ),
            1
        );
        // filter on a non-produced column
        assert_eq!(
            plans(
                &cat,
                "SELECT o_date, COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_price > 5 GROUP BY o_date",
                &config
            ),
            0
        );
    }

    #[test]
    fn grouped_view_cannot_answer_raw_query() {
        let cat = catalog();
        let config = Configuration::from_structures([PhysicalStructure::View(the_view())]);
        assert_eq!(
            plans(
                &cat,
                "SELECT o_date FROM lineitem, orders WHERE l_orderkey = o_orderkey",
                &config
            ),
            0
        );
    }

    #[test]
    fn view_row_estimates() {
        let cat = catalog();
        let config = Configuration::new();
        let (_b, sizes) = setup(&cat, "SELECT o_date FROM orders", &config);
        let stats = StatisticsManager::new();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &config,
            sizes: &sizes,
            hardware: HardwareParams::default(),
            database: "db",
        };
        let rows = estimate_view_rows(&ctx, &the_view());
        // grouped by o_date: bounded by the join cardinality, far less
        // than the cross product
        assert!(rows >= 1.0);
        assert!(rows < 600_000.0 * 150_000.0);
        assert!(view_row_width(&ctx, &the_view()) > 8);
    }
}
