//! Physical plan trees.
//!
//! Every node carries its estimated output rows and the *cumulative*
//! estimated cost of its subtree, in the same work units the execution
//! engine meters (pages + weighted CPU operations). Plans are
//! self-contained enough for the engine to interpret.

use crate::query::{BoundColumn, JoinPred, Sarg};
use dta_physical::{Index, MaterializedView};
use std::fmt;

/// How a base table is read.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessMethod {
    /// Full scan of the heap (or of the clustered index).
    HeapScan,
    /// Seek on a leading prefix of the clustered index key.
    ClusteredSeek { index: Index, seek_len: usize },
    /// Seek on a leading prefix of a non-clustered index key; `covering`
    /// records whether row lookups are avoided.
    IndexSeek { index: Index, seek_len: usize, covering: bool },
    /// Full scan of a covering non-clustered index (narrower than the
    /// heap).
    CoveringScan { index: Index },
}

impl AccessMethod {
    /// The index used, if any.
    pub fn index(&self) -> Option<&Index> {
        match self {
            AccessMethod::HeapScan => None,
            AccessMethod::ClusteredSeek { index, .. }
            | AccessMethod::IndexSeek { index, .. }
            | AccessMethod::CoveringScan { index } => Some(index),
        }
    }

    /// Short tag for EXPLAIN output.
    pub fn tag(&self) -> &'static str {
        match self {
            AccessMethod::HeapScan => "HeapScan",
            AccessMethod::ClusteredSeek { .. } => "ClusteredSeek",
            AccessMethod::IndexSeek { covering: true, .. } => "IndexSeek(covering)",
            AccessMethod::IndexSeek { .. } => "IndexSeek+Lookup",
            AccessMethod::CoveringScan { .. } => "CoveringScan",
        }
    }
}

/// A single-table access operator.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAccess {
    pub database: String,
    pub table: String,
    pub binding: String,
    pub method: AccessMethod,
    /// All sargable predicates on this table (engine applies them all).
    pub sargs: Vec<Sarg>,
    /// Count of residual conjuncts applied after access.
    pub residuals: usize,
    /// Fraction of partitions scanned (1.0 when unpartitioned or no
    /// elimination applies).
    pub partition_fraction: f64,
    pub est_rows: f64,
    pub est_cost: f64,
}

/// A plan operator; `est_cost` is cumulative over the subtree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base-table access.
    Access(TableAccess),
    /// Scan of a materialized view standing in for `replaced` bindings.
    ViewScan {
        view: MaterializedView,
        /// Query bindings the view replaces.
        replaced: Vec<String>,
        /// Sargs evaluated against view output columns.
        sargs: Vec<Sarg>,
        /// Whether the query's aggregation is already answered by the view
        /// (no re-aggregation needed).
        answers_grouping: bool,
        est_rows: f64,
        est_cost: f64,
    },
    /// Hash join (build = left, probe = right).
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        pairs: Vec<JoinPred>,
        /// True when both inputs were co-partitioned on the join keys.
        partition_wise: bool,
        est_rows: f64,
        est_cost: f64,
    },
    /// Index nested-loop join: for each outer row, seek `inner`.
    IndexNLJoin {
        outer: Box<PlanNode>,
        inner: TableAccess,
        pairs: Vec<JoinPred>,
        est_rows: f64,
        est_cost: f64,
    },
    /// Hash aggregation.
    HashAggregate { input: Box<PlanNode>, group_by: Vec<BoundColumn>, est_rows: f64, est_cost: f64 },
    /// Stream aggregation over already-ordered input.
    StreamAggregate {
        input: Box<PlanNode>,
        group_by: Vec<BoundColumn>,
        est_rows: f64,
        est_cost: f64,
    },
    /// Explicit sort.
    Sort { input: Box<PlanNode>, keys: Vec<(BoundColumn, bool)>, est_rows: f64, est_cost: f64 },
    /// TOP n truncation.
    Top { input: Box<PlanNode>, n: u64, est_rows: f64, est_cost: f64 },
    /// INSERT with structure maintenance.
    Insert {
        database: String,
        table: String,
        rows: u64,
        /// Names of structures maintained by this statement.
        maintained: Vec<String>,
        est_cost: f64,
    },
    /// UPDATE: locate rows via `access`, write, maintain structures.
    Update {
        access: Box<PlanNode>,
        set_columns: Vec<String>,
        maintained: Vec<String>,
        est_rows: f64,
        est_cost: f64,
    },
    /// DELETE: locate rows via `access`, remove, maintain structures.
    Delete { access: Box<PlanNode>, maintained: Vec<String>, est_rows: f64, est_cost: f64 },
}

impl PlanNode {
    /// Estimated output rows.
    pub fn est_rows(&self) -> f64 {
        match self {
            PlanNode::Access(a) => a.est_rows,
            PlanNode::ViewScan { est_rows, .. }
            | PlanNode::HashJoin { est_rows, .. }
            | PlanNode::IndexNLJoin { est_rows, .. }
            | PlanNode::HashAggregate { est_rows, .. }
            | PlanNode::StreamAggregate { est_rows, .. }
            | PlanNode::Sort { est_rows, .. }
            | PlanNode::Top { est_rows, .. }
            | PlanNode::Update { est_rows, .. }
            | PlanNode::Delete { est_rows, .. } => *est_rows,
            PlanNode::Insert { rows, .. } => *rows as f64,
        }
    }

    /// Cumulative estimated cost of the subtree.
    pub fn est_cost(&self) -> f64 {
        match self {
            PlanNode::Access(a) => a.est_cost,
            PlanNode::ViewScan { est_cost, .. }
            | PlanNode::HashJoin { est_cost, .. }
            | PlanNode::IndexNLJoin { est_cost, .. }
            | PlanNode::HashAggregate { est_cost, .. }
            | PlanNode::StreamAggregate { est_cost, .. }
            | PlanNode::Sort { est_cost, .. }
            | PlanNode::Top { est_cost, .. }
            | PlanNode::Insert { est_cost, .. }
            | PlanNode::Update { est_cost, .. }
            | PlanNode::Delete { est_cost, .. } => *est_cost,
        }
    }

    /// Names of all physical structures (indexes, views) this subtree
    /// uses for *access* (maintenance targets are not included).
    pub fn used_structures(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_used(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_used(&self, out: &mut Vec<String>) {
        match self {
            PlanNode::Access(a) => {
                if let Some(ix) = a.method.index() {
                    out.push(ix.name());
                }
                if a.partition_fraction < 1.0 {
                    out.push(format!("partition_elimination({})", a.table));
                }
            }
            PlanNode::ViewScan { view, .. } => out.push(view.name()),
            PlanNode::HashJoin { left, right, .. } => {
                left.collect_used(out);
                right.collect_used(out);
            }
            PlanNode::IndexNLJoin { outer, inner, .. } => {
                outer.collect_used(out);
                if let Some(ix) = inner.method.index() {
                    out.push(ix.name());
                }
            }
            PlanNode::HashAggregate { input, .. }
            | PlanNode::StreamAggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Top { input, .. } => input.collect_used(out),
            PlanNode::Insert { .. } => {}
            PlanNode::Update { access, .. } | PlanNode::Delete { access, .. } => {
                access.collect_used(out)
            }
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::Access(a) => writeln!(
                f,
                "{pad}{} {}.{} [rows={:.0} cost={:.1}{}]",
                a.method.tag(),
                a.table,
                a.binding,
                a.est_rows,
                a.est_cost,
                if a.partition_fraction < 1.0 {
                    format!(" partitions={:.0}%", a.partition_fraction * 100.0)
                } else {
                    String::new()
                }
            ),
            PlanNode::ViewScan { view, est_rows, est_cost, answers_grouping, .. } => writeln!(
                f,
                "{pad}ViewScan {} [rows={est_rows:.0} cost={est_cost:.1} answers_grouping={answers_grouping}]",
                view.name()
            ),
            PlanNode::HashJoin { left, right, est_rows, est_cost, partition_wise, .. } => {
                writeln!(
                    f,
                    "{pad}HashJoin{} [rows={est_rows:.0} cost={est_cost:.1}]",
                    if *partition_wise { "(partition-wise)" } else { "" }
                )?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            PlanNode::IndexNLJoin { outer, inner, est_rows, est_cost, .. } => {
                writeln!(f, "{pad}IndexNLJoin [rows={est_rows:.0} cost={est_cost:.1}]")?;
                outer.fmt_indent(f, depth + 1)?;
                writeln!(
                    f,
                    "{}Inner: {} {} [rows/probe={:.1}]",
                    "  ".repeat(depth + 1),
                    inner.method.tag(),
                    inner.table,
                    inner.est_rows
                )
            }
            PlanNode::HashAggregate { input, group_by, est_rows, est_cost } => {
                writeln!(
                    f,
                    "{pad}HashAggregate groups={} [rows={est_rows:.0} cost={est_cost:.1}]",
                    group_by.len()
                )?;
                input.fmt_indent(f, depth + 1)
            }
            PlanNode::StreamAggregate { input, group_by, est_rows, est_cost } => {
                writeln!(
                    f,
                    "{pad}StreamAggregate groups={} [rows={est_rows:.0} cost={est_cost:.1}]",
                    group_by.len()
                )?;
                input.fmt_indent(f, depth + 1)
            }
            PlanNode::Sort { input, keys, est_rows, est_cost } => {
                writeln!(f, "{pad}Sort keys={} [rows={est_rows:.0} cost={est_cost:.1}]", keys.len())?;
                input.fmt_indent(f, depth + 1)
            }
            PlanNode::Top { input, n, est_rows, est_cost } => {
                writeln!(f, "{pad}Top {n} [rows={est_rows:.0} cost={est_cost:.1}]")?;
                input.fmt_indent(f, depth + 1)
            }
            PlanNode::Insert { table, rows, maintained, est_cost, .. } => writeln!(
                f,
                "{pad}Insert {table} rows={rows} maintains={} [cost={est_cost:.1}]",
                maintained.len()
            ),
            PlanNode::Update { access, set_columns, maintained, est_rows, est_cost } => {
                writeln!(
                    f,
                    "{pad}Update set={} maintains={} [rows={est_rows:.0} cost={est_cost:.1}]",
                    set_columns.len(),
                    maintained.len()
                )?;
                access.fmt_indent(f, depth + 1)
            }
            PlanNode::Delete { access, maintained, est_rows, est_cost } => {
                writeln!(
                    f,
                    "{pad}Delete maintains={} [rows={est_rows:.0} cost={est_cost:.1}]",
                    maintained.len()
                )?;
                access.fmt_indent(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// A complete plan for one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub root: PlanNode,
    /// Total estimated cost in work units.
    pub cost: f64,
    /// Estimated output (or affected) rows.
    pub est_rows: f64,
}

impl Plan {
    /// Wrap a root node.
    pub fn new(root: PlanNode) -> Self {
        let cost = root.est_cost();
        let est_rows = root.est_rows();
        Self { root, cost, est_rows }
    }

    /// Names of structures the plan uses.
    pub fn used_structures(&self) -> Vec<String> {
        self.root.used_structures()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(cost: f64, rows: f64) -> TableAccess {
        TableAccess {
            database: "db".into(),
            table: "t".into(),
            binding: "t".into(),
            method: AccessMethod::HeapScan,
            sargs: vec![],
            residuals: 0,
            partition_fraction: 1.0,
            est_rows: rows,
            est_cost: cost,
        }
    }

    #[test]
    fn cumulative_costs() {
        let join = PlanNode::HashJoin {
            left: Box::new(PlanNode::Access(access(10.0, 100.0))),
            right: Box::new(PlanNode::Access(access(20.0, 200.0))),
            pairs: vec![],
            partition_wise: false,
            est_rows: 300.0,
            est_cost: 50.0,
        };
        let plan = Plan::new(join);
        assert_eq!(plan.cost, 50.0);
        assert_eq!(plan.est_rows, 300.0);
    }

    #[test]
    fn used_structures_collects_indexes_and_views() {
        let ix = dta_physical::Index::non_clustered("db", "t", &["a"], &[]);
        let mut a = access(5.0, 10.0);
        a.method = AccessMethod::IndexSeek { index: ix.clone(), seek_len: 1, covering: true };
        let node = PlanNode::Access(a);
        assert_eq!(node.used_structures(), vec![ix.name()]);
    }

    #[test]
    fn partition_elimination_reported() {
        let mut a = access(5.0, 10.0);
        a.partition_fraction = 0.25;
        let used = PlanNode::Access(a).used_structures();
        assert!(used.iter().any(|s| s.starts_with("partition_elimination")));
    }

    #[test]
    fn display_renders_tree() {
        let agg = PlanNode::HashAggregate {
            input: Box::new(PlanNode::Access(access(10.0, 100.0))),
            group_by: vec![],
            est_rows: 5.0,
            est_cost: 12.0,
        };
        let text = agg.to_string();
        assert!(text.contains("HashAggregate"));
        assert!(text.contains("HeapScan"));
    }
}
