//! Single-table access-path selection.
//!
//! Produces every access option the configuration makes available for one
//! table reference — heap scan (with partition elimination), clustered
//! seek, non-clustered seeks (with or without lookups), covering scans —
//! each with estimated rows, cost, delivered sort order, and retained
//! partitioning. The planner picks among them by context.

use crate::hardware::HardwareParams;
use crate::plan::{AccessMethod, TableAccess};
use crate::provider::TableStatsProvider;
use crate::query::{BoundColumn, Sarg, SargOp};
use crate::selectivity::Estimator;
use dta_catalog::Value;
use dta_physical::{Configuration, Index, IndexKind, RangePartitioning};
use dta_storage::pages_for;

/// Pages charged for descending a B-tree to its leaf level.
pub const SEEK_DESCENT_PAGES: f64 = 2.0;

/// Work units per CPU row operation (mirrors the storage crate's meter).
pub const CPU_W: f64 = dta_storage::work::CPU_OP_WEIGHT;

/// Everything the planner carries around while costing one statement.
pub struct PlanContext<'a> {
    pub estimator: Estimator<'a>,
    pub config: &'a Configuration,
    pub sizes: &'a dyn TableStatsProvider,
    pub hardware: HardwareParams,
    pub database: &'a str,
}

/// One costed way to read a table.
#[derive(Debug, Clone)]
pub struct AccessOption {
    /// Ready-to-use plan node.
    pub access: TableAccess,
    /// Sort order delivered (empty = none).
    pub order: Vec<BoundColumn>,
    /// Partitioning the output stream retains, if any.
    pub partitioned_on: Option<(BoundColumn, RangePartitioning)>,
}

/// Combined `(low, high)` value bounds that sargs impose on `column`.
pub fn sarg_bounds<'s>(sargs: &[&'s Sarg], column: &str) -> (Option<&'s Value>, Option<&'s Value>) {
    let mut lo: Option<&Value> = None;
    let mut hi: Option<&Value> = None;
    for s in sargs.iter().filter(|s| s.column.column == column) {
        let (l, h) = s.value_range();
        if let Some(l) = l {
            lo = Some(match lo {
                Some(cur) if cur >= l => cur,
                _ => l,
            });
        }
        if let Some(h) = h {
            hi = Some(match hi {
                Some(cur) if cur <= h => cur,
                _ => h,
            });
        }
    }
    (lo, hi)
}

/// Partition-elimination fraction a partitioning scheme yields under the
/// given sargs (1.0 when no sarg restricts the partitioning column).
pub fn elimination_fraction(scheme: &RangePartitioning, sargs: &[&Sarg]) -> f64 {
    let (lo, hi) = sarg_bounds(sargs, &scheme.column);
    if lo.is_none() && hi.is_none() {
        return 1.0;
    }
    scheme.elimination_fraction(lo, hi)
}

/// The length of the seekable key prefix and its combined selectivity.
/// Standard B-tree rule: equality predicates extend the prefix; the first
/// range/IN/prefix predicate is used and then the prefix stops.
fn seek_prefix(ctx: &PlanContext<'_>, table: &str, index: &Index, sargs: &[&Sarg]) -> (usize, f64) {
    let mut len = 0usize;
    let mut sel = 1.0;
    for key in &index.key_columns {
        let Some(s) = sargs.iter().find(|s| s.column.column == *key && s.is_seekable()) else {
            break;
        };
        sel *= ctx.estimator.sarg_selectivity(table, s);
        len += 1;
        if !matches!(s.op, SargOp::Eq(_)) {
            break;
        }
    }
    (len, sel)
}

/// Selectivity of sargs evaluable at the index leaf (columns present in
/// the leaf but not part of the seek prefix).
fn leaf_filter_sel(
    ctx: &PlanContext<'_>,
    table: &str,
    index: &Index,
    sargs: &[&Sarg],
    seek_len: usize,
) -> f64 {
    let seek_cols: Vec<&String> = index.key_columns.iter().take(seek_len).collect();
    let mut sel = 1.0;
    for s in sargs {
        if seek_cols.iter().any(|k| **k == s.column.column) {
            continue;
        }
        if index.leaf_columns().any(|c| *c == s.column.column) {
            sel *= ctx.estimator.sarg_selectivity(table, s);
        }
    }
    sel
}

/// Enumerate all access options for one table reference.
///
/// `required` is the set of columns the plan must produce for this table
/// (drives covering checks); `extra_seek_sargs` lets the join planner add
/// equality sargs on join columns when costing the inner side of an
/// index nested-loop join.
pub fn access_options(
    ctx: &PlanContext<'_>,
    binding: &str,
    table: &str,
    sargs: &[&Sarg],
    residuals: usize,
    required: &[String],
) -> Vec<AccessOption> {
    let rows = ctx.sizes.rows(ctx.database, table) as f64;
    let width = ctx.sizes.row_width(ctx.database, table);
    let heap_pages = pages_for(rows as u64, width) as f64;
    let out_sel = ctx.estimator.table_selectivity(table, sargs, residuals);
    let out_rows = (rows * out_sel).max(0.0);

    let owned_sargs: Vec<Sarg> = sargs.iter().map(|s| (*s).clone()).collect();
    let mut options = Vec::new();

    let clustered = ctx.config.clustered_index(ctx.database, table);
    let table_part = ctx.config.effective_table_partitioning(ctx.database, table);

    // --- heap / clustered scan ------------------------------------------
    {
        let fraction = table_part.map_or(1.0, |p| elimination_fraction(p, sargs));
        let io = (heap_pages * fraction).max(1.0);
        let cpu = rows * fraction / ctx.hardware.parallel_factor(io);
        let cost = io + cpu * CPU_W;
        let order = match (clustered, table_part) {
            (Some(ci), None) => {
                ci.key_columns.iter().map(|c| BoundColumn::new(binding, c)).collect()
            }
            _ => Vec::new(), // partitioned scans deliver no global order
        };
        options.push(AccessOption {
            access: TableAccess {
                database: ctx.database.to_string(),
                table: table.to_string(),
                binding: binding.to_string(),
                method: AccessMethod::HeapScan,
                sargs: owned_sargs.clone(),
                residuals,
                partition_fraction: fraction,
                est_rows: out_rows,
                est_cost: cost,
            },
            order,
            partitioned_on: table_part.map(|p| (BoundColumn::new(binding, &p.column), p.clone())),
        });
    }

    // --- clustered index seek -------------------------------------------
    if let Some(ci) = clustered {
        let (seek_len, seek_sel) = seek_prefix(ctx, table, ci, sargs);
        if seek_len > 0 {
            let mut descent = SEEK_DESCENT_PAGES;
            if let Some(p) = &ci.partitioning {
                let (lo, hi) = sarg_bounds(sargs, &p.column);
                descent *= p.partitions_touched(lo, hi) as f64;
            }
            let io = descent + (heap_pages * seek_sel).max(1.0);
            let scanned = rows * seek_sel;
            let cost = io + scanned * CPU_W;
            options.push(AccessOption {
                access: TableAccess {
                    database: ctx.database.to_string(),
                    table: table.to_string(),
                    binding: binding.to_string(),
                    method: AccessMethod::ClusteredSeek { index: ci.clone(), seek_len },
                    sargs: owned_sargs.clone(),
                    residuals,
                    partition_fraction: 1.0,
                    est_rows: out_rows,
                    est_cost: cost,
                },
                order: if ci.partitioning.is_none() {
                    ci.key_columns.iter().map(|c| BoundColumn::new(binding, c)).collect()
                } else {
                    Vec::new()
                },
                partitioned_on: ci
                    .partitioning
                    .as_ref()
                    .map(|p| (BoundColumn::new(binding, &p.column), p.clone())),
            });
        }
    }

    // --- non-clustered indexes ------------------------------------------
    for ix in ctx.config.indexes_on(ctx.database, table) {
        if ix.kind != IndexKind::NonClustered {
            continue;
        }
        let leaf_width: u32 =
            ix.leaf_columns().map(|c| ctx.sizes.column_width(ctx.database, table, c)).sum::<u32>()
                + dta_physical::sizing::ROW_LOCATOR_BYTES
                + dta_physical::sizing::ROW_OVERHEAD_BYTES;
        let leaf_pages = pages_for(rows as u64, leaf_width) as f64;
        let covering = ix.covers(required);
        let (seek_len, seek_sel) = seek_prefix(ctx, table, ix, sargs);

        // partitioned-index descent multiplier and leaf elimination
        let mut descent = SEEK_DESCENT_PAGES;
        let mut leaf_elim = 1.0;
        if let Some(p) = &ix.partitioning {
            let (lo, hi) = sarg_bounds(sargs, &p.column);
            let touched = p.partitions_touched(lo, hi) as f64;
            descent *= touched;
            // leaf elimination only helps when the partitioning column is
            // not already the seek column
            if ix.key_columns.first() != Some(&p.column) {
                leaf_elim = touched / p.partition_count() as f64;
            }
        }

        if seek_len > 0 {
            let matched = rows * seek_sel;
            let after_leaf = matched * leaf_filter_sel(ctx, table, ix, sargs, seek_len);
            let lookup_pages = if covering { 0.0 } else { after_leaf };
            let io = descent + (leaf_pages * seek_sel * leaf_elim).max(1.0) + lookup_pages;
            let cost = io + matched * CPU_W;
            options.push(AccessOption {
                access: TableAccess {
                    database: ctx.database.to_string(),
                    table: table.to_string(),
                    binding: binding.to_string(),
                    method: AccessMethod::IndexSeek { index: ix.clone(), seek_len, covering },
                    sargs: owned_sargs.clone(),
                    residuals,
                    partition_fraction: 1.0,
                    est_rows: out_rows,
                    est_cost: cost,
                },
                order: if ix.partitioning.is_none() && covering {
                    ix.key_columns.iter().map(|c| BoundColumn::new(binding, c)).collect()
                } else {
                    Vec::new()
                },
                partitioned_on: ix
                    .partitioning
                    .as_ref()
                    .map(|p| (BoundColumn::new(binding, &p.column), p.clone())),
            });
        } else if covering {
            // covering scan of a narrower structure
            let io = (leaf_pages * leaf_elim).max(1.0);
            let cpu = rows * leaf_elim / ctx.hardware.parallel_factor(io);
            let cost = io + cpu * CPU_W;
            options.push(AccessOption {
                access: TableAccess {
                    database: ctx.database.to_string(),
                    table: table.to_string(),
                    binding: binding.to_string(),
                    method: AccessMethod::CoveringScan { index: ix.clone() },
                    sargs: owned_sargs.clone(),
                    residuals,
                    partition_fraction: leaf_elim,
                    est_rows: out_rows,
                    est_cost: cost,
                },
                order: if ix.partitioning.is_none() {
                    ix.key_columns.iter().map(|c| BoundColumn::new(binding, c)).collect()
                } else {
                    Vec::new()
                },
                partitioned_on: ix
                    .partitioning
                    .as_ref()
                    .map(|p| (BoundColumn::new(binding, &p.column), p.clone())),
            });
        }
    }

    options
}

/// The cheapest option, optionally requiring a sort order prefix.
pub fn best_option(
    options: Vec<AccessOption>,
    order_prefix: Option<&[BoundColumn]>,
) -> Option<AccessOption> {
    options
        .into_iter()
        .filter(|o| match order_prefix {
            None => true,
            Some(prefix) => o.order.len() >= prefix.len() && o.order[..prefix.len()] == *prefix,
        })
        .min_by(|a, b| a.access.est_cost.total_cmp(&b.access.est_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FixedSizes;
    use dta_physical::PhysicalStructure;
    use dta_stats::StatisticsManager;

    fn ctx<'a>(
        stats: &'a StatisticsManager,
        config: &'a Configuration,
        sizes: &'a FixedSizes,
    ) -> PlanContext<'a> {
        PlanContext {
            estimator: Estimator::new(stats, "db"),
            config,
            sizes,
            hardware: HardwareParams { cpus: 1, memory_bytes: 256 << 20 },
            database: "db",
        }
    }

    fn eq_sarg(col: &str, v: i64) -> Sarg {
        Sarg { column: BoundColumn::new("t", col), op: SargOp::Eq(Value::Int(v)) }
    }

    fn range_sarg(col: &str, lo: i64, hi: i64) -> Sarg {
        Sarg {
            column: BoundColumn::new("t", col),
            op: SargOp::Range {
                low: Some((Value::Int(lo), true)),
                high: Some((Value::Int(hi), true)),
            },
        }
    }

    #[test]
    fn heap_scan_always_available() {
        let stats = StatisticsManager::new();
        let config = Configuration::new();
        let sizes = FixedSizes::default().with_table("db", "t", 100_000, 100);
        let c = ctx(&stats, &config, &sizes);
        let opts = access_options(&c, "t", "t", &[], 0, &[]);
        assert_eq!(opts.len(), 1);
        assert!(matches!(opts[0].access.method, AccessMethod::HeapScan));
        assert!(opts[0].access.est_cost > 1000.0); // ~1221 pages
    }

    #[test]
    fn index_seek_beats_scan_for_selective_predicates() {
        let stats = StatisticsManager::new();
        let config = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &[]),
        )]);
        let sizes = FixedSizes::default().with_table("db", "t", 1_000_000, 100);
        let c = ctx(&stats, &config, &sizes);
        let sarg = eq_sarg("a", 5);
        let sargs = vec![&sarg];
        let opts = access_options(&c, "t", "t", &sargs, 0, &["a".to_string()]);
        let best = best_option(opts, None).unwrap();
        assert!(matches!(best.access.method, AccessMethod::IndexSeek { covering: true, .. }));
        // and it is far cheaper than the scan
        assert!(best.access.est_cost < 10_000.0);
    }

    #[test]
    fn non_covering_seek_charges_lookups() {
        let stats = StatisticsManager::new();
        let config = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &[]),
        )]);
        let sizes = FixedSizes::default().with_table("db", "t", 1_000_000, 100);
        let c = ctx(&stats, &config, &sizes);
        let sarg = eq_sarg("a", 5);
        let sargs = vec![&sarg];
        let covering = access_options(&c, "t", "t", &sargs, 0, &["a".to_string()]);
        let lookups = access_options(&c, "t", "t", &sargs, 0, &["a".to_string(), "b".to_string()]);
        let seek_cov = covering
            .iter()
            .find(|o| matches!(o.access.method, AccessMethod::IndexSeek { .. }))
            .unwrap();
        let seek_lku = lookups
            .iter()
            .find(|o| matches!(o.access.method, AccessMethod::IndexSeek { .. }))
            .unwrap();
        assert!(seek_lku.access.est_cost > seek_cov.access.est_cost);
    }

    #[test]
    fn partition_elimination_reduces_scan_cost() {
        let stats = StatisticsManager::new();
        let scheme = RangePartitioning::new("d", (1..10).map(|i| Value::Int(i * 100)).collect());
        let config = Configuration::from_structures([PhysicalStructure::TablePartitioning {
            database: "db".into(),
            table: "t".into(),
            scheme,
        }]);
        let sizes = FixedSizes::default().with_table("db", "t", 1_000_000, 100);
        let c = ctx(&stats, &config, &sizes);

        let unfiltered = access_options(&c, "t", "t", &[], 0, &[]);
        let full_cost = unfiltered[0].access.est_cost;

        let sarg = range_sarg("d", 150, 250);
        let sargs = vec![&sarg];
        let filtered = access_options(&c, "t", "t", &sargs, 0, &[]);
        let elim_cost = filtered[0].access.est_cost;
        assert!(elim_cost < full_cost * 0.35, "elim={elim_cost} full={full_cost}");
        assert!(filtered[0].access.partition_fraction <= 0.25);
        assert!(filtered[0].partitioned_on.is_some());
    }

    #[test]
    fn covering_scan_cheaper_than_heap_for_narrow_set() {
        let stats = StatisticsManager::new();
        let config = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &["b"]),
        )]);
        // wide rows: 400 bytes; index leaf is ~33 bytes
        let sizes = FixedSizes::default().with_table("db", "t", 1_000_000, 400);
        let c = ctx(&stats, &config, &sizes);
        let opts = access_options(&c, "t", "t", &[], 0, &["a".to_string(), "b".to_string()]);
        let best = best_option(opts, None).unwrap();
        assert!(matches!(best.access.method, AccessMethod::CoveringScan { .. }));
    }

    #[test]
    fn clustered_seek_available_and_ordered() {
        let stats = StatisticsManager::new();
        let config = Configuration::from_structures([PhysicalStructure::Index(Index::clustered(
            "db",
            "t",
            &["a", "b"],
        ))]);
        let sizes = FixedSizes::default().with_table("db", "t", 1_000_000, 100);
        let c = ctx(&stats, &config, &sizes);
        let sarg = eq_sarg("a", 5);
        let sargs = vec![&sarg];
        let opts = access_options(&c, "t", "t", &sargs, 0, &["a".into(), "b".into(), "z".into()]);
        let seek = opts
            .iter()
            .find(|o| matches!(o.access.method, AccessMethod::ClusteredSeek { .. }))
            .unwrap();
        assert_eq!(seek.order.len(), 2);
        // order-constrained choice works
        let need = [BoundColumn::new("t", "a")];
        let ordered = best_option(opts, Some(&need)).unwrap();
        assert!(!ordered.order.is_empty());
    }

    #[test]
    fn seek_prefix_stops_at_range() {
        let stats = StatisticsManager::new();
        let config = Configuration::new();
        let sizes = FixedSizes::default().with_table("db", "t", 1000, 100);
        let c = ctx(&stats, &config, &sizes);
        let ix = Index::non_clustered("db", "t", &["a", "b", "c"], &[]);
        let s1 = eq_sarg("a", 1);
        let s2 = range_sarg("b", 0, 5);
        let s3 = eq_sarg("c", 2);
        let (len, _) = seek_prefix(&c, "t", &ix, &[&s1, &s2, &s3]);
        assert_eq!(len, 2, "range on b terminates the prefix; c not seekable");
    }

    #[test]
    fn sarg_bounds_intersect() {
        let s1 = range_sarg("d", 0, 100);
        let s2 = range_sarg("d", 50, 200);
        let (lo, hi) = sarg_bounds(&[&s1, &s2], "d");
        assert_eq!(lo, Some(&Value::Int(50)));
        assert_eq!(hi, Some(&Value::Int(100)));
    }
}
