//! Cost-based query optimizer with **what-if** interfaces.
//!
//! DTA's cost model *is* the query optimizer (§2.2 "DTA's Cost Model"):
//! for a query `Q` and a hypothetical configuration `C`, DTA obtains the
//! optimizer-estimated cost of `Q` as if `C` were materialized, and
//! recommends the configuration with the lowest estimated workload cost.
//! This crate is the substrate standing in for SQL Server's optimizer and
//! its what-if plumbing ([9] in the paper):
//!
//! * [`query`] — the binder, producing analyzed single/multi-table query
//!   descriptions (sargable predicates, equi-joins, grouping, required
//!   columns);
//! * [`selectivity`] — cardinality estimation from histograms and
//!   densities;
//! * [`plan`] — physical plan trees with per-node estimated rows/cost,
//!   interpretable by the execution engine;
//! * [`access`] — single-table access-path selection (heap scan,
//!   clustered/non-clustered seek, covering scan, partition elimination);
//! * [`join`] — greedy join ordering with hash and index-nested-loop
//!   joins;
//! * [`views`] — materialized-view matching;
//! * [`dml`] — update/insert/delete costing including index and view
//!   maintenance;
//! * [`whatif`] — the [`WhatIfOptimizer`] facade: `optimize(query,
//!   configuration)` returns a [`plan::Plan`] whose estimated cost is in
//!   the same work units the execution engine meters, and whose
//!   hardware parameters (CPUs, memory) can be overridden to simulate a
//!   production server on a test server (§5.3).

pub mod access;
pub mod dml;
pub mod hardware;
pub mod join;
pub mod plan;
pub mod provider;
pub mod query;
pub mod selectivity;
pub mod views;
pub mod whatif;

pub use hardware::HardwareParams;
pub use plan::{Plan, PlanNode};
pub use provider::TableStatsProvider;
pub use query::{BindError, BoundSelect, Sarg, SargOp};
pub use whatif::WhatIfOptimizer;
