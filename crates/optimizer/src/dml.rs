//! DML costing: updates pay for maintaining the physical design.
//!
//! This is the other half of the integrated-tuning trade-off (§3): for a
//! workload containing updates, every extra index and materialized view
//! has a maintenance price, which is what makes DTA correctly recommend
//! *nothing* for the update-dominated CUST3 workload (§7.1).

use crate::access::{access_options, best_option, PlanContext, CPU_W};
use crate::plan::PlanNode;
use crate::query::{BoundDml, SingleTableFilter};
use dta_physical::IndexKind;

/// Page writes charged per modified row per affected index.
pub const INDEX_MAINT_PAGES: f64 = 1.5;

/// Page writes charged per modified row per affected materialized view,
/// scaled by the number of tables the view joins (maintaining a join view
/// requires looking up the other side(s)).
pub const VIEW_MAINT_PAGES_PER_TABLE: f64 = 2.0;

/// Plan (and cost) a DML statement under a configuration.
pub fn plan_dml(ctx: &PlanContext<'_>, dml: &BoundDml) -> PlanNode {
    match dml {
        BoundDml::Insert { database, table, rows } => {
            let rows_f = *rows as f64;
            let mut cost = 1.0 + rows_f * CPU_W;
            let mut maintained = Vec::new();
            for ix in ctx.config.indexes_on(database, table) {
                let per_row = match ix.kind {
                    IndexKind::Clustered => 1.0,
                    IndexKind::NonClustered => INDEX_MAINT_PAGES,
                };
                cost += rows_f * per_row;
                maintained.push(ix.name());
            }
            for v in ctx.config.views(database) {
                if v.tables.iter().any(|t| t == table) {
                    cost += rows_f * VIEW_MAINT_PAGES_PER_TABLE * v.tables.len() as f64;
                    maintained.push(v.name());
                }
            }
            PlanNode::Insert {
                database: database.clone(),
                table: table.clone(),
                rows: *rows,
                maintained,
                est_cost: cost,
            }
        }
        BoundDml::Update { database, table, set_columns, filter } => {
            let (access, affected) = locate(ctx, database, table, filter, set_columns);
            let mut cost = access.est_cost() + affected * 1.0; // base row writes
            let mut maintained = Vec::new();
            for ix in ctx.config.indexes_on(database, table) {
                let touches = ix.leaf_columns().any(|c| set_columns.iter().any(|sc| sc == c))
                    || ix.partitioning.as_ref().is_some_and(|p| set_columns.contains(&p.column));
                if touches {
                    cost += affected * 2.0 * INDEX_MAINT_PAGES; // delete + insert entry
                    maintained.push(ix.name());
                }
            }
            for v in ctx.config.views(database) {
                let touches = v.tables.iter().any(|t| t == table)
                    && view_references_columns(v, table, set_columns);
                if touches {
                    cost += affected * VIEW_MAINT_PAGES_PER_TABLE * v.tables.len() as f64;
                    maintained.push(v.name());
                }
            }
            PlanNode::Update {
                access: Box::new(access),
                set_columns: set_columns.clone(),
                maintained,
                est_rows: affected,
                est_cost: cost,
            }
        }
        BoundDml::Delete { database, table, filter } => {
            let (access, affected) = locate(ctx, database, table, filter, &[]);
            let mut cost = access.est_cost() + affected * 1.0;
            let mut maintained = Vec::new();
            for ix in ctx.config.indexes_on(database, table) {
                if ix.kind == IndexKind::NonClustered {
                    cost += affected * INDEX_MAINT_PAGES;
                    maintained.push(ix.name());
                }
            }
            for v in ctx.config.views(database) {
                if v.tables.iter().any(|t| t == table) {
                    cost += affected * VIEW_MAINT_PAGES_PER_TABLE * v.tables.len() as f64;
                    maintained.push(v.name());
                }
            }
            PlanNode::Delete {
                access: Box::new(access),
                maintained,
                est_rows: affected,
                est_cost: cost,
            }
        }
    }
}

/// Does the view read any of `columns` of `table` (join keys, group-by,
/// projections, aggregates)?
fn view_references_columns(
    v: &dta_physical::MaterializedView,
    table: &str,
    columns: &[String],
) -> bool {
    let hit =
        |qc: &dta_physical::QualifiedColumn| qc.table == table && columns.contains(&qc.column);
    v.group_by.iter().any(hit)
        || v.projected.iter().any(hit)
        || v.aggregates.iter().any(|a| a.arg_columns.iter().any(&hit))
        || v.join_pairs.iter().any(|j| hit(&j.left) || hit(&j.right))
}

/// Best access path to locate the affected rows.
fn locate(
    ctx: &PlanContext<'_>,
    database: &str,
    table: &str,
    filter: &SingleTableFilter,
    set_columns: &[String],
) -> (PlanNode, f64) {
    debug_assert_eq!(database, ctx.database);
    let sargs: Vec<&crate::query::Sarg> = filter.sargs.iter().collect();
    let mut required: Vec<String> = filter.referenced.iter().cloned().collect();
    for c in set_columns {
        if !required.contains(c) {
            required.push(c.clone());
        }
    }
    let opts = access_options(ctx, table, table, &sargs, filter.residuals, &required);
    let best = best_option(opts, None).expect("heap scan always available");
    let rows = best.access.est_rows;
    (PlanNode::Access(best.access), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareParams;
    use crate::provider::FixedSizes;
    use crate::query::{bind, BoundStatement};
    use crate::selectivity::Estimator;
    use dta_catalog::{Catalog, Column, ColumnType, Database, Table};
    use dta_physical::{Configuration, Index, PhysicalStructure};
    use dta_sql::parse_statement;
    use dta_stats::StatisticsManager;

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn dml(cat: &Catalog, sql: &str) -> BoundDml {
        match bind(cat, "db", &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Dml(d) => d,
            other => panic!("{other:?}"),
        }
    }

    fn cost_under(cat: &Catalog, sql: &str, config: &Configuration) -> f64 {
        let stats = StatisticsManager::new();
        let sizes = FixedSizes::default().with_table("db", "t", 100_000, 16);
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config,
            sizes: &sizes,
            hardware: HardwareParams::default(),
            database: "db",
        };
        plan_dml(&ctx, &dml(cat, sql)).est_cost()
    }

    #[test]
    fn inserts_pay_for_indexes() {
        let cat = catalog();
        let bare = cost_under(&cat, "INSERT INTO t VALUES (1, 2, 3)", &Configuration::new());
        let with_ix = cost_under(
            &cat,
            "INSERT INTO t VALUES (1, 2, 3)",
            &Configuration::from_structures([
                PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &[])),
                PhysicalStructure::Index(Index::non_clustered("db", "t", &["b"], &[])),
            ]),
        );
        assert!(with_ix > bare, "with_ix={with_ix} bare={bare}");
    }

    #[test]
    fn updates_pay_only_for_affected_indexes() {
        let cat = catalog();
        let cfg_a = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &[]),
        )]);
        let cfg_b = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["b"], &[]),
        )]);
        // update sets a — index on a is maintained, index on b is not;
        // but the index on b is also useless for the k predicate, so both
        // configs locate rows by scan.
        let on_a = cost_under(&cat, "UPDATE t SET a = 1 WHERE k = 5", &cfg_a);
        let on_b = cost_under(&cat, "UPDATE t SET a = 1 WHERE k = 5", &cfg_b);
        assert!(on_a > on_b, "on_a={on_a} on_b={on_b}");
    }

    #[test]
    fn update_uses_index_to_locate() {
        // with a statistic showing k is (nearly) unique, the index seek
        // locates the single affected row far cheaper than a scan
        let cat = catalog();
        let mut stats = StatisticsManager::new();
        stats.add(dta_stats::Statistic {
            key: dta_stats::StatKey::new("db", "t", &["k"]),
            histogram: dta_stats::Histogram::build(
                (0..1000).map(dta_catalog::Value::Int).collect(),
            ),
            densities: vec![1.0 / 100_000.0],
            row_count: 100_000,
            sample_rows: 1000,
        });
        let sizes = FixedSizes::default().with_table("db", "t", 100_000, 16);
        let run = |config: &Configuration| {
            let ctx = PlanContext {
                estimator: Estimator::new(&stats, "db"),
                config,
                sizes: &sizes,
                hardware: HardwareParams::default(),
                database: "db",
            };
            plan_dml(&ctx, &dml(&cat, "UPDATE t SET a = 1 WHERE k = 5")).est_cost()
        };
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "db",
            "t",
            &["k"],
            &[],
        ))]);
        let with_ix = run(&cfg);
        let without = run(&Configuration::new());
        assert!(with_ix < without, "with={with_ix} without={without}");
    }

    #[test]
    fn deletes_pay_for_views() {
        let cat = catalog();
        let view = dta_physical::MaterializedView::grouped(
            "db",
            &["t"],
            vec![],
            vec![dta_physical::QualifiedColumn::new("t", "a")],
            vec![dta_physical::ViewAggregate::count_star()],
        );
        let cfg = Configuration::from_structures([PhysicalStructure::View(view)]);
        let with_view = cost_under(&cat, "DELETE FROM t WHERE a = 3", &cfg);
        let without = cost_under(&cat, "DELETE FROM t WHERE a = 3", &Configuration::new());
        assert!(with_view > without);
    }

    #[test]
    fn maintenance_lists_populated() {
        let cat = catalog();
        let stats = StatisticsManager::new();
        let sizes = FixedSizes::default().with_table("db", "t", 100_000, 16);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "db",
            "t",
            &["a"],
            &[],
        ))]);
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &cfg,
            sizes: &sizes,
            hardware: HardwareParams::default(),
            database: "db",
        };
        match plan_dml(&ctx, &dml(&cat, "INSERT INTO t VALUES (1,2,3)")) {
            PlanNode::Insert { maintained, .. } => assert_eq!(maintained.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
