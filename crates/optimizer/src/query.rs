//! The binder: turns parsed statements into analyzed, catalog-resolved
//! query descriptions the planner consumes.

use dta_catalog::{Catalog, Value};
use dta_sql::{AggFunc, BinaryOp, ColumnRef, Expr, Literal, SelectStatement, Statement};
use std::collections::{BTreeMap, BTreeSet};

/// Binding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    UnknownDatabase(String),
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    Unsupported(String),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::UnknownDatabase(s) => write!(f, "unknown database '{s}'"),
            BindError::UnknownTable(s) => write!(f, "unknown table '{s}'"),
            BindError::UnknownColumn(s) => write!(f, "unknown column '{s}'"),
            BindError::AmbiguousColumn(s) => write!(f, "ambiguous column '{s}'"),
            BindError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
        }
    }
}

impl std::error::Error for BindError {}

/// A `(binding, column)` pair: `binding` is the alias (or table name)
/// used in the query, resolved against the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoundColumn {
    pub binding: String,
    pub column: String,
}

impl BoundColumn {
    pub fn new(binding: &str, column: &str) -> Self {
        Self { binding: binding.to_string(), column: column.to_string() }
    }
}

/// A table reference bound to a catalog table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTable {
    /// The name this table goes by in the query (alias or table name).
    pub binding: String,
    /// The underlying catalog table.
    pub table: String,
}

/// A sargable single-column predicate shape.
#[derive(Debug, Clone, PartialEq)]
pub enum SargOp {
    /// `col = v`
    Eq(Value),
    /// `col <> v` — sargable only in the sense of being estimable.
    NotEq(Value),
    /// A (half-)open range; bounds carry their inclusivity.
    Range { low: Option<(Value, bool)>, high: Option<(Value, bool)> },
    /// `col IN (v1 .. vk)`
    In(Vec<Value>),
    /// `col LIKE 'prefix%'`
    LikePrefix(String),
}

/// A sargable predicate on one bound column.
#[derive(Debug, Clone, PartialEq)]
pub struct Sarg {
    pub column: BoundColumn,
    pub op: SargOp,
}

impl Sarg {
    /// True if an index with this column as a key prefix can seek on it
    /// (equality and ranges can; `<>` cannot).
    pub fn is_seekable(&self) -> bool {
        !matches!(self.op, SargOp::NotEq(_))
    }

    /// The range this predicate restricts the column to, for partition
    /// elimination: `(low, high)` bounds, either possibly unbounded.
    pub fn value_range(&self) -> (Option<&Value>, Option<&Value>) {
        match &self.op {
            SargOp::Eq(v) => (Some(v), Some(v)),
            SargOp::NotEq(_) => (None, None),
            SargOp::Range { low, high } => {
                (low.as_ref().map(|(v, _)| v), high.as_ref().map(|(v, _)| v))
            }
            SargOp::In(vs) => (vs.iter().min(), vs.iter().max()),
            SargOp::LikePrefix(_) => (None, None),
        }
    }
}

/// An equi-join predicate between two bound columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPred {
    pub left: BoundColumn,
    pub right: BoundColumn,
}

impl JoinPred {
    /// Normalized constructor (sorted endpoints).
    pub fn new(a: BoundColumn, b: BoundColumn) -> Self {
        if a <= b {
            Self { left: a, right: b }
        } else {
            Self { left: b, right: a }
        }
    }

    /// The side of the join touching `binding`, if any.
    pub fn side_for(&self, binding: &str) -> Option<&BoundColumn> {
        if self.left.binding == binding {
            Some(&self.left)
        } else if self.right.binding == binding {
            Some(&self.right)
        } else {
            None
        }
    }

    /// The opposite side from `binding`.
    pub fn other_side(&self, binding: &str) -> Option<&BoundColumn> {
        if self.left.binding == binding {
            Some(&self.right)
        } else if self.right.binding == binding {
            Some(&self.left)
        } else {
            None
        }
    }
}

/// A bound aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAggregate {
    pub func: AggFunc,
    /// First column the argument references (width/statistics proxy);
    /// `None` = `COUNT(*)` or a column-free argument.
    pub arg: Option<BoundColumn>,
    pub distinct: bool,
    /// The raw argument expression, kept for canonicalization.
    pub arg_expr: Option<Expr>,
}

/// Canonical table-qualified text of an aggregate argument, plus the
/// bound columns it references. Every column reference is rewritten to
/// `table.column` (catalog table names, not aliases), so the same
/// expression written against a view definition and against a query
/// compares equal. Returns `None` when the expression cannot be
/// canonicalized unambiguously (self-joins, unresolvable columns).
pub fn canonical_agg_arg(bound: &BoundSelect, arg: &Expr) -> Option<(String, Vec<BoundColumn>)> {
    // binding → table must be injective (no self-joins)
    let mut tables: Vec<&str> = bound.tables.iter().map(|t| t.table.as_str()).collect();
    tables.sort_unstable();
    let n = tables.len();
    tables.dedup();
    if tables.len() != n {
        return None;
    }
    let mut rewritten = arg.clone();
    let mut cols: Vec<BoundColumn> = Vec::new();
    let mut ok = true;
    dta_sql::visit::rewrite_columns(&mut rewritten, &mut |c: &mut ColumnRef| {
        let binding = match &c.table {
            Some(q) => bound.tables.iter().find(|t| t.binding == *q).map(|t| t.binding.clone()),
            None => {
                // unique binding whose referenced columns contain it
                let mut hits = bound
                    .referenced
                    .iter()
                    .filter(|(_, set)| set.contains(&c.column))
                    .map(|(b, _)| b.clone());
                let first = hits.next();
                if hits.next().is_some() {
                    None
                } else {
                    first
                }
            }
        };
        match binding.and_then(|b| bound.table_of(&b).map(|t| (b, t.to_string()))) {
            Some((b, table)) => {
                cols.push(BoundColumn::new(&b, &c.column));
                c.table = Some(table);
            }
            None => ok = false,
        }
    });
    if !ok {
        return None;
    }
    cols.sort();
    cols.dedup();
    Some((rewritten.to_string(), cols))
}

/// A fully analyzed SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    pub database: String,
    pub tables: Vec<BoundTable>,
    /// Sargable single-table predicates.
    pub sargs: Vec<Sarg>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPred>,
    /// Residual (non-sargable) conjunct count per binding.
    pub residuals: BTreeMap<String, usize>,
    /// Residual conjuncts spanning multiple tables.
    pub cross_residuals: usize,
    /// The residual conjuncts themselves (binding they are attributable
    /// to, or `None` for cross-table), kept for the execution engine.
    pub residual_exprs: Vec<(Option<String>, Expr)>,
    /// Group-by columns.
    pub group_by: Vec<BoundColumn>,
    /// Aggregates in the select list.
    pub aggregates: Vec<BoundAggregate>,
    /// Order-by columns with descending flags.
    pub order_by: Vec<(BoundColumn, bool)>,
    /// Columns referenced anywhere, per binding — what an index must
    /// carry to be covering.
    pub referenced: BTreeMap<String, BTreeSet<String>>,
    pub distinct: bool,
    pub top: Option<u64>,
}

impl BoundSelect {
    /// Catalog table behind a binding.
    pub fn table_of(&self, binding: &str) -> Option<&str> {
        self.tables.iter().find(|t| t.binding == binding).map(|t| t.table.as_str())
    }

    /// Sargs restricted to one binding.
    pub fn sargs_for(&self, binding: &str) -> Vec<&Sarg> {
        self.sargs.iter().filter(|s| s.column.binding == binding).collect()
    }

    /// Columns the plan must produce for one binding.
    pub fn referenced_for(&self, binding: &str) -> Vec<String> {
        self.referenced.get(binding).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// True if the query computes aggregates.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }
}

/// A bound DML statement (single-table by construction of the dialect).
#[derive(Debug, Clone, PartialEq)]
pub enum BoundDml {
    Insert { database: String, table: String, rows: u64 },
    Update { database: String, table: String, set_columns: Vec<String>, filter: SingleTableFilter },
    Delete { database: String, table: String, filter: SingleTableFilter },
}

/// Predicate information for locating affected rows of a DML statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SingleTableFilter {
    pub sargs: Vec<Sarg>,
    pub residuals: usize,
    /// Residual conjunct expressions, kept for the execution engine.
    pub residual_exprs: Vec<Expr>,
    /// Columns the filter references (for covering checks).
    pub referenced: BTreeSet<String>,
}

/// Any bound statement.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundStatement {
    Select(BoundSelect),
    Dml(BoundDml),
}

/// Bind a statement against `catalog` in the context of `database`.
pub fn bind(
    catalog: &Catalog,
    database: &str,
    stmt: &Statement,
) -> Result<BoundStatement, BindError> {
    match stmt {
        Statement::Select(s) => bind_select(catalog, database, s).map(BoundStatement::Select),
        Statement::Insert(i) => Ok(BoundStatement::Dml(BoundDml::Insert {
            database: database.to_string(),
            table: resolve_table(catalog, database, &i.table)?,
            rows: i.rows.len() as u64,
        })),
        Statement::Update(u) => {
            let table = resolve_table(catalog, database, &u.table)?;
            let binder = SingleBinder::new(catalog, database, &table)?;
            let mut filter = binder.bind_filter(u.predicate.as_ref())?;
            for (_, e) in &u.assignments {
                binder.collect_refs(e, &mut filter.referenced);
            }
            Ok(BoundStatement::Dml(BoundDml::Update {
                database: database.to_string(),
                table,
                set_columns: u.assignments.iter().map(|(c, _)| c.clone()).collect(),
                filter,
            }))
        }
        Statement::Delete(d) => {
            let table = resolve_table(catalog, database, &d.table)?;
            let binder = SingleBinder::new(catalog, database, &table)?;
            let filter = binder.bind_filter(d.predicate.as_ref())?;
            Ok(BoundStatement::Dml(BoundDml::Delete {
                database: database.to_string(),
                table,
                filter,
            }))
        }
    }
}

fn resolve_table(catalog: &Catalog, database: &str, table: &str) -> Result<String, BindError> {
    let db = catalog
        .database(database)
        .ok_or_else(|| BindError::UnknownDatabase(database.to_string()))?;
    db.table(table)
        .map(|t| t.name.clone())
        .ok_or_else(|| BindError::UnknownTable(table.to_string()))
}

/// Helper for binding single-table filters (UPDATE/DELETE).
struct SingleBinder<'a> {
    catalog: &'a Catalog,
    database: String,
    table: String,
}

impl<'a> SingleBinder<'a> {
    fn new(catalog: &'a Catalog, database: &str, table: &str) -> Result<Self, BindError> {
        Ok(Self { catalog, database: database.to_string(), table: table.to_string() })
    }

    fn has_column(&self, col: &str) -> bool {
        self.catalog
            .database(&self.database)
            .and_then(|d| d.table(&self.table))
            .is_some_and(|t| t.has_column(col))
    }

    fn bind_filter(&self, predicate: Option<&Expr>) -> Result<SingleTableFilter, BindError> {
        let mut out = SingleTableFilter::default();
        let Some(pred) = predicate else { return Ok(out) };
        for conjunct in pred.conjuncts() {
            match classify_conjunct(conjunct) {
                Classified::Sarg { column, op } => {
                    if !self.has_column(&column.column) {
                        return Err(BindError::UnknownColumn(column.column));
                    }
                    out.referenced.insert(column.column.clone());
                    out.sargs
                        .push(Sarg { column: BoundColumn::new(&self.table, &column.column), op });
                }
                _ => {
                    out.residuals += 1;
                    out.residual_exprs.push(conjunct.clone());
                    collect_columns(conjunct, &mut |c| {
                        out.referenced.insert(c.column.clone());
                    });
                }
            }
        }
        Ok(out)
    }

    fn collect_refs(&self, e: &Expr, into: &mut BTreeSet<String>) {
        collect_columns(e, &mut |c| {
            into.insert(c.column.clone());
        });
    }
}

fn collect_columns(e: &Expr, f: &mut impl FnMut(&ColumnRef)) {
    dta_sql::visit::walk_expr(e, &mut |node| {
        if let Expr::Column(c) = node {
            f(c);
        }
    });
}

/// What a WHERE conjunct turned out to be.
enum Classified {
    Sarg { column: ColumnRef, op: SargOp },
    Join { left: ColumnRef, right: ColumnRef },
    Residual,
}

fn literal_value(l: &Literal) -> Option<Value> {
    Some(match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    })
}

fn classify_conjunct(e: &Expr) -> Classified {
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(l)) => classify_cmp(c, *op, l),
            (Expr::Literal(l), Expr::Column(c)) => classify_cmp(c, op.flip(), l),
            (Expr::Column(a), Expr::Column(b)) if *op == BinaryOp::Eq => {
                Classified::Join { left: a.clone(), right: b.clone() }
            }
            _ => Classified::Residual,
        },
        Expr::Between { expr, negated: false, low, high } => {
            if let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            {
                if let (Some(lo), Some(hi)) = (literal_value(lo), literal_value(hi)) {
                    return Classified::Sarg {
                        column: c.clone(),
                        op: SargOp::Range { low: Some((lo, true)), high: Some((hi, true)) },
                    };
                }
            }
            Classified::Residual
        }
        Expr::InList { expr, negated: false, list } => {
            if let Expr::Column(c) = &**expr {
                let vals: Option<Vec<Value>> = list
                    .iter()
                    .map(|e| match e {
                        Expr::Literal(l) => literal_value(l),
                        _ => None,
                    })
                    .collect();
                if let Some(vals) = vals {
                    return Classified::Sarg { column: c.clone(), op: SargOp::In(vals) };
                }
            }
            Classified::Residual
        }
        Expr::Like { expr, negated: false, pattern } => {
            if let (Expr::Column(c), Expr::Literal(Literal::Str(p))) = (&**expr, &**pattern) {
                // 'abc%' (a single trailing wildcard) is a seekable prefix
                if let Some(prefix) = p.strip_suffix('%') {
                    if !prefix.is_empty() && !prefix.contains('%') && !prefix.contains('_') {
                        return Classified::Sarg {
                            column: c.clone(),
                            op: SargOp::LikePrefix(prefix.to_string()),
                        };
                    }
                }
            }
            Classified::Residual
        }
        _ => Classified::Residual,
    }
}

fn classify_cmp(c: &ColumnRef, op: BinaryOp, l: &Literal) -> Classified {
    let Some(v) = literal_value(l) else { return Classified::Residual };
    let op = match op {
        BinaryOp::Eq => SargOp::Eq(v),
        BinaryOp::NotEq => SargOp::NotEq(v),
        BinaryOp::Lt => SargOp::Range { low: None, high: Some((v, false)) },
        BinaryOp::LtEq => SargOp::Range { low: None, high: Some((v, true)) },
        BinaryOp::Gt => SargOp::Range { low: Some((v, false)), high: None },
        BinaryOp::GtEq => SargOp::Range { low: Some((v, true)), high: None },
        _ => return Classified::Residual,
    };
    Classified::Sarg { column: c.clone(), op }
}

/// Binds a SELECT statement.
fn bind_select(
    catalog: &Catalog,
    database: &str,
    s: &SelectStatement,
) -> Result<BoundSelect, BindError> {
    let db = catalog
        .database(database)
        .ok_or_else(|| BindError::UnknownDatabase(database.to_string()))?;

    // resolve FROM
    let mut tables: Vec<BoundTable> = Vec::new();
    let mut join_exprs: Vec<Expr> = Vec::new();
    for twj in &s.from {
        for tref in twj.tables() {
            let t =
                db.table(&tref.name).ok_or_else(|| BindError::UnknownTable(tref.name.clone()))?;
            tables.push(BoundTable {
                binding: tref.binding_name().to_string(),
                table: t.name.clone(),
            });
        }
        for j in &twj.joins {
            join_exprs.push(j.on.clone());
        }
    }
    if tables.is_empty() {
        return Err(BindError::Unsupported("SELECT without FROM".into()));
    }

    // column resolution against the bound tables
    let resolve = |c: &ColumnRef| -> Result<BoundColumn, BindError> {
        if let Some(q) = &c.table {
            let bt = tables
                .iter()
                .find(|t| t.binding == *q)
                .ok_or_else(|| BindError::UnknownTable(q.clone()))?;
            let t = db.table(&bt.table).expect("bound table exists");
            if !t.has_column(&c.column) {
                return Err(BindError::UnknownColumn(format!("{q}.{}", c.column)));
            }
            Ok(BoundColumn::new(&bt.binding, &c.column))
        } else {
            let mut hits = tables
                .iter()
                .filter(|bt| db.table(&bt.table).is_some_and(|t| t.has_column(&c.column)));
            let first = hits.next().ok_or_else(|| BindError::UnknownColumn(c.column.clone()))?;
            if hits.next().is_some() {
                return Err(BindError::AmbiguousColumn(c.column.clone()));
            }
            Ok(BoundColumn::new(&first.binding, &c.column))
        }
    };

    let mut bound = BoundSelect {
        database: database.to_string(),
        tables: tables.clone(),
        sargs: Vec::new(),
        joins: Vec::new(),
        residuals: BTreeMap::new(),
        cross_residuals: 0,
        residual_exprs: Vec::new(),
        group_by: Vec::new(),
        aggregates: Vec::new(),
        order_by: Vec::new(),
        referenced: BTreeMap::new(),
        distinct: s.distinct,
        top: s.top,
    };

    let note_ref = |bc: &BoundColumn, bound: &mut BoundSelect| {
        bound.referenced.entry(bc.binding.clone()).or_default().insert(bc.column.clone());
    };

    // conjuncts from WHERE and JOIN ... ON, treated uniformly
    let mut conjuncts: Vec<Expr> = Vec::new();
    for je in &join_exprs {
        conjuncts.extend(je.conjuncts().into_iter().cloned());
    }
    if let Some(p) = &s.predicate {
        conjuncts.extend(p.conjuncts().into_iter().cloned());
    }

    for conjunct in &conjuncts {
        match classify_conjunct(conjunct) {
            Classified::Sarg { column, op } => {
                let bc = resolve(&column)?;
                note_ref(&bc, &mut bound);
                bound.sargs.push(Sarg { column: bc, op });
            }
            Classified::Join { left, right } => {
                let l = resolve(&left)?;
                let r = resolve(&right)?;
                note_ref(&l, &mut bound);
                note_ref(&r, &mut bound);
                if l.binding == r.binding {
                    // same-table column equality: residual
                    *bound.residuals.entry(l.binding.clone()).or_default() += 1;
                    bound.residual_exprs.push((Some(l.binding.clone()), conjunct.clone()));
                } else {
                    bound.joins.push(JoinPred::new(l, r));
                }
            }
            Classified::Residual => {
                // attribute to a single table if possible
                let mut bindings: BTreeSet<String> = BTreeSet::new();
                let mut err = None;
                collect_columns(conjunct, &mut |c| match resolve(c) {
                    Ok(bc) => {
                        bindings.insert(bc.binding.clone());
                        bound
                            .referenced
                            .entry(bc.binding.clone())
                            .or_default()
                            .insert(bc.column.clone());
                    }
                    Err(e) => err = Some(e),
                });
                if let Some(e) = err {
                    return Err(e);
                }
                if bindings.len() == 1 {
                    let b = bindings.into_iter().next().expect("one binding");
                    *bound.residuals.entry(b.clone()).or_default() += 1;
                    bound.residual_exprs.push((Some(b), conjunct.clone()));
                } else {
                    bound.cross_residuals += 1;
                    bound.residual_exprs.push((None, conjunct.clone()));
                }
            }
        }
    }

    // projections
    for item in &s.projections {
        bind_expr_refs(&item.expr, &resolve, &mut bound)?;
        collect_aggregates(&item.expr, &resolve, &mut bound.aggregates)?;
    }
    // HAVING contributes aggregates and references too
    if let Some(h) = &s.having {
        bind_expr_refs(h, &resolve, &mut bound)?;
        collect_aggregates(h, &resolve, &mut bound.aggregates)?;
    }

    // group by
    for g in &s.group_by {
        match g {
            Expr::Column(c) => {
                let bc = resolve(c)?;
                note_ref(&bc, &mut bound);
                bound.group_by.push(bc);
            }
            _ => return Err(BindError::Unsupported("non-column GROUP BY expression".into())),
        }
    }

    // order by (only column sort keys participate in interesting orders)
    for o in &s.order_by {
        if let Expr::Column(c) = &o.expr {
            let bc = resolve(c)?;
            note_ref(&bc, &mut bound);
            bound.order_by.push((bc, o.desc));
        } else {
            bind_expr_refs(&o.expr, &resolve, &mut bound)?;
        }
    }

    // SELECT * pulls every column of every table
    if s.projections.is_empty() {
        for bt in &tables {
            let t = db.table(&bt.table).expect("bound");
            let entry = bound.referenced.entry(bt.binding.clone()).or_default();
            for c in &t.columns {
                entry.insert(c.name.clone());
            }
        }
    }

    Ok(bound)
}

fn bind_expr_refs(
    e: &Expr,
    resolve: &impl Fn(&ColumnRef) -> Result<BoundColumn, BindError>,
    bound: &mut BoundSelect,
) -> Result<(), BindError> {
    let mut err = None;
    collect_columns(e, &mut |c| match resolve(c) {
        Ok(bc) => {
            bound.referenced.entry(bc.binding.clone()).or_default().insert(bc.column.clone());
        }
        Err(e) => err = Some(e),
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn collect_aggregates(
    e: &Expr,
    resolve: &impl Fn(&ColumnRef) -> Result<BoundColumn, BindError>,
    out: &mut Vec<BoundAggregate>,
) -> Result<(), BindError> {
    let mut err = None;
    dta_sql::visit::walk_expr(e, &mut |node| {
        if let Expr::Aggregate { func, distinct, arg } = node {
            let bound_arg = match arg {
                Some(a) => match &**a {
                    Expr::Column(c) => match resolve(c) {
                        Ok(bc) => Some(bc),
                        Err(e) => {
                            err = Some(e);
                            None
                        }
                    },
                    other => {
                        // aggregate over an expression: record its columns
                        // via the first column reference (cost-relevant
                        // width only)
                        let mut first = None;
                        collect_columns(other, &mut |c| {
                            if first.is_none() {
                                first = Some(c.clone());
                            }
                        });
                        match first.map(|c| resolve(&c)).transpose() {
                            Ok(v) => v,
                            Err(e) => {
                                err = Some(e);
                                None
                            }
                        }
                    }
                },
                None => None,
            };
            out.push(BoundAggregate {
                func: *func,
                arg: bound_arg,
                distinct: *distinct,
                arg_expr: arg.as_deref().cloned(),
            });
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table};
    use dta_sql::parse_statement;

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("x", ColumnType::Int),
                Column::new("s", ColumnType::Str(20)),
            ],
        ))
        .unwrap();
        db.add_table(Table::new(
            "u",
            vec![Column::new("k", ColumnType::Int), Column::new("b", ColumnType::Int)],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn bind_sel(sql: &str) -> BoundSelect {
        match bind(&catalog(), "db", &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn binds_paper_example_1() {
        let b = bind_sel("SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a");
        assert_eq!(b.tables.len(), 1);
        assert_eq!(b.sargs.len(), 1);
        assert!(matches!(b.sargs[0].op, SargOp::Range { .. }));
        assert_eq!(b.group_by, vec![BoundColumn::new("t", "a")]);
        assert_eq!(b.aggregates.len(), 1);
        assert!(b.is_aggregate());
        let refs = b.referenced_for("t");
        assert!(refs.contains(&"a".to_string()) && refs.contains(&"x".to_string()));
    }

    #[test]
    fn join_extraction_from_where_and_on() {
        let b1 = bind_sel("SELECT a FROM t, u WHERE t.x = u.k AND a > 5");
        assert_eq!(b1.joins.len(), 1);
        let b2 = bind_sel("SELECT a FROM t JOIN u ON t.x = u.k WHERE a > 5");
        assert_eq!(b2.joins, b1.joins);
        assert_eq!(b2.sargs.len(), 1);
    }

    #[test]
    fn sarg_classification() {
        let b = bind_sel(
            "SELECT a FROM t WHERE a = 1 AND x BETWEEN 2 AND 9 AND s LIKE 'ab%' AND s IN ('p', 'q') AND a <> 4",
        );
        assert_eq!(b.sargs.len(), 5);
        assert!(matches!(b.sargs[0].op, SargOp::Eq(_)));
        assert!(matches!(b.sargs[1].op, SargOp::Range { .. }));
        assert!(matches!(b.sargs[2].op, SargOp::LikePrefix(_)));
        assert!(matches!(b.sargs[3].op, SargOp::In(_)));
        assert!(matches!(b.sargs[4].op, SargOp::NotEq(_)));
        assert!(!b.sargs[4].is_seekable());
    }

    #[test]
    fn residuals_counted_per_table() {
        let b = bind_sel("SELECT a FROM t, u WHERE a + x > 5 AND (a = 1 OR x = 2) AND t.a > u.b");
        assert_eq!(b.residuals.get("t"), Some(&2));
        assert_eq!(b.cross_residuals, 1);
    }

    #[test]
    fn flipped_comparison_normalized() {
        let b = bind_sel("SELECT a FROM t WHERE 10 > x");
        match &b.sargs[0].op {
            SargOp::Range { low: None, high: Some((Value::Int(10), false)) } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aliases_resolve() {
        let b = bind_sel("SELECT p.a FROM t AS p JOIN u ON p.x = u.k");
        assert_eq!(b.tables[0].binding, "p");
        assert_eq!(b.tables[0].table, "t");
        assert_eq!(b.table_of("p"), Some("t"));
    }

    #[test]
    fn ambiguity_and_unknowns_error() {
        let cat = catalog();
        let err = |sql: &str| bind(&cat, "db", &parse_statement(sql).unwrap()).unwrap_err();
        assert!(matches!(err("SELECT zzz FROM t"), BindError::UnknownColumn(_)));
        assert!(matches!(err("SELECT a FROM missing"), BindError::UnknownTable(_)));
        assert!(matches!(
            bind(&cat, "nodb", &parse_statement("SELECT a FROM t").unwrap()).unwrap_err(),
            BindError::UnknownDatabase(_)
        ));
        // same table twice: bare column unique per binding set? "a" exists
        // only in t but both bindings expose it -> ambiguous
        assert!(matches!(
            err("SELECT a FROM t, t AS t2 WHERE t.x = t2.x"),
            BindError::AmbiguousColumn(_)
        ));
    }

    #[test]
    fn select_star_references_all_columns() {
        let b = bind_sel("SELECT * FROM t WHERE a = 1");
        assert_eq!(b.referenced_for("t").len(), 3);
    }

    #[test]
    fn dml_binding() {
        let cat = catalog();
        let upd = bind(&cat, "db", &parse_statement("UPDATE t SET a = x + 1 WHERE x < 5").unwrap())
            .unwrap();
        match upd {
            BoundStatement::Dml(BoundDml::Update { set_columns, filter, .. }) => {
                assert_eq!(set_columns, vec!["a"]);
                assert_eq!(filter.sargs.len(), 1);
                assert!(filter.referenced.contains("x"));
            }
            other => panic!("{other:?}"),
        }
        let ins = bind(
            &cat,
            "db",
            &parse_statement("INSERT INTO t VALUES (1, 2, 'x'), (3, 4, 'y')").unwrap(),
        )
        .unwrap();
        match ins {
            BoundStatement::Dml(BoundDml::Insert { rows, .. }) => assert_eq!(rows, 2),
            other => panic!("{other:?}"),
        }
        let del = bind(&cat, "db", &parse_statement("DELETE FROM t WHERE a = 3").unwrap()).unwrap();
        assert!(matches!(del, BoundStatement::Dml(BoundDml::Delete { .. })));
    }

    #[test]
    fn value_ranges_for_partition_elimination() {
        let b = bind_sel("SELECT a FROM t WHERE x BETWEEN 5 AND 9");
        let (lo, hi) = b.sargs[0].value_range();
        assert_eq!(lo, Some(&Value::Int(5)));
        assert_eq!(hi, Some(&Value::Int(9)));
        let b = bind_sel("SELECT a FROM t WHERE x IN (3, 7, 5)");
        let (lo, hi) = b.sargs[0].value_range();
        assert_eq!(lo, Some(&Value::Int(3)));
        assert_eq!(hi, Some(&Value::Int(7)));
    }

    #[test]
    fn order_by_and_top() {
        let b = bind_sel("SELECT TOP 10 a FROM t ORDER BY x DESC");
        assert_eq!(b.top, Some(10));
        assert_eq!(b.order_by.len(), 1);
        assert!(b.order_by[0].1);
    }
}
