//! Cardinality estimation from statistics.

use crate::query::{BoundColumn, Sarg, SargOp};
use dta_catalog::Value;
use dta_stats::histogram::fallback;
use dta_stats::StatisticsManager;

/// Selectivity applied per residual (non-sargable) conjunct.
pub const RESIDUAL_SEL: f64 = 0.33;

/// Floor applied to every estimate so costs stay well-behaved.
pub const MIN_SEL: f64 = 1e-7;

/// Estimator over a statistics manager. `binding → table` resolution is
/// the caller's job; all methods take catalog table names.
pub struct Estimator<'a> {
    pub stats: &'a StatisticsManager,
    pub database: &'a str,
}

impl<'a> Estimator<'a> {
    /// New estimator for one database.
    pub fn new(stats: &'a StatisticsManager, database: &'a str) -> Self {
        Self { stats, database }
    }

    /// Selectivity of a single sargable predicate on `table`.
    pub fn sarg_selectivity(&self, table: &str, sarg: &Sarg) -> f64 {
        let col = &sarg.column.column;
        let hist = self.stats.histogram(self.database, table, col);
        let sel = match (&sarg.op, hist) {
            (SargOp::Eq(v), Some(h)) => h.selectivity_eq(v),
            (SargOp::Eq(_), None) => self.eq_from_density(table, col).unwrap_or(fallback::EQ),
            (SargOp::NotEq(v), Some(h)) => 1.0 - h.selectivity_eq(v),
            (SargOp::NotEq(_), None) => 1.0 - fallback::EQ,
            (SargOp::Range { low, high }, Some(h)) => match (low, high) {
                (Some((lo, lo_inc)), Some((hi, _hi_inc))) => {
                    // between-style: inclusive bounds dominate at our precision
                    let _ = lo_inc;
                    h.selectivity_between(lo, hi)
                }
                (Some((lo, inc)), None) => h.selectivity_gt(lo, *inc),
                (None, Some((hi, inc))) => h.selectivity_lt(hi, *inc),
                (None, None) => 1.0,
            },
            (SargOp::Range { .. }, None) => fallback::RANGE,
            (SargOp::In(vs), Some(h)) => {
                vs.iter().map(|v| h.selectivity_eq(v)).sum::<f64>().min(1.0)
            }
            (SargOp::In(vs), None) => (vs.len() as f64
                * self.eq_from_density(table, col).unwrap_or(fallback::EQ))
            .min(1.0),
            (SargOp::LikePrefix(p), Some(h)) => {
                let (lo, hi) = prefix_range(p);
                h.selectivity_between(&lo, &hi)
            }
            (SargOp::LikePrefix(_), None) => fallback::LIKE,
        };
        sel.clamp(MIN_SEL, 1.0)
    }

    fn eq_from_density(&self, table: &str, col: &str) -> Option<f64> {
        self.stats
            .scaled_distinct(self.database, table, &[col.to_string()])
            .map(|d| 1.0 / d.max(1.0))
    }

    /// Combined selectivity of several sargs plus residual conjuncts on
    /// one table (independence assumption).
    pub fn table_selectivity(&self, table: &str, sargs: &[&Sarg], residuals: usize) -> f64 {
        let mut sel = 1.0;
        for s in sargs {
            sel *= self.sarg_selectivity(table, s);
        }
        sel *= RESIDUAL_SEL.powi(residuals as i32);
        sel.clamp(MIN_SEL, 1.0)
    }

    /// Estimated distinct count of one column, given the table's row
    /// count as a cap.
    pub fn distinct_count(&self, table: &str, column: &str, table_rows: f64) -> f64 {
        if let Some(d) = self.stats.scaled_distinct(self.database, table, &[column.to_string()]) {
            return d.clamp(1.0, table_rows.max(1.0));
        }
        if let Some(h) = self.stats.histogram(self.database, table, column) {
            if !h.is_empty() {
                return h.distinct_count().clamp(1.0, table_rows.max(1.0));
            }
        }
        // textbook default: 10% of rows are distinct
        (table_rows * 0.1).max(1.0)
    }

    /// Join selectivity of `lt.lc = rt.rc`: `1 / max(d_l, d_r)`.
    pub fn join_selectivity(
        &self,
        left_table: &str,
        left_col: &str,
        left_rows: f64,
        right_table: &str,
        right_col: &str,
        right_rows: f64,
    ) -> f64 {
        let dl = self.distinct_count(left_table, left_col, left_rows);
        let dr = self.distinct_count(right_table, right_col, right_rows);
        (1.0 / dl.max(dr)).clamp(MIN_SEL, 1.0)
    }

    /// Estimated number of groups for a GROUP BY over `columns`
    /// (`(table, column)` pairs), given the input cardinality.
    ///
    /// Uses a multi-column density when one statistic covers the whole
    /// set on a single table, otherwise the product of per-column
    /// distincts, always capped by the input cardinality.
    pub fn group_count(&self, columns: &[(String, BoundColumn)], input_rows: f64) -> f64 {
        if columns.is_empty() {
            return 1.0;
        }
        // single-table group set: try exact density
        let first_table = &columns[0].0;
        if columns.iter().all(|(t, _)| t == first_table) {
            let cols: Vec<String> = columns.iter().map(|(_, c)| c.column.clone()).collect();
            if let Some(d) = self.stats.scaled_distinct(self.database, first_table, &cols) {
                return d.clamp(1.0, input_rows.max(1.0));
            }
        }
        let mut groups = 1.0;
        for (t, c) in columns {
            groups *= self.distinct_count(t, &c.column, input_rows);
            if groups > input_rows {
                break;
            }
        }
        groups.clamp(1.0, input_rows.max(1.0))
    }
}

/// Lower/upper bound values of a string prefix match `LIKE 'p%'`.
pub fn prefix_range(prefix: &str) -> (Value, Value) {
    let lo = Value::Str(prefix.to_string());
    let mut hi_bytes: Vec<u8> = prefix.as_bytes().to_vec();
    // increment the last byte; saturate by appending a high sentinel
    match hi_bytes.last_mut() {
        Some(b) if *b < 0xff => *b += 1,
        _ => hi_bytes.push(0xff),
    }
    let hi = Value::Str(String::from_utf8_lossy(&hi_bytes).into_owned());
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_stats::histogram::Histogram;
    use dta_stats::{StatKey, Statistic};

    fn stats() -> StatisticsManager {
        let mut m = StatisticsManager::new();
        // column a: uniform ints 0..1000
        m.add(Statistic {
            key: StatKey::new("db", "t", &["a"]),
            histogram: Histogram::build((0..1000).map(Value::Int).collect()),
            densities: vec![1.0 / 1000.0],
            row_count: 1000,
            sample_rows: 1000,
        });
        // column g: 10 distinct
        m.add(Statistic {
            key: StatKey::new("db", "t", &["g", "a"]),
            histogram: Histogram::build((0..1000).map(|i| Value::Int(i % 10)).collect()),
            densities: vec![0.1, 1.0 / 1000.0],
            row_count: 1000,
            sample_rows: 1000,
        });
        m
    }

    fn sarg(col: &str, op: SargOp) -> Sarg {
        Sarg { column: BoundColumn::new("t", col), op }
    }

    #[test]
    fn range_and_eq() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        let s = e.sarg_selectivity(
            "t",
            &sarg("a", SargOp::Range { low: None, high: Some((Value::Int(100), false)) }),
        );
        assert!((s - 0.1).abs() < 0.03, "{s}");
        let s = e.sarg_selectivity("t", &sarg("a", SargOp::Eq(Value::Int(5))));
        assert!(s < 0.01, "{s}");
        let s = e.sarg_selectivity("t", &sarg("g", SargOp::Eq(Value::Int(3))));
        assert!((s - 0.1).abs() < 0.03, "{s}");
    }

    #[test]
    fn fallbacks_without_stats() {
        let m = StatisticsManager::new();
        let e = Estimator::new(&m, "db");
        assert_eq!(e.sarg_selectivity("t", &sarg("z", SargOp::Eq(Value::Int(1)))), fallback::EQ);
        assert_eq!(
            e.sarg_selectivity(
                "t",
                &sarg("z", SargOp::Range { low: Some((Value::Int(0), true)), high: None })
            ),
            fallback::RANGE
        );
        assert_eq!(
            e.sarg_selectivity("t", &sarg("z", SargOp::LikePrefix("ab".into()))),
            fallback::LIKE
        );
    }

    #[test]
    fn in_list_sums() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        let one = e.sarg_selectivity("t", &sarg("g", SargOp::Eq(Value::Int(3))));
        let three = e.sarg_selectivity(
            "t",
            &sarg("g", SargOp::In(vec![Value::Int(1), Value::Int(2), Value::Int(3)])),
        );
        assert!((three - 3.0 * one).abs() < 0.02, "one={one} three={three}");
    }

    #[test]
    fn combined_with_residuals() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        let s1 = sarg("g", SargOp::Eq(Value::Int(3)));
        let sel = e.table_selectivity("t", &[&s1], 1);
        assert!((sel - 0.1 * RESIDUAL_SEL).abs() < 0.02);
    }

    #[test]
    fn distinct_counts() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        assert!((e.distinct_count("t", "g", 1000.0) - 10.0).abs() < 1e-6);
        assert!((e.distinct_count("t", "a", 1000.0) - 1000.0).abs() < 1e-6);
        // unknown column: 10% default
        assert!((e.distinct_count("t", "zzz", 1000.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn join_selectivity_uses_max_distinct() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        let s = e.join_selectivity("t", "a", 1000.0, "t", "g", 1000.0);
        assert!((s - 0.001).abs() < 1e-6);
    }

    #[test]
    fn group_counts() {
        let m = stats();
        let e = Estimator::new(&m, "db");
        let g = e.group_count(&[("t".to_string(), BoundColumn::new("t", "g"))], 1000.0);
        assert!((g - 10.0).abs() < 1e-6);
        // multi-column with exact density for (g, a)
        let g2 = e.group_count(
            &[
                ("t".to_string(), BoundColumn::new("t", "g")),
                ("t".to_string(), BoundColumn::new("t", "a")),
            ],
            1000.0,
        );
        assert!((g2 - 1000.0).abs() < 1e-6);
        // capped by input rows
        let g3 = e.group_count(&[("t".to_string(), BoundColumn::new("t", "a"))], 50.0);
        assert!(g3 <= 50.0);
    }

    #[test]
    fn prefix_ranges() {
        let (lo, hi) = prefix_range("ab");
        assert_eq!(lo, Value::Str("ab".into()));
        assert_eq!(hi, Value::Str("ac".into()));
        let (_, hi) = prefix_range("a\u{7f}");
        assert!(matches!(hi, Value::Str(_)));
    }
}
