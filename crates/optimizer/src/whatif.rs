//! The what-if optimization facade.
//!
//! `optimize(database, statement, configuration)` returns the estimated
//! best plan *as if* the configuration were materialized — no structure
//! needs to exist physically. This is the interface DTA calls for every
//! (query, configuration) evaluation, and the hardware parameters are
//! explicit so a test server can impersonate a production server (§5.3).

use crate::access::{PlanContext, CPU_W};
use crate::dml::plan_dml;
use crate::hardware::HardwareParams;
use crate::join::plan_joins;
use crate::plan::{Plan, PlanNode};
use crate::provider::TableStatsProvider;
use crate::query::{bind, BindError, BoundColumn, BoundSelect, BoundStatement};
use crate::selectivity::Estimator;
use crate::views::{estimate_view_rows, view_plans, view_row_width};
use dta_catalog::Catalog;
use dta_physical::{Configuration, MaterializedView, RangePartitioning};
use dta_sql::Statement;
use dta_stats::StatisticsManager;
use dta_storage::PAGE_SIZE;

/// The what-if optimizer: stateless over borrowed server state.
pub struct WhatIfOptimizer<'a> {
    pub catalog: &'a Catalog,
    pub stats: &'a StatisticsManager,
    pub sizes: &'a dyn TableStatsProvider,
    pub hardware: HardwareParams,
}

impl<'a> WhatIfOptimizer<'a> {
    /// Construct over server state.
    pub fn new(
        catalog: &'a Catalog,
        stats: &'a StatisticsManager,
        sizes: &'a dyn TableStatsProvider,
        hardware: HardwareParams,
    ) -> Self {
        Self { catalog, stats, sizes, hardware }
    }

    /// Optimize a statement under a hypothetical configuration.
    pub fn optimize(
        &self,
        database: &str,
        stmt: &Statement,
        config: &Configuration,
    ) -> Result<Plan, BindError> {
        let bound = bind(self.catalog, database, stmt)?;
        let ctx = PlanContext {
            estimator: Estimator::new(self.stats, database),
            config,
            sizes: self.sizes,
            hardware: self.hardware,
            database,
        };
        let root = match &bound {
            BoundStatement::Select(b) => plan_select(&ctx, b),
            BoundStatement::Dml(d) => plan_dml(&ctx, d),
        };
        Ok(Plan::new(root))
    }

    /// Estimated logical row count of a materialized view (used for
    /// storage sizing of hypothetical views).
    pub fn view_rows(&self, view: &MaterializedView) -> u64 {
        let config = Configuration::new();
        let ctx = PlanContext {
            estimator: Estimator::new(self.stats, &view.database),
            config: &config,
            sizes: self.sizes,
            hardware: self.hardware,
            database: &view.database,
        };
        estimate_view_rows(&ctx, view) as u64
    }
}

/// Does `order` (a delivered sort order) cover `set` as a leading prefix
/// in any permutation? That is what stream aggregation needs.
fn order_covers_set(order: &[BoundColumn], set: &[BoundColumn]) -> bool {
    !set.is_empty()
        && set.len() <= order.len()
        && order[..set.len()].iter().all(|c| set.contains(c))
}

/// Does `order` satisfy an ORDER BY list exactly (directions ignored —
/// reverse scans are free)?
fn order_satisfies(order: &[BoundColumn], wanted: &[(BoundColumn, bool)]) -> bool {
    wanted.len() <= order.len() && wanted.iter().zip(order.iter()).all(|((c, _), o)| c == o)
}

/// Plan a SELECT end to end, considering base plans and view rewrites.
pub fn plan_select(ctx: &PlanContext<'_>, bound: &BoundSelect) -> PlanNode {
    // base plan: join tree over base tables
    let state = plan_joins(ctx, bound);
    let base = finish_select(
        ctx,
        bound,
        state.node,
        &state.order,
        state.partitioned_on.as_ref(),
        state.width,
    );

    let mut best = base;
    for vp in view_plans(ctx, bound) {
        let width = match &vp.scan {
            PlanNode::ViewScan { view, .. } => view_row_width(ctx, view) as f64,
            _ => 64.0,
        };
        let candidate = if bound.is_aggregate() && !vp.answers_grouping {
            // re-aggregate over the finer-grained view
            let scan_rows = vp.scan.est_rows();
            let scan_cost = vp.scan.est_cost();
            let cols: Vec<(String, BoundColumn)> = bound
                .group_by
                .iter()
                .filter_map(|g| bound.table_of(&g.binding).map(|t| (t.to_string(), g.clone())))
                .collect();
            let groups = ctx.estimator.group_count(&cols, scan_rows);
            let agg = PlanNode::HashAggregate {
                input: Box::new(vp.scan),
                group_by: bound.group_by.clone(),
                est_rows: groups,
                est_cost: scan_cost + (scan_rows * 1.5 + groups) * CPU_W,
            };
            finish_order_top(ctx, bound, agg, &[], groups * 24.0)
        } else if bound.is_aggregate() {
            // the view already answers the grouping
            finish_order_top(ctx, bound, vp.scan, &[], width)
        } else {
            // ungrouped join view feeding a possibly-distinct/sorted query
            finish_select(ctx, bound, vp.scan, &[], None, width)
        };
        if candidate.est_cost() < best.est_cost() {
            best = candidate;
        }
    }
    best
}

/// Add grouping, distinct, order and top over a join result.
fn finish_select(
    ctx: &PlanContext<'_>,
    bound: &BoundSelect,
    node: PlanNode,
    order: &[BoundColumn],
    partitioned_on: Option<&(BoundColumn, RangePartitioning)>,
    width: f64,
) -> PlanNode {
    let mut node = node;
    let mut order: Vec<BoundColumn> = order.to_vec();
    let mut width = width;

    if bound.is_aggregate() {
        let input_rows = node.est_rows();
        let input_cost = node.est_cost();
        if bound.group_by.is_empty() {
            // scalar aggregate
            node = PlanNode::StreamAggregate {
                input: Box::new(node),
                group_by: Vec::new(),
                est_rows: 1.0,
                est_cost: input_cost + input_rows * CPU_W,
            };
            order = Vec::new();
            width = 8.0 * (bound.aggregates.len().max(1)) as f64;
        } else {
            let cols: Vec<(String, BoundColumn)> = bound
                .group_by
                .iter()
                .filter_map(|g| bound.table_of(&g.binding).map(|t| (t.to_string(), g.clone())))
                .collect();
            let groups = ctx.estimator.group_count(&cols, input_rows);
            let out_width =
                bound.group_by.len() as f64 * 8.0 + bound.aggregates.len() as f64 * 8.0 + 9.0;
            let stream_ok = order_covers_set(&order, &bound.group_by);
            if stream_ok {
                node = PlanNode::StreamAggregate {
                    input: Box::new(node),
                    group_by: bound.group_by.clone(),
                    est_rows: groups,
                    est_cost: input_cost + input_rows * CPU_W,
                };
                order.truncate(bound.group_by.len());
            } else {
                // hash aggregation, with partition-wise memory relief when
                // the input is partitioned on one of the grouping columns
                let mut mem = ctx.hardware.memory_bytes as f64;
                if let Some((pc, scheme)) = partitioned_on {
                    if bound.group_by.contains(pc) {
                        mem *= scheme.partition_count() as f64;
                    }
                }
                let bytes = groups * out_width;
                let mut cost = input_cost + (input_rows * 1.5 + groups) * CPU_W;
                if bytes > mem {
                    cost += 2.0 * bytes / PAGE_SIZE as f64;
                }
                node = PlanNode::HashAggregate {
                    input: Box::new(node),
                    group_by: bound.group_by.clone(),
                    est_rows: groups,
                    est_cost: cost,
                };
                order = Vec::new();
            }
            width = out_width;
        }
    } else if bound.distinct {
        let input_rows = node.est_rows();
        let input_cost = node.est_cost();
        let groups = (input_rows * 0.5).max(1.0);
        node = PlanNode::HashAggregate {
            input: Box::new(node),
            group_by: Vec::new(),
            est_rows: groups,
            est_cost: input_cost + (input_rows * 1.5 + groups) * CPU_W,
        };
        order = Vec::new();
    }

    finish_order_top(ctx, bound, node, &order, width)
}

/// Add ORDER BY / TOP handling over a (possibly aggregated) stream.
fn finish_order_top(
    ctx: &PlanContext<'_>,
    bound: &BoundSelect,
    node: PlanNode,
    order: &[BoundColumn],
    width: f64,
) -> PlanNode {
    let mut node = node;
    if !bound.order_by.is_empty() && !order_satisfies(order, &bound.order_by) {
        let n = node.est_rows();
        let input_cost = node.est_cost();
        let limit = bound.top.map(|t| t as f64).unwrap_or(n);
        let cmp_target = limit.max(2.0);
        let cpu = n * cmp_target.log2().max(1.0);
        let bytes = n * width;
        let mut cost = input_cost + cpu * CPU_W;
        if bound.top.is_none() && bytes > ctx.hardware.memory_bytes as f64 {
            cost += 2.0 * bytes / PAGE_SIZE as f64;
        }
        node = PlanNode::Sort {
            input: Box::new(node),
            keys: bound.order_by.clone(),
            est_rows: n,
            est_cost: cost,
        };
    }
    if let Some(t) = bound.top {
        let rows = node.est_rows().min(t as f64);
        let cost = node.est_cost();
        node = PlanNode::Top { input: Box::new(node), n: t, est_rows: rows, est_cost: cost };
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FixedSizes;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_physical::{Index, PhysicalStructure, QualifiedColumn, ViewAggregate};
    use dta_sql::parse_statement;
    use dta_stats::histogram::Histogram;
    use dta_stats::{StatKey, Statistic};

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("x", ColumnType::Int),
                Column::new("pad", ColumnType::Str(80)),
            ],
        ))
        .unwrap();
        db.add_table(Table::new(
            "u",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn stats() -> StatisticsManager {
        let mut m = StatisticsManager::new();
        // x uniform over 0..1000 (1M rows); a has 100 distinct values
        m.add(Statistic {
            key: StatKey::new("db", "t", &["x"]),
            histogram: Histogram::build((0..1000).map(Value::Int).collect()),
            densities: vec![0.001],
            row_count: 1_000_000,
            sample_rows: 1000,
        });
        m.add(Statistic {
            key: StatKey::new("db", "t", &["a"]),
            histogram: Histogram::build((0..1000).map(|i| Value::Int(i % 100)).collect()),
            densities: vec![0.01],
            row_count: 1_000_000,
            sample_rows: 1000,
        });
        m
    }

    fn sizes() -> FixedSizes {
        FixedSizes::default().with_table("db", "t", 1_000_000, 96).with_table("db", "u", 10_000, 8)
    }

    fn cost(sql: &str, config: &Configuration) -> f64 {
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let opt = WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams::default());
        opt.optimize("db", &parse_statement(sql).unwrap(), config).unwrap().cost
    }

    const Q: &str = "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a";

    #[test]
    fn paper_example_1_all_structures_help() {
        // §3 Example 1: each alternative structure reduces the query's cost
        let raw = cost(Q, &Configuration::new());

        let clustered_x = Configuration::from_structures([PhysicalStructure::Index(
            Index::clustered("db", "t", &["x"]),
        )]);
        let part_x = Configuration::from_structures([PhysicalStructure::TablePartitioning {
            database: "db".into(),
            table: "t".into(),
            scheme: RangePartitioning::new("x", (1..100).map(|i| Value::Int(i * 10)).collect()),
        }]);
        let covering = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["x", "a"], &[]),
        )]);
        let mv =
            Configuration::from_structures([PhysicalStructure::View(MaterializedView::grouped(
                "db",
                &["t"],
                vec![],
                vec![QualifiedColumn::new("t", "a"), QualifiedColumn::new("t", "x")],
                vec![ViewAggregate::count_star()],
            ))]);

        for (name, cfg) in [
            ("clustered(x)", &clustered_x),
            ("partition(x)", &part_x),
            ("covering(x,a)", &covering),
            ("mv", &mv),
        ] {
            let c = cost(Q, cfg);
            assert!(c < raw, "{name}: {c} !< raw {raw}");
        }

        // the covering index should beat plain partitioning for this query
        assert!(cost(Q, &covering) < cost(Q, &part_x));
    }

    #[test]
    fn view_exact_grouping_is_cheapest() {
        // without a selective filter, a view that answers the grouping
        // exactly (100 tiny rows) beats even a covering index (which must
        // scan all 1M leaf entries)
        let q = "SELECT a, COUNT(*) FROM t GROUP BY a";
        let exact_mv =
            Configuration::from_structures([PhysicalStructure::View(MaterializedView::grouped(
                "db",
                &["t"],
                vec![],
                vec![QualifiedColumn::new("t", "a")],
                vec![ViewAggregate::count_star()],
            ))]);
        let covering = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &[]),
        )]);
        assert!(cost(q, &exact_mv) < cost(q, &covering));

        // with the selective x filter, a covering (x, a) seek reads ~1% of
        // a narrow index and beats a finer-grained (a, x) view that must
        // be re-aggregated
        let fine_mv =
            Configuration::from_structures([PhysicalStructure::View(MaterializedView::grouped(
                "db",
                &["t"],
                vec![],
                vec![QualifiedColumn::new("t", "a"), QualifiedColumn::new("t", "x")],
                vec![ViewAggregate::count_star()],
            ))]);
        let covering_seek = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["x", "a"], &[]),
        )]);
        assert!(cost(Q, &covering_seek) < cost(Q, &fine_mv));
        // but the fine-grained view still beats raw
        assert!(cost(Q, &fine_mv) < cost(Q, &Configuration::new()));
    }

    #[test]
    fn join_query_planned() {
        let raw = cost("SELECT v FROM t, u WHERE t.x = u.k AND a = 5", &Configuration::new());
        let cfg = Configuration::from_structures([
            PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &["x"])),
            PhysicalStructure::Index(Index::non_clustered("db", "u", &["k"], &["v"])),
        ]);
        let tuned = cost("SELECT v FROM t, u WHERE t.x = u.k AND a = 5", &cfg);
        assert!(tuned < raw * 0.2, "tuned={tuned} raw={raw}");
    }

    #[test]
    fn order_by_sort_avoided_by_index() {
        let sql = "SELECT x FROM t WHERE a = 5 ORDER BY x";
        let unordered = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &["x"]),
        )]);
        let _ = unordered;
        // clustered index on x provides the order but requires a full-ish
        // scan; a covering seek on (a, x) needs a sort but reads little.
        // Both should beat raw.
        let raw = cost(sql, &Configuration::new());
        let c1 = cost(
            sql,
            &Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
                "db",
                "t",
                &["a", "x"],
                &[],
            ))]),
        );
        assert!(c1 < raw);
    }

    #[test]
    fn top_reduces_rows() {
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let opt = WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams::default());
        let plan = opt
            .optimize(
                "db",
                &parse_statement("SELECT TOP 10 a FROM t ORDER BY a").unwrap(),
                &Configuration::new(),
            )
            .unwrap();
        assert!(plan.est_rows <= 10.0);
        assert!(matches!(plan.root, PlanNode::Top { .. }));
    }

    #[test]
    fn scalar_aggregate_returns_one_row() {
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let opt = WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams::default());
        let plan = opt
            .optimize(
                "db",
                &parse_statement("SELECT COUNT(*) FROM t WHERE x < 10").unwrap(),
                &Configuration::new(),
            )
            .unwrap();
        assert_eq!(plan.est_rows, 1.0);
    }

    #[test]
    fn memory_affects_costs() {
        // what-if under different hardware produces different costs (§5.3)
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let sql = parse_statement("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").unwrap();
        let big =
            WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams { cpus: 8, memory_bytes: 1 << 30 })
                .optimize("db", &sql, &Configuration::new())
                .unwrap()
                .cost;
        let small =
            WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams { cpus: 1, memory_bytes: 1 << 20 })
                .optimize("db", &sql, &Configuration::new())
                .unwrap()
                .cost;
        assert!(small > big, "small={small} big={big}");
    }

    #[test]
    fn used_structures_reported() {
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let opt = WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams::default());
        let ix = Index::non_clustered("db", "t", &["x", "a"], &[]);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(ix.clone())]);
        let plan = opt.optimize("db", &parse_statement(Q).unwrap(), &cfg).unwrap();
        assert!(plan.used_structures().contains(&ix.name()));
    }

    #[test]
    fn bind_errors_propagate() {
        let cat = catalog();
        let st = stats();
        let sz = sizes();
        let opt = WhatIfOptimizer::new(&cat, &st, &sz, HardwareParams::default());
        let err = opt.optimize(
            "db",
            &parse_statement("SELECT zzz FROM t").unwrap(),
            &Configuration::new(),
        );
        assert!(err.is_err());
    }
}
