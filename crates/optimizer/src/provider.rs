//! Table-size facts the optimizer needs from the hosting server.

/// Row counts and widths of base tables (at logical scale).
///
/// `Sync` so providers can be shared across the advisor's worker
/// threads (enumeration and candidate selection fan out).
pub trait TableStatsProvider: Sync {
    /// Logical row count of a table (0 if unknown).
    fn rows(&self, database: &str, table: &str) -> u64;
    /// Average row width in bytes.
    fn row_width(&self, database: &str, table: &str) -> u32;
    /// Average width of one column in bytes.
    fn column_width(&self, database: &str, table: &str, column: &str) -> u32;
}

/// A fixed-size provider for tests.
#[derive(Debug, Clone, Default)]
pub struct FixedSizes {
    /// `(db, table) -> (rows, row_width)`.
    pub tables: std::collections::BTreeMap<(String, String), (u64, u32)>,
    /// Default column width.
    pub default_column_width: u32,
}

impl FixedSizes {
    /// Register a table.
    pub fn with_table(mut self, db: &str, table: &str, rows: u64, row_width: u32) -> Self {
        self.tables.insert((db.to_string(), table.to_string()), (rows, row_width));
        if self.default_column_width == 0 {
            self.default_column_width = 8;
        }
        self
    }
}

impl TableStatsProvider for FixedSizes {
    fn rows(&self, database: &str, table: &str) -> u64 {
        self.tables.get(&(database.to_string(), table.to_string())).map_or(0, |t| t.0)
    }

    fn row_width(&self, database: &str, table: &str) -> u32 {
        self.tables.get(&(database.to_string(), table.to_string())).map_or(64, |t| t.1)
    }

    fn column_width(&self, _database: &str, _table: &str, _column: &str) -> u32 {
        if self.default_column_width == 0 {
            8
        } else {
            self.default_column_width
        }
    }
}
