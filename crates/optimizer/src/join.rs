//! Greedy join ordering with hash and index-nested-loop joins.

use crate::access::{access_options, best_option, PlanContext, CPU_W, SEEK_DESCENT_PAGES};
use crate::plan::{AccessMethod, PlanNode, TableAccess};
use crate::query::{BoundColumn, BoundSelect, JoinPred};
use crate::selectivity::RESIDUAL_SEL;
use dta_physical::{IndexKind, RangePartitioning};
use dta_storage::{pages_for, PAGE_SIZE};
use std::collections::BTreeSet;

/// An in-progress join tree.
pub struct JoinState {
    pub node: PlanNode,
    pub bindings: BTreeSet<String>,
    /// Sort order the stream currently has.
    pub order: Vec<BoundColumn>,
    /// Partitioning the stream retains.
    pub partitioned_on: Option<(BoundColumn, RangePartitioning)>,
    /// Estimated row width of the stream in bytes.
    pub width: f64,
}

impl JoinState {
    fn rows(&self) -> f64 {
        self.node.est_rows()
    }

    fn cost(&self) -> f64 {
        self.node.est_cost()
    }
}

fn leaf_state(ctx: &PlanContext<'_>, bound: &BoundSelect, binding: &str) -> JoinState {
    let table = bound.table_of(binding).expect("bound binding");
    let sargs = bound.sargs_for(binding);
    let residuals = bound.residuals.get(binding).copied().unwrap_or(0);
    let required = bound.referenced_for(binding);
    let opts = access_options(ctx, binding, table, &sargs, residuals, &required);
    let best = best_option(opts, None).expect("heap scan always available");
    let width: f64 = required
        .iter()
        .map(|c| ctx.sizes.column_width(ctx.database, table, c) as f64)
        .sum::<f64>()
        .max(8.0);
    JoinState {
        node: PlanNode::Access(best.access),
        bindings: BTreeSet::from([binding.to_string()]),
        order: best.order,
        partitioned_on: best.partitioned_on,
        width,
    }
}

/// Join predicates connecting the current set to `binding`.
fn connecting<'p>(
    preds: &'p [JoinPred],
    set: &BTreeSet<String>,
    binding: &str,
) -> Vec<&'p JoinPred> {
    preds
        .iter()
        .filter(|p| {
            (set.contains(&p.left.binding) && p.right.binding == binding)
                || (set.contains(&p.right.binding) && p.left.binding == binding)
        })
        .collect()
}

/// Combined selectivity of a set of join predicates.
fn join_sel(ctx: &PlanContext<'_>, bound: &BoundSelect, preds: &[&JoinPred]) -> f64 {
    let mut sel = 1.0;
    for p in preds {
        let lt = bound.table_of(&p.left.binding).expect("bound");
        let rt = bound.table_of(&p.right.binding).expect("bound");
        let lr = ctx.sizes.rows(ctx.database, lt) as f64;
        let rr = ctx.sizes.rows(ctx.database, rt) as f64;
        sel *= ctx.estimator.join_selectivity(lt, &p.left.column, lr, rt, &p.right.column, rr);
    }
    sel
}

/// Hash-join cost of combining `a` (as one side) and `b`, picking the
/// smaller side as build. Returns `(incremental_cost, partition_wise)`.
fn hash_join_cost(
    ctx: &PlanContext<'_>,
    a: &JoinState,
    b: &JoinState,
    preds: &[&JoinPred],
    out_rows: f64,
) -> (f64, bool) {
    let (build, probe) = if a.rows() <= b.rows() { (a, b) } else { (b, a) };
    let build_bytes = build.rows() * build.width;
    let probe_bytes = probe.rows() * probe.width;

    // co-partitioned inputs on the join keys let each partition's hash
    // table fit in a fraction of the memory
    let partition_wise = match (&a.partitioned_on, &b.partitioned_on) {
        (Some((ca, pa)), Some((cb, pb))) => {
            pa.boundaries == pb.boundaries
                && preds
                    .iter()
                    .any(|p| (p.left == *ca && p.right == *cb) || (p.left == *cb && p.right == *ca))
        }
        _ => false,
    };
    let mem = ctx.hardware.memory_bytes as f64
        * if partition_wise {
            match &a.partitioned_on {
                Some((_, p)) => p.partition_count() as f64,
                None => 1.0,
            }
        } else {
            1.0
        };

    let mut cpu = 2.0 * build.rows() + probe.rows() + out_rows;
    let total_pages = (build_bytes + probe_bytes) / PAGE_SIZE as f64;
    cpu /= ctx.hardware.parallel_factor(total_pages);
    let mut io = 0.0;
    if build_bytes > mem {
        // grace hash join: write and re-read both inputs
        io += 2.0 * (build_bytes + probe_bytes) / PAGE_SIZE as f64;
    }
    (io + cpu * CPU_W, partition_wise)
}

/// Index-nested-loop cost: probe `inner` once per outer row via an index
/// whose leading key is the join column. Returns the inner access spec
/// and the incremental cost, if any suitable index exists.
fn inl_join(
    ctx: &PlanContext<'_>,
    bound: &BoundSelect,
    outer: &JoinState,
    inner_binding: &str,
    preds: &[&JoinPred],
) -> Option<(TableAccess, f64)> {
    let inner_table = bound.table_of(inner_binding)?;
    let inner_rows = ctx.sizes.rows(ctx.database, inner_table) as f64;
    let required = bound.referenced_for(inner_binding);
    let inner_sargs = bound.sargs_for(inner_binding);
    let inner_residuals = bound.residuals.get(inner_binding).copied().unwrap_or(0);
    let local_sel = ctx.estimator.table_selectivity(inner_table, &inner_sargs, inner_residuals);

    // join columns on the inner side
    let join_cols: Vec<&str> =
        preds.iter().filter_map(|p| p.side_for(inner_binding).map(|c| c.column.as_str())).collect();

    let mut best: Option<(TableAccess, f64)> = None;
    for ix in ctx.config.indexes_on(ctx.database, inner_table) {
        let Some(first_key) = ix.key_columns.first() else { continue };
        if !join_cols.contains(&first_key.as_str()) {
            continue;
        }
        let covering = ix.kind == IndexKind::Clustered || ix.covers(&required);
        let distinct = ctx.estimator.distinct_count(inner_table, first_key, inner_rows.max(1.0));
        let matched_per_probe = (inner_rows / distinct).max(0.0);
        let leaf_width: u32 = if ix.kind == IndexKind::Clustered {
            ctx.sizes.row_width(ctx.database, inner_table)
        } else {
            ix.leaf_columns()
                .map(|c| ctx.sizes.column_width(ctx.database, inner_table, c))
                .sum::<u32>()
                + dta_physical::sizing::ROW_LOCATOR_BYTES
                + dta_physical::sizing::ROW_OVERHEAD_BYTES
        };
        let leaf_pages = pages_for(inner_rows as u64, leaf_width) as f64;
        let leaf_per_probe = (leaf_pages / distinct).min(matched_per_probe).max(0.06);
        let lookups = if covering { 0.0 } else { matched_per_probe * local_sel };
        let per_probe = SEEK_DESCENT_PAGES * 0.5 // upper levels cache well under repeated probes
            + leaf_per_probe
            + lookups
            + matched_per_probe * CPU_W;
        let out_per_probe = matched_per_probe * local_sel;
        let cost_per_probe = per_probe;
        let access = TableAccess {
            database: ctx.database.to_string(),
            table: inner_table.to_string(),
            binding: inner_binding.to_string(),
            method: if ix.kind == IndexKind::Clustered {
                AccessMethod::ClusteredSeek { index: ix.clone(), seek_len: 1 }
            } else {
                AccessMethod::IndexSeek { index: ix.clone(), seek_len: 1, covering }
            },
            sargs: inner_sargs.iter().map(|s| (*s).clone()).collect(),
            residuals: inner_residuals,
            partition_fraction: 1.0,
            est_rows: out_per_probe,
            est_cost: cost_per_probe,
        };
        let total = outer.rows() * cost_per_probe;
        if best.as_ref().is_none_or(|(_, c)| total < *c) {
            best = Some((access, total));
        }
    }
    best
}

/// Plan the join of all tables in `bound`, returning the resulting state.
pub fn plan_joins(ctx: &PlanContext<'_>, bound: &BoundSelect) -> JoinState {
    let mut leaves: Vec<JoinState> =
        bound.tables.iter().map(|t| leaf_state(ctx, bound, &t.binding)).collect();

    // start from the smallest estimated leaf
    let start = leaves
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.rows().total_cmp(&b.rows()))
        .map(|(i, _)| i)
        .expect("at least one table");
    let mut cur = leaves.swap_remove(start);

    while !leaves.is_empty() {
        // candidates connected by a join predicate, or everything if none
        let mut best: Option<(usize, f64, JoinState)> = None;
        for (i, cand) in leaves.iter().enumerate() {
            let binding = cand.bindings.iter().next().expect("leaf has one binding").clone();
            let preds = connecting(&bound.joins, &cur.bindings, &binding);
            let sel = if preds.is_empty() { 1.0 } else { join_sel(ctx, bound, &preds) };
            let out_rows = (cur.rows() * cand.rows() * sel).max(0.0);

            // hash join option
            let (hj_incr, partition_wise) = hash_join_cost(ctx, &cur, cand, &preds, out_rows);
            let hj_total = cur.cost()
                + cand.cost()
                + hj_incr
                + if preds.is_empty() {
                    // discourage cross joins strongly
                    cur.rows() * cand.rows() * CPU_W * 10.0
                } else {
                    0.0
                };
            let mut choice_cost = hj_total;
            let mut choice = JoinState {
                node: PlanNode::HashJoin {
                    left: Box::new(cur.node.clone()),
                    right: Box::new(cand.node.clone()),
                    pairs: preds.iter().map(|p| (*p).clone()).collect(),
                    partition_wise,
                    est_rows: out_rows,
                    est_cost: hj_total,
                },
                bindings: cur.bindings.union(&cand.bindings).cloned().collect(),
                order: Vec::new(), // hash join destroys order
                partitioned_on: if partition_wise { cur.partitioned_on.clone() } else { None },
                width: cur.width + cand.width,
            };

            // index-nested-loop option (candidate as inner)
            if !preds.is_empty() {
                if let Some((inner_access, probe_cost)) =
                    inl_join(ctx, bound, &cur, &binding, &preds)
                {
                    let inl_total = cur.cost() + probe_cost + out_rows * CPU_W;
                    if inl_total < choice_cost {
                        choice_cost = inl_total;
                        choice = JoinState {
                            node: PlanNode::IndexNLJoin {
                                outer: Box::new(cur.node.clone()),
                                inner: inner_access,
                                pairs: preds.iter().map(|p| (*p).clone()).collect(),
                                est_rows: out_rows,
                                est_cost: inl_total,
                            },
                            bindings: cur.bindings.union(&cand.bindings).cloned().collect(),
                            order: cur.order.clone(), // outer order preserved
                            partitioned_on: None,
                            width: cur.width + cand.width,
                        };
                    }
                }
            }

            if best.as_ref().is_none_or(|(_, c, _)| choice_cost < *c) {
                best = Some((i, choice_cost, choice));
            }
        }
        let (idx, _, state) = best.expect("non-empty leaves");
        leaves.swap_remove(idx);
        cur = state;
    }

    // cross-table residuals reduce output cardinality
    if bound.cross_residuals > 0 {
        let factor = RESIDUAL_SEL.powi(bound.cross_residuals as i32);
        scale_rows(&mut cur.node, factor);
    }
    cur
}

fn scale_rows(node: &mut PlanNode, factor: f64) {
    match node {
        PlanNode::Access(a) => a.est_rows *= factor,
        PlanNode::ViewScan { est_rows, .. }
        | PlanNode::HashJoin { est_rows, .. }
        | PlanNode::IndexNLJoin { est_rows, .. }
        | PlanNode::HashAggregate { est_rows, .. }
        | PlanNode::StreamAggregate { est_rows, .. }
        | PlanNode::Sort { est_rows, .. }
        | PlanNode::Top { est_rows, .. }
        | PlanNode::Update { est_rows, .. }
        | PlanNode::Delete { est_rows, .. } => *est_rows *= factor,
        PlanNode::Insert { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareParams;
    use crate::provider::FixedSizes;
    use crate::query::{bind, BoundStatement};
    use crate::selectivity::Estimator;
    use dta_catalog::{Catalog, Column, ColumnType, Database, Table};
    use dta_physical::{Configuration, Index, PhysicalStructure};
    use dta_sql::parse_statement;
    use dta_stats::StatisticsManager;

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::BigInt),
                Column::new("o_custkey", ColumnType::BigInt),
                Column::new("o_date", ColumnType::Date),
            ],
        ))
        .unwrap();
        db.add_table(Table::new(
            "lineitem",
            vec![
                Column::new("l_orderkey", ColumnType::BigInt),
                Column::new("l_qty", ColumnType::Float),
            ],
        ))
        .unwrap();
        db.add_table(Table::new(
            "customer",
            vec![
                Column::new("c_custkey", ColumnType::BigInt),
                Column::new("c_name", ColumnType::Str(25)),
            ],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn sizes() -> FixedSizes {
        FixedSizes::default()
            .with_table("db", "orders", 150_000, 24)
            .with_table("db", "lineitem", 600_000, 16)
            .with_table("db", "customer", 15_000, 33)
    }

    fn bound(cat: &Catalog, sql: &str) -> BoundSelect {
        match bind(cat, "db", &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_table_hash_join() {
        let cat = catalog();
        let stats = StatisticsManager::new();
        let config = Configuration::new();
        let sz = sizes();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &config,
            sizes: &sz,
            hardware: HardwareParams::default(),
            database: "db",
        };
        let b = bound(&cat, "SELECT o_date FROM orders, lineitem WHERE o_orderkey = l_orderkey");
        let state = plan_joins(&ctx, &b);
        assert_eq!(state.bindings.len(), 2);
        assert!(matches!(state.node, PlanNode::HashJoin { .. }));
        assert!(state.node.est_cost() > 0.0);
    }

    #[test]
    fn index_enables_nested_loop() {
        let cat = catalog();
        let stats = StatisticsManager::new();
        // selective predicate on customer + index on orders join column
        let config = Configuration::from_structures([
            PhysicalStructure::Index(Index::non_clustered("db", "customer", &["c_name"], &[])),
            PhysicalStructure::Index(Index::non_clustered(
                "db",
                "orders",
                &["o_custkey"],
                &["o_date"],
            )),
        ]);
        let sz = sizes();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &config,
            sizes: &sz,
            hardware: HardwareParams::default(),
            database: "db",
        };
        let b = bound(
            &cat,
            "SELECT o_date FROM customer, orders WHERE c_custkey = o_custkey AND c_name = 'Customer#1'",
        );
        let state = plan_joins(&ctx, &b);
        assert!(
            matches!(state.node, PlanNode::IndexNLJoin { .. }),
            "expected INL, got:\n{}",
            state.node
        );
    }

    #[test]
    fn three_table_join_covers_all_bindings() {
        let cat = catalog();
        let stats = StatisticsManager::new();
        let config = Configuration::new();
        let sz = sizes();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &config,
            sizes: &sz,
            hardware: HardwareParams::default(),
            database: "db",
        };
        let b = bound(
            &cat,
            "SELECT c_name FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
        );
        let state = plan_joins(&ctx, &b);
        assert_eq!(state.bindings.len(), 3);
    }

    #[test]
    fn cross_join_fallback() {
        let cat = catalog();
        let stats = StatisticsManager::new();
        let config = Configuration::new();
        let sz = sizes();
        let ctx = PlanContext {
            estimator: Estimator::new(&stats, "db"),
            config: &config,
            sizes: &sz,
            hardware: HardwareParams::default(),
            database: "db",
        };
        let b = bound(&cat, "SELECT c_name FROM customer, lineitem");
        let state = plan_joins(&ctx, &b);
        assert_eq!(state.bindings.len(), 2);
        // the cross join is very expensive
        assert!(state.node.est_cost() > 1000.0);
    }
}
