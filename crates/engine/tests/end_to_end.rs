//! End-to-end: optimize a statement under a configuration, execute the
//! plan, check both the answers and the estimated-vs-actual work shape.

use dta_catalog::{Catalog, Column, ColumnType, Database, Table, Value};
use dta_engine::{Engine, ExecError};
use dta_optimizer::{HardwareParams, TableStatsProvider, WhatIfOptimizer};
use dta_physical::{
    Configuration, Index, MaterializedView, PhysicalStructure, QualifiedColumn, RangePartitioning,
    ViewAggregate,
};
use dta_sql::parse_statement;
use dta_stats::{build_statistic, StatKey, StatisticsManager};
use dta_storage::{Store, WorkCounter};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct StoreSizes<'a>(&'a Store);

impl TableStatsProvider for StoreSizes<'_> {
    fn rows(&self, database: &str, table: &str) -> u64 {
        self.0.table(database, table).map_or(0, |t| t.logical_rows())
    }
    fn row_width(&self, database: &str, table: &str) -> u32 {
        self.0.table(database, table).map_or(64, |t| t.row_width())
    }
    fn column_width(&self, _d: &str, _t: &str, _c: &str) -> u32 {
        8
    }
}

/// Build a 2-table test database: orders (20k rows) and customer (1k).
fn setup() -> (Catalog, Store, StatisticsManager) {
    let mut db = Database::new("db");
    db.add_table(
        Table::new(
            "customer",
            vec![
                Column::new("c_custkey", ColumnType::BigInt),
                Column::new("c_nation", ColumnType::Int),
            ],
        )
        .with_primary_key(&["c_custkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::BigInt),
                Column::new("o_custkey", ColumnType::BigInt),
                Column::new("o_price", ColumnType::Float),
                Column::new("o_month", ColumnType::Int),
            ],
        )
        .with_primary_key(&["o_orderkey"]),
    )
    .unwrap();
    let mut cat = Catalog::new();
    cat.add_database(db).unwrap();

    let mut store = Store::new();
    let dbo = cat.database("db").unwrap();
    store.create_table("db", dbo.table("customer").unwrap());
    store.create_table("db", dbo.table("orders").unwrap());
    {
        let c = store.table_mut("db", "customer").unwrap();
        for i in 0..1000i64 {
            c.push_row(vec![Value::Int(i), Value::Int(i % 25)]);
        }
        let o = store.table_mut("db", "orders").unwrap();
        for i in 0..20_000i64 {
            o.push_row(vec![
                Value::Int(i),
                Value::Int(i % 1000),
                Value::Float((i % 97) as f64),
                Value::Int(i % 12),
            ]);
        }
    }

    let mut stats = StatisticsManager::new();
    let work = WorkCounter::default();
    let mut rng = StdRng::seed_from_u64(7);
    for (t, cols) in [
        ("customer", vec!["c_custkey", "c_nation"]),
        ("orders", vec!["o_orderkey", "o_custkey", "o_month"]),
    ] {
        for c in cols {
            let stat = build_statistic(
                StatKey::new("db", t, &[c]),
                store.table("db", t).unwrap(),
                1.0,
                &mut rng,
                &work,
            );
            stats.add(stat);
        }
    }
    (cat, store, stats)
}

fn run(
    sql: &str,
    config: &Configuration,
    cat: &Catalog,
    store: &Store,
    stats: &StatisticsManager,
) -> Result<(dta_engine::QueryResult, f64), ExecError> {
    let sizes = StoreSizes(store);
    let hw = HardwareParams::default();
    let opt = WhatIfOptimizer::new(cat, stats, &sizes, hw);
    let stmt = parse_statement(sql).unwrap();
    let plan = opt.optimize("db", &stmt, config).expect("optimizes");
    let engine = Engine::new(cat, store, hw);
    let result = engine.execute_select("db", &stmt, &plan)?;
    Ok((result, plan.cost))
}

#[test]
fn scan_filter_results_correct() {
    let (cat, store, stats) = setup();
    let (res, _) = run(
        "SELECT o_orderkey FROM orders WHERE o_month = 3 AND o_price > 50.0",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    // o_month = 3: i % 12 == 3; o_price > 50: i % 97 > 50
    let expected = (0..20_000i64).filter(|i| i % 12 == 3 && (i % 97) as f64 > 50.0).count();
    assert_eq!(res.rows.len(), expected);
    assert_eq!(res.columns, vec!["o_orderkey"]);
}

#[test]
fn group_by_results_correct() {
    let (cat, store, stats) = setup();
    let (res, _) = run(
        "SELECT o_month, COUNT(*), SUM(o_price) FROM orders GROUP BY o_month ORDER BY o_month",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    assert_eq!(res.rows.len(), 12);
    // months ordered 0..12; each has 20000/12 rounded rows
    assert_eq!(res.rows[0][0], Value::Int(0));
    let total: f64 = res.rows.iter().map(|r| r[1].as_f64().unwrap()).sum();
    assert_eq!(total as i64, 20_000);
}

#[test]
fn join_results_correct() {
    let (cat, store, stats) = setup();
    let (res, _) = run(
        "SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey AND c_nation = 7",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    // customers with nation 7: 40 (1000/25); each has 20 orders
    assert_eq!(res.rows[0][0], Value::Int(40 * 20));
}

#[test]
fn index_reduces_actual_work_and_same_answers() {
    let (cat, store, stats) = setup();
    let sql = "SELECT o_price FROM orders WHERE o_custkey = 42";
    let raw_cfg = Configuration::new();
    let ix_cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
        "db",
        "orders",
        &["o_custkey"],
        &["o_price"],
    ))]);
    let (raw, raw_est) = run(sql, &raw_cfg, &cat, &store, &stats).unwrap();
    let (ix, ix_est) = run(sql, &ix_cfg, &cat, &store, &stats).unwrap();
    assert_eq!(raw.rows.len(), 20);
    assert_eq!(ix.rows.len(), 20);
    // both the estimate and the actual work drop with the index
    assert!(ix_est < raw_est, "est {ix_est} !< {raw_est}");
    assert!(
        ix.work.work_units() < raw.work.work_units(),
        "actual {} !< {}",
        ix.work.work_units(),
        raw.work.work_units()
    );
}

#[test]
fn partitioning_reduces_actual_scan_work() {
    let (cat, store, stats) = setup();
    let sql = "SELECT COUNT(*) FROM orders WHERE o_month = 3";
    let part_cfg = Configuration::from_structures([PhysicalStructure::TablePartitioning {
        database: "db".into(),
        table: "orders".into(),
        scheme: RangePartitioning::new("o_month", (0..11).map(Value::Int).collect()),
    }]);
    let (raw, _) = run(sql, &Configuration::new(), &cat, &store, &stats).unwrap();
    let (part, _) = run(sql, &part_cfg, &cat, &store, &stats).unwrap();
    assert_eq!(raw.rows[0][0], part.rows[0][0]);
    assert!(part.work.io_pages < raw.work.io_pages * 0.5);
}

#[test]
fn materialized_view_answers_grouping() {
    let (cat, store, stats) = setup();
    let sql = "SELECT o_month, COUNT(*), SUM(o_price) FROM orders GROUP BY o_month";
    let mv = MaterializedView::grouped(
        "db",
        &["orders"],
        vec![],
        vec![QualifiedColumn::new("orders", "o_month")],
        vec![
            ViewAggregate::count_star(),
            ViewAggregate::column(dta_sql::AggFunc::Sum, QualifiedColumn::new("orders", "o_price")),
        ],
    );
    let cfg = Configuration::from_structures([PhysicalStructure::View(mv)]);
    let (raw, _) = run(sql, &Configuration::new(), &cat, &store, &stats).unwrap();
    let (via_view, _) = run(sql, &cfg, &cat, &store, &stats).unwrap();
    assert_eq!(raw.rows.len(), via_view.rows.len());
    // same aggregate totals regardless of plan
    let sum = |rows: &Vec<Vec<Value>>, i: usize| -> f64 {
        rows.iter().map(|r| r[i].as_f64().unwrap()).sum()
    };
    assert_eq!(sum(&raw.rows, 1) as i64, sum(&via_view.rows, 1) as i64);
    assert!((sum(&raw.rows, 2) - sum(&via_view.rows, 2)).abs() < 1e-6);
    // and the view slashes the actual work
    assert!(via_view.work.work_units() < raw.work.work_units() * 0.3);
}

#[test]
fn estimated_and_actual_improvements_are_close() {
    // the §7.2 effect in miniature: estimated improvement ≈ actual
    let (cat, store, stats) = setup();
    let sql = "SELECT o_month, SUM(o_price) FROM orders WHERE o_custkey < 100 GROUP BY o_month";
    let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
        "db",
        "orders",
        &["o_custkey"],
        &["o_month", "o_price"],
    ))]);
    let (raw, raw_est) = run(sql, &Configuration::new(), &cat, &store, &stats).unwrap();
    let (tuned, tuned_est) = run(sql, &cfg, &cat, &store, &stats).unwrap();
    let est_improvement = 1.0 - tuned_est / raw_est;
    let act_improvement = 1.0 - tuned.work.work_units() / raw.work.work_units();
    assert!(est_improvement > 0.3, "est {est_improvement}");
    assert!(act_improvement > 0.3, "act {act_improvement}");
    assert!(
        (est_improvement - act_improvement).abs() < 0.35,
        "est {est_improvement} vs act {act_improvement}"
    );
}

#[test]
fn top_and_order_by() {
    let (cat, store, stats) = setup();
    let (res, _) = run(
        "SELECT TOP 5 o_orderkey FROM orders WHERE o_month = 1 ORDER BY o_price DESC",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    assert_eq!(res.rows.len(), 5);
}

#[test]
fn having_filters_groups() {
    let (cat, store, stats) = setup();
    let (res, _) = run(
        "SELECT c_nation, COUNT(*) FROM customer GROUP BY c_nation HAVING COUNT(*) > 39",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    // every nation has exactly 40 customers -> all 25 groups pass
    assert_eq!(res.rows.len(), 25);
    let (res2, _) = run(
        "SELECT c_nation, COUNT(*) FROM customer GROUP BY c_nation HAVING COUNT(*) > 40",
        &Configuration::new(),
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    assert_eq!(res2.rows.len(), 0);
}

#[test]
fn distinct_dedupes() {
    let (cat, store, stats) = setup();
    let (res, _) =
        run("SELECT DISTINCT o_month FROM orders", &Configuration::new(), &cat, &store, &stats)
            .unwrap();
    assert_eq!(res.rows.len(), 12);
}

#[test]
fn missing_table_data_errors() {
    let (cat, _store, stats) = setup();
    let empty_store = Store::new();
    let err = run("SELECT o_price FROM orders", &Configuration::new(), &cat, &empty_store, &stats);
    assert!(matches!(err, Err(ExecError::MissingData(_))));
}

#[test]
fn index_nested_loop_join_correct() {
    let (cat, store, stats) = setup();
    // index on orders.o_custkey, selective predicate on customer
    let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
        "db",
        "orders",
        &["o_custkey"],
        &["o_price"],
    ))]);
    let (res, _) = run(
        "SELECT COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey AND c_nation = 3",
        &cfg,
        &cat,
        &store,
        &stats,
    )
    .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(40 * 20));
}
