//! Intermediate results: named-column row sets.

use dta_catalog::Value;

/// A column of an intermediate relation, identified by the binding it
/// came from and the column name. Aggregate outputs use a synthetic
/// binding of `"#agg"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColId {
    pub binding: String,
    pub column: String,
}

impl ColId {
    /// Construct a column id.
    pub fn new(binding: &str, column: &str) -> Self {
        Self { binding: binding.to_string(), column: column.to_string() }
    }
}

/// A materialized intermediate result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Relation {
    pub cols: Vec<ColId>,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Empty relation with a schema.
    pub fn new(cols: Vec<ColId>) -> Self {
        Self { cols, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a (possibly unqualified) column reference to its position.
    /// Unqualified names match any binding; the first hit wins.
    pub fn position(&self, binding: Option<&str>, column: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.column == column && binding.is_none_or(|b| c.binding == b))
    }

    /// Concatenate schemas and cross rows of two relations (used by
    /// joins; callers pair up row indexes).
    pub fn concat_schema(a: &Relation, b: &Relation) -> Vec<ColId> {
        a.cols.iter().chain(b.cols.iter()).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_resolution() {
        let r =
            Relation::new(vec![ColId::new("t", "a"), ColId::new("u", "a"), ColId::new("u", "b")]);
        assert_eq!(r.position(Some("u"), "a"), Some(1));
        assert_eq!(r.position(None, "a"), Some(0));
        assert_eq!(r.position(None, "b"), Some(2));
        assert_eq!(r.position(Some("t"), "b"), None);
    }

    #[test]
    fn empty_and_len() {
        let mut r = Relation::new(vec![ColId::new("t", "a")]);
        assert!(r.is_empty());
        r.rows.push(vec![Value::Int(1)]);
        assert_eq!(r.len(), 1);
    }
}
