//! Expression evaluation over relation rows.

use crate::relation::Relation;
use crate::ExecError;
use dta_catalog::Value;
use dta_sql::{AggFunc, BinaryOp, Expr, Literal, UnaryOp};
use std::collections::HashMap;

/// A canonical key identifying an aggregate occurrence, used to look up
/// precomputed per-group aggregate values during final projection.
pub fn agg_key(func: AggFunc, arg: &Option<Box<Expr>>, distinct: bool) -> String {
    let arg_s = arg.as_ref().map(|a| a.to_string()).unwrap_or_else(|| "*".into());
    format!("{}({}{})", func.name(), if distinct { "DISTINCT " } else { "" }, arg_s)
}

/// Evaluate `expr` against one row of `rel`. `aggs` supplies values for
/// aggregate sub-expressions (keyed by [`agg_key`]) when evaluating
/// post-aggregation projections.
pub fn eval(
    expr: &Expr,
    rel: &Relation,
    row: &[Value],
    aggs: Option<&HashMap<String, Value>>,
) -> Result<Value, ExecError> {
    match expr {
        Expr::Literal(l) => Ok(literal(l)),
        Expr::Column(c) => {
            let pos = rel
                .position(c.table.as_deref(), &c.column)
                .ok_or_else(|| ExecError::Eval(format!("unknown column {c}")))?;
            Ok(row[pos].clone())
        }
        Expr::Binary { left, op, right } => {
            let l = eval(left, rel, row, aggs)?;
            let r = eval(right, rel, row, aggs)?;
            binary(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, rel, row, aggs)?;
            match op {
                UnaryOp::Not => Ok(Value::Int(if !truthy(&v) { 1 } else { 0 })),
                UnaryOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(ExecError::Eval(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Between { expr, negated, low, high } => {
            let v = eval(expr, rel, row, aggs)?;
            let lo = eval(low, rel, row, aggs)?;
            let hi = eval(high, rel, row, aggs)?;
            let hit = !v.is_null() && v >= lo && v <= hi;
            Ok(bool_val(hit != *negated))
        }
        Expr::InList { expr, negated, list } => {
            let v = eval(expr, rel, row, aggs)?;
            let mut hit = false;
            for e in list {
                if eval(e, rel, row, aggs)? == v {
                    hit = true;
                    break;
                }
            }
            Ok(bool_val(hit != *negated))
        }
        Expr::Like { expr, negated, pattern } => {
            let v = eval(expr, rel, row, aggs)?;
            let p = eval(pattern, rel, row, aggs)?;
            let hit = match (&v, &p) {
                (Value::Str(s), Value::Str(pat)) => like_match(s, pat),
                _ => false,
            };
            Ok(bool_val(hit != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, rel, row, aggs)?;
            Ok(bool_val(v.is_null() != *negated))
        }
        Expr::Aggregate { func, distinct, arg } => {
            let key = agg_key(*func, arg, *distinct);
            aggs.and_then(|m| m.get(&key))
                .cloned()
                .ok_or_else(|| ExecError::Eval(format!("aggregate {key} outside GROUP context")))
        }
        Expr::Function { name, args } => {
            // the only scalar functions the dialect needs: substring and
            // numeric helpers; unknown functions evaluate their first arg
            match name.as_str() {
                "substring" if !args.is_empty() => {
                    let v = eval(&args[0], rel, row, aggs)?;
                    let start = args
                        .get(1)
                        .map(|a| eval(a, rel, row, aggs))
                        .transpose()?
                        .and_then(|v| v.as_f64())
                        .unwrap_or(1.0) as usize;
                    let len = args
                        .get(2)
                        .map(|a| eval(a, rel, row, aggs))
                        .transpose()?
                        .and_then(|v| v.as_f64())
                        .unwrap_or(f64::MAX);
                    match v {
                        Value::Str(s) => {
                            let start = start.saturating_sub(1).min(s.len());
                            let end = if len == f64::MAX {
                                s.len()
                            } else {
                                (start + len as usize).min(s.len())
                            };
                            Ok(Value::Str(s[start..end].to_string()))
                        }
                        other => Ok(other),
                    }
                }
                _ if !args.is_empty() => eval(&args[0], rel, row, aggs),
                _ => Ok(Value::Null),
            }
        }
    }
}

/// Evaluate a predicate expression to a boolean.
pub fn eval_predicate(expr: &Expr, rel: &Relation, row: &[Value]) -> Result<bool, ExecError> {
    Ok(truthy(&eval(expr, rel, row, None)?))
}

fn literal(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

fn bool_val(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
    }
}

fn binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    use BinaryOp::*;
    match op {
        And => return Ok(bool_val(truthy(l) && truthy(r))),
        Or => return Ok(bool_val(truthy(l) || truthy(r))),
        Eq => return Ok(bool_val(!l.is_null() && !r.is_null() && l == r)),
        NotEq => return Ok(bool_val(!l.is_null() && !r.is_null() && l != r)),
        Lt => return Ok(bool_val(!l.is_null() && !r.is_null() && l < r)),
        LtEq => return Ok(bool_val(!l.is_null() && !r.is_null() && l <= r)),
        Gt => return Ok(bool_val(!l.is_null() && !r.is_null() && l > r)),
        GtEq => return Ok(bool_val(!l.is_null() && !r.is_null() && l >= r)),
        _ => {}
    }
    // arithmetic
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            Add => Value::Int(a + b),
            Sub => Value::Int(a - b),
            Mul => Value::Int(a * b),
            Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!("comparisons handled above"),
        }),
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(ExecError::Eval(format!("arithmetic on {l} and {r}")));
            };
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!("comparisons handled above"),
            })
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(b'%'), _) => {
                // match zero or more characters
                if rec(s, &p[1..]) {
                    return true;
                }
                !s.is_empty() && rec(&s[1..], p)
            }
            (Some(b'_'), Some(_)) => rec(&s[1..], &p[1..]),
            (Some(c), Some(d)) if c == d => rec(&s[1..], &p[1..]),
            _ => false,
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

/// An incremental aggregate accumulator.
#[derive(Debug, Clone)]
pub enum Accumulator {
    Count(u64),
    Sum(f64, bool),
    Avg { sum: f64, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
    CountDistinct(std::collections::HashSet<Value>),
}

impl Accumulator {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc, distinct: bool) -> Self {
        match (func, distinct) {
            (AggFunc::Count, true) => Accumulator::CountDistinct(Default::default()),
            (AggFunc::Count, false) => Accumulator::Count(0),
            (AggFunc::Sum, _) => Accumulator::Sum(0.0, false),
            (AggFunc::Avg, _) => Accumulator::Avg { sum: 0.0, count: 0 },
            (AggFunc::Min, _) => Accumulator::Min(None),
            (AggFunc::Max, _) => Accumulator::Max(None),
        }
    }

    /// Fold one value in (`None` = `COUNT(*)` with no argument).
    pub fn push(&mut self, v: Option<&Value>) {
        match self {
            Accumulator::Count(c) => {
                if v.is_none_or(|v| !v.is_null()) {
                    *c += 1;
                }
            }
            Accumulator::CountDistinct(set) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
            Accumulator::Sum(s, seen) => {
                if let Some(x) = v.and_then(|v| v.as_f64()) {
                    *s += x;
                    *seen = true;
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(x) = v.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *count += 1;
                }
            }
            Accumulator::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            Accumulator::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
    }

    /// Final value.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int(*c as i64),
            Accumulator::CountDistinct(set) => Value::Int(set.len() as i64),
            Accumulator::Sum(s, seen) => {
                if *seen {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{ColId, Relation};
    use dta_sql::parse_statement;

    fn rel() -> (Relation, Vec<Value>) {
        let r = Relation::new(vec![ColId::new("t", "a"), ColId::new("t", "s")]);
        (r, vec![Value::Int(7), Value::Str("hello".into())])
    }

    fn pred(sql_where: &str) -> Expr {
        let stmt = parse_statement(&format!("SELECT a FROM t WHERE {sql_where}")).unwrap();
        match stmt {
            dta_sql::Statement::Select(s) => s.predicate.unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn predicates() {
        let (r, row) = rel();
        for (p, want) in [
            ("a = 7", true),
            ("a <> 7", false),
            ("a BETWEEN 5 AND 9", true),
            ("a NOT BETWEEN 5 AND 9", false),
            ("a IN (1, 7)", true),
            ("a IN (1, 2)", false),
            ("s LIKE 'he%'", true),
            ("s LIKE '%ell%'", true),
            ("s LIKE 'h_llo'", true),
            ("s LIKE 'x%'", false),
            ("s IS NULL", false),
            ("s IS NOT NULL", true),
            ("a = 7 AND s LIKE 'h%'", true),
            ("a = 1 OR s = 'hello'", true),
            ("NOT a = 7", false),
            ("a + 1 = 8", true),
            ("a * 2 > 13", true),
            ("a / 2 = 3.5", true),
        ] {
            assert_eq!(eval_predicate(&pred(p), &r, &row).unwrap(), want, "{p}");
        }
    }

    #[test]
    fn null_comparisons_false() {
        let r = Relation::new(vec![ColId::new("t", "a")]);
        let row = vec![Value::Null];
        assert!(!eval_predicate(&pred("a = 1"), &r, &row).unwrap());
        assert!(!eval_predicate(&pred("a <> 1"), &r, &row).unwrap());
        assert!(eval_predicate(&pred("a IS NULL"), &r, &row).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let (r, row) = rel();
        assert!(eval_predicate(&pred("zzz = 1"), &r, &row).is_err());
    }

    #[test]
    fn accumulators() {
        let vals = [Value::Int(3), Value::Int(1), Value::Int(3), Value::Null];
        let mut cases = vec![
            (Accumulator::new(AggFunc::Count, false), Value::Int(3)),
            (Accumulator::new(AggFunc::Sum, false), Value::Float(7.0)),
            (Accumulator::new(AggFunc::Avg, false), Value::Float(7.0 / 3.0)),
            (Accumulator::new(AggFunc::Min, false), Value::Int(1)),
            (Accumulator::new(AggFunc::Max, false), Value::Int(3)),
            (Accumulator::new(AggFunc::Count, true), Value::Int(2)),
        ];
        for (acc, want) in &mut cases {
            for v in &vals {
                acc.push(Some(v));
            }
            assert_eq!(acc.finish(), *want);
        }
        // COUNT(*) counts nulls too
        let mut star = Accumulator::new(AggFunc::Count, false);
        for _ in &vals {
            star.push(None);
        }
        assert_eq!(star.finish(), Value::Int(4));
    }

    #[test]
    fn empty_accumulators() {
        assert_eq!(Accumulator::new(AggFunc::Sum, false).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Min, false).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Count, false).finish(), Value::Int(0));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("abcdef", "abc%"));
        assert!(like_match("abcdef", "%def"));
        assert!(like_match("abcdef", "a%f"));
        assert!(like_match("abcdef", "______"));
        assert!(!like_match("abcdef", "_____"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }
}
