//! Execution engine: runs optimizer plans over stored data and meters
//! the *actual* work done.
//!
//! §7.2 of the paper compares DTA's optimizer-estimated improvement (88%
//! on TPC-H 10 GB) against the measured improvement in execution time
//! (83%). This engine is the measurement side of that comparison: it
//! interprets [`dta_optimizer::Plan`] trees against the columnar store,
//! with true cardinalities and real group counts, charging page and CPU
//! work in the same units the optimizer estimates. Estimated and actual
//! improvements then diverge only through estimation error — exactly the
//! effect the paper observes.

pub mod eval;
pub mod exec;
pub mod relation;

pub use exec::{ActualWork, Engine, QueryResult};
pub use relation::Relation;

/// Errors during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A referenced table has no stored data.
    MissingData(String),
    /// An expression could not be evaluated.
    Eval(String),
    /// The plan shape was inconsistent with the statement.
    BadPlan(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingData(t) => write!(f, "no data stored for table '{t}'"),
            ExecError::Eval(m) => write!(f, "evaluation error: {m}"),
            ExecError::BadPlan(m) => write!(f, "bad plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}
