//! The plan interpreter.

use crate::eval::{agg_key, eval, eval_predicate, like_match, Accumulator};
use crate::relation::{ColId, Relation};
use crate::ExecError;
use dta_catalog::{Catalog, Value};
use dta_optimizer::hardware::HardwareParams;
use dta_optimizer::plan::{AccessMethod, Plan, PlanNode, TableAccess};
use dta_optimizer::query::{bind, BoundSelect, BoundStatement, JoinPred, Sarg, SargOp};
use dta_physical::{Index, MaterializedView};
use dta_sql::{Expr, SelectStatement, Statement};
use dta_storage::{pages_for, Store, TableData};
use std::collections::HashMap;

/// Actual work metered during execution, in the optimizer's units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActualWork {
    pub io_pages: f64,
    pub cpu_ops: f64,
}

impl ActualWork {
    /// Scalar work units (same formula as estimated costs).
    pub fn work_units(&self) -> f64 {
        self.io_pages + self.cpu_ops * dta_storage::work::CPU_OP_WEIGHT
    }
}

/// The rows a query produced plus the work it took.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Metered work.
    pub work: ActualWork,
}

/// The execution engine.
pub struct Engine<'a> {
    pub catalog: &'a Catalog,
    pub store: &'a Store,
    pub hardware: HardwareParams,
}

struct Exec<'a> {
    engine: &'a Engine<'a>,
    database: &'a str,
    select: &'a SelectStatement,
    bound: &'a BoundSelect,
    work: ActualWork,
}

impl<'a> Engine<'a> {
    /// Construct an engine over a catalog and store.
    pub fn new(catalog: &'a Catalog, store: &'a Store, hardware: HardwareParams) -> Self {
        Self { catalog, store, hardware }
    }

    /// Execute a SELECT plan, returning rows and actual work.
    pub fn execute_select(
        &self,
        database: &str,
        stmt: &Statement,
        plan: &Plan,
    ) -> Result<QueryResult, ExecError> {
        let Statement::Select(select) = stmt else {
            return Err(ExecError::BadPlan("execute_select needs a SELECT".into()));
        };
        let bound = match bind(self.catalog, database, stmt) {
            Ok(BoundStatement::Select(b)) => b,
            Ok(_) => return Err(ExecError::BadPlan("statement is not a SELECT".into())),
            Err(e) => return Err(ExecError::BadPlan(e.to_string())),
        };
        let mut exec =
            Exec { engine: self, database, select, bound: &bound, work: ActualWork::default() };
        let rel = exec.run(&plan.root)?;
        let (columns, rows) = exec.project(rel)?;
        Ok(QueryResult { columns, rows, work: exec.work })
    }
}

/// Evaluate a sarg against a concrete value.
pub fn sarg_matches(op: &SargOp, v: &Value) -> bool {
    match op {
        SargOp::Eq(x) => !v.is_null() && v == x,
        SargOp::NotEq(x) => !v.is_null() && v != x,
        SargOp::Range { low, high } => {
            if v.is_null() {
                return false;
            }
            if let Some((lo, inc)) = low {
                if v < lo || (!inc && v == lo) {
                    return false;
                }
            }
            if let Some((hi, inc)) = high {
                if v > hi || (!inc && v == hi) {
                    return false;
                }
            }
            true
        }
        SargOp::In(vals) => vals.iter().any(|x| x == v),
        SargOp::LikePrefix(p) => match v {
            Value::Str(s) => like_match(s, &format!("{p}%")),
            _ => false,
        },
    }
}

impl<'a> Exec<'a> {
    fn table_data(&self, table: &str) -> Result<&'a TableData, ExecError> {
        self.engine
            .store
            .table(self.database, table)
            .ok_or_else(|| ExecError::MissingData(table.to_string()))
    }

    fn run(&mut self, node: &PlanNode) -> Result<Relation, ExecError> {
        match node {
            PlanNode::Access(a) => self.run_access(a),
            PlanNode::ViewScan { view, sargs, .. } => self.run_view_scan(view, sargs),
            PlanNode::HashJoin { left, right, pairs, .. } => {
                let l = self.run(left)?;
                let r = self.run(right)?;
                self.hash_join(l, r, pairs)
            }
            PlanNode::IndexNLJoin { outer, inner, pairs, .. } => {
                let o = self.run(outer)?;
                self.inl_join(o, inner, pairs)
            }
            PlanNode::HashAggregate { input, .. } | PlanNode::StreamAggregate { input, .. } => {
                let rel = self.run(input)?;
                let from_view = matches!(**input, PlanNode::ViewScan { .. });
                if self.bound.is_aggregate() {
                    self.aggregate(rel, from_view)
                } else {
                    // DISTINCT dedup
                    self.distinct(rel)
                }
            }
            PlanNode::Sort { input, keys, .. } => {
                let mut rel = self.run(input)?;
                let n = rel.len() as f64;
                self.work.cpu_ops += n * (n.max(2.0)).log2();
                let positions: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(c, desc)| {
                        rel.position(Some(&c.binding), &c.column)
                            .or_else(|| rel.position(None, &c.column))
                            .map(|p| (p, *desc))
                            .ok_or_else(|| {
                                ExecError::Eval(format!("sort key {} missing", c.column))
                            })
                    })
                    .collect::<Result<_, _>>()?;
                rel.rows.sort_by(|a, b| {
                    for (p, desc) in &positions {
                        let ord = a[*p].cmp(&b[*p]);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(rel)
            }
            PlanNode::Top { input, n, .. } => {
                let mut rel = self.run(input)?;
                rel.rows.truncate(*n as usize);
                Ok(rel)
            }
            PlanNode::Insert { .. } | PlanNode::Update { .. } | PlanNode::Delete { .. } => {
                Err(ExecError::BadPlan("DML plans are not executed by execute_select".into()))
            }
        }
    }

    // ---- table access ----------------------------------------------------

    fn run_access(&mut self, a: &TableAccess) -> Result<Relation, ExecError> {
        let data = self.table_data(&a.table)?;
        let total_rows = data.rows();
        let mat_pages = data.materialized_pages() as f64;

        // candidate row set + work accounting by method
        let candidates: Vec<usize> = match &a.method {
            AccessMethod::HeapScan => {
                self.work.io_pages += (mat_pages * a.partition_fraction).max(1.0);
                self.work.cpu_ops += total_rows as f64 * a.partition_fraction;
                (0..total_rows).collect()
            }
            AccessMethod::ClusteredSeek { index, seek_len } => {
                let matched = self.seek_rows(data, index, *seek_len, &a.sargs);
                let sel = matched.len() as f64 / total_rows.max(1) as f64;
                self.work.io_pages += 2.0 + (mat_pages * sel).max(1.0);
                self.work.cpu_ops += matched.len() as f64;
                matched
            }
            AccessMethod::IndexSeek { index, seek_len, covering } => {
                let matched = self.seek_rows(data, index, *seek_len, &a.sargs);
                let sel = matched.len() as f64 / total_rows.max(1) as f64;
                let leaf_pages = self.index_leaf_pages(data, index);
                self.work.io_pages += 2.0 + (leaf_pages * sel).max(1.0);
                self.work.cpu_ops += matched.len() as f64;
                if !covering {
                    // lookups for rows surviving leaf-resident predicates
                    let survivors = matched
                        .iter()
                        .filter(|&&r| self.leaf_sargs_match(data, index, r, &a.sargs))
                        .count();
                    self.work.io_pages += survivors as f64;
                }
                matched
            }
            AccessMethod::CoveringScan { index } => {
                let leaf_pages = self.index_leaf_pages(data, index);
                self.work.io_pages += (leaf_pages * a.partition_fraction).max(1.0);
                self.work.cpu_ops += total_rows as f64 * a.partition_fraction;
                (0..total_rows).collect()
            }
        };

        // materialize + filter by all sargs and residual predicates
        let cols: Vec<ColId> =
            data.column_names().iter().map(|c| ColId::new(&a.binding, c)).collect();
        let mut rel = Relation::new(cols);
        let col_count = data.column_names().len();
        let sarg_positions: Vec<(usize, &SargOp)> = a
            .sargs
            .iter()
            .filter_map(|s| data.column_index(&s.column.column).map(|i| (i, &s.op)))
            .collect();

        let residuals: Vec<&Expr> = self
            .bound
            .residual_exprs
            .iter()
            .filter(|(b, _)| b.as_deref() == Some(a.binding.as_str()))
            .map(|(_, e)| e)
            .collect();

        'rows: for r in candidates {
            for (ci, op) in &sarg_positions {
                if !sarg_matches(op, data.cell(r, *ci)) {
                    continue 'rows;
                }
            }
            let row: Vec<Value> = (0..col_count).map(|c| data.cell(r, c).clone()).collect();
            for e in &residuals {
                if !eval_predicate(e, &rel, &row)? {
                    continue 'rows;
                }
            }
            rel.rows.push(row);
        }
        Ok(rel)
    }

    /// Rows matching the seek-prefix sargs of an index.
    fn seek_rows(
        &self,
        data: &TableData,
        index: &Index,
        seek_len: usize,
        sargs: &[Sarg],
    ) -> Vec<usize> {
        let mut preds: Vec<(usize, &SargOp)> = Vec::new();
        for key in index.key_columns.iter().take(seek_len) {
            if let Some(s) = sargs.iter().find(|s| s.column.column == *key && s.is_seekable()) {
                if let Some(ci) = data.column_index(key) {
                    preds.push((ci, &s.op));
                }
            }
        }
        (0..data.rows())
            .filter(|&r| preds.iter().all(|(ci, op)| sarg_matches(op, data.cell(r, *ci))))
            .collect()
    }

    fn leaf_sargs_match(
        &self,
        data: &TableData,
        index: &Index,
        row: usize,
        sargs: &[Sarg],
    ) -> bool {
        for s in sargs {
            if index.leaf_columns().any(|c| *c == s.column.column) {
                if let Some(ci) = data.column_index(&s.column.column) {
                    if !sarg_matches(&s.op, data.cell(row, ci)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn index_leaf_pages(&self, data: &TableData, index: &Index) -> f64 {
        let width: u32 =
            index.leaf_columns().filter_map(|c| data.column_index(c)).map(|_| 8u32).sum::<u32>()
                + 17;
        pages_for(data.rows() as u64, width) as f64
    }

    // ---- joins -------------------------------------------------------------

    fn join_positions(
        &self,
        rel: &Relation,
        pairs: &[JoinPred],
        other: &Relation,
    ) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
        let mut mine = Vec::new();
        let mut theirs = Vec::new();
        for p in pairs {
            let (a, b) = (&p.left, &p.right);
            let (me, them) =
                if rel.position(Some(&a.binding), &a.column).is_some() { (a, b) } else { (b, a) };
            let mp = rel
                .position(Some(&me.binding), &me.column)
                .ok_or_else(|| ExecError::Eval(format!("join column {} missing", me.column)))?;
            let tp = other
                .position(Some(&them.binding), &them.column)
                .ok_or_else(|| ExecError::Eval(format!("join column {} missing", them.column)))?;
            mine.push(mp);
            theirs.push(tp);
        }
        Ok((mine, theirs))
    }

    fn hash_join(
        &mut self,
        left: Relation,
        right: Relation,
        pairs: &[JoinPred],
    ) -> Result<Relation, ExecError> {
        let schema = Relation::concat_schema(&left, &right);
        let mut out = Relation::new(schema);

        if pairs.is_empty() {
            // cross join
            self.work.cpu_ops += (left.len() * right.len()) as f64;
            for l in &left.rows {
                for r in &right.rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.rows.push(row);
                }
            }
            return Ok(out);
        }

        let (lpos, rpos) = self.join_positions(&left, pairs, &right)?;
        // build on the smaller input
        let (build, probe, bpos, ppos, build_is_left) = if left.len() <= right.len() {
            (&left, &right, &lpos, &rpos, true)
        } else {
            (&right, &left, &rpos, &lpos, false)
        };
        self.work.cpu_ops += 2.0 * build.len() as f64 + probe.len() as f64;

        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
        for (i, row) in build.rows.iter().enumerate() {
            let key: Vec<Value> = bpos.iter().map(|&p| row[p].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        for prow in &probe.rows {
            let key: Vec<Value> = ppos.iter().map(|&p| prow[p].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                self.work.cpu_ops += matches.len() as f64;
                for &bi in matches {
                    let brow = &build.rows[bi];
                    let mut row = if build_is_left { brow.clone() } else { prow.clone() };
                    if build_is_left {
                        row.extend(prow.iter().cloned());
                    } else {
                        row.extend(brow.iter().cloned());
                    }
                    out.rows.push(row);
                }
            }
        }

        // spill accounting mirrors the cost model
        let build_bytes = build.len() as f64 * build.cols.len() as f64 * 8.0;
        if build_bytes > self.engine.hardware.memory_bytes as f64 {
            let probe_bytes = probe.len() as f64 * probe.cols.len() as f64 * 8.0;
            self.work.io_pages += 2.0 * (build_bytes + probe_bytes) / dta_storage::PAGE_SIZE as f64;
        }
        Ok(out)
    }

    fn inl_join(
        &mut self,
        outer: Relation,
        inner: &TableAccess,
        pairs: &[JoinPred],
    ) -> Result<Relation, ExecError> {
        let data = self.table_data(&inner.table)?;
        let index = inner
            .method
            .index()
            .ok_or_else(|| ExecError::BadPlan("INL inner without index".into()))?;
        let covering = matches!(inner.method, AccessMethod::IndexSeek { covering: true, .. })
            || matches!(inner.method, AccessMethod::ClusteredSeek { .. });

        // inner join column (the index's leading key)
        let key_col = index.key_columns.first().expect("well-formed index");
        let key_ci = data
            .column_index(key_col)
            .ok_or_else(|| ExecError::Eval(format!("inner key {key_col} missing")))?;
        // outer side of the pair on the index key
        let pair = pairs
            .iter()
            .find(|p| {
                p.side_for(&inner.binding).map(|c| c.column.as_str()) == Some(key_col.as_str())
            })
            .ok_or_else(|| ExecError::BadPlan("no join pair on inner index key".into()))?;
        let outer_col = pair
            .other_side(&inner.binding)
            .ok_or_else(|| ExecError::BadPlan("join pair missing outer side".into()))?;
        let opos = outer
            .position(Some(&outer_col.binding), &outer_col.column)
            .ok_or_else(|| ExecError::Eval(format!("outer key {} missing", outer_col.column)))?;

        // build the probe map once: this stands in for the B-tree
        let mut map: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(data.rows());
        for r in 0..data.rows() {
            map.entry(data.cell(r, key_ci)).or_default().push(r);
        }

        // secondary join pairs evaluated as residual equalities
        let extra_pairs: Vec<&JoinPred> = pairs.iter().filter(|p| *p != pair).collect();

        let inner_cols: Vec<ColId> =
            data.column_names().iter().map(|c| ColId::new(&inner.binding, c)).collect();
        let mut out =
            Relation::new(outer.cols.iter().cloned().chain(inner_cols.iter().cloned()).collect());

        let leaf_pages = self.index_leaf_pages(data, index);
        let total = data.rows().max(1) as f64;
        let sarg_positions: Vec<(usize, &SargOp)> = inner
            .sargs
            .iter()
            .filter_map(|s| data.column_index(&s.column.column).map(|i| (i, &s.op)))
            .collect();
        let residuals: Vec<&Expr> = self
            .bound
            .residual_exprs
            .iter()
            .filter(|(b, _)| b.as_deref() == Some(inner.binding.as_str()))
            .map(|(_, e)| e)
            .collect();

        for orow in &outer.rows {
            let key = &orow[opos];
            self.work.io_pages += 1.0; // descent (upper levels cached)
            let matches = map.get(key).map(Vec::as_slice).unwrap_or(&[]);
            self.work.io_pages += (leaf_pages * matches.len() as f64 / total).max(0.06);
            self.work.cpu_ops += matches.len() as f64 + 1.0;
            'inner_rows: for &ri in matches {
                for (ci, op) in &sarg_positions {
                    if !sarg_matches(op, data.cell(ri, *ci)) {
                        continue 'inner_rows;
                    }
                }
                if !covering {
                    self.work.io_pages += 1.0;
                }
                let mut row = orow.clone();
                row.extend((0..data.column_names().len()).map(|c| data.cell(ri, c).clone()));
                // secondary equi-join conditions
                for p in &extra_pairs {
                    let a = out
                        .position(Some(&p.left.binding), &p.left.column)
                        .ok_or_else(|| ExecError::Eval("extra pair column".into()))?;
                    let b = out
                        .position(Some(&p.right.binding), &p.right.column)
                        .ok_or_else(|| ExecError::Eval("extra pair column".into()))?;
                    if row[a] != row[b] {
                        continue 'inner_rows;
                    }
                }
                for e in &residuals {
                    if !eval_predicate(e, &out, &row)? {
                        continue 'inner_rows;
                    }
                }
                out.rows.push(row);
            }
        }
        Ok(out)
    }

    // ---- views ---------------------------------------------------------

    /// Materialize a view's content (cost-free: the view exists on disk)
    /// and charge only for scanning it.
    fn run_view_scan(
        &mut self,
        view: &MaterializedView,
        sargs: &[Sarg],
    ) -> Result<Relation, ExecError> {
        let content = self.materialize_view(view)?;

        // charge a scan of the materialized content
        let width = content.cols.len() as u64 * 8;
        let pages = pages_for(content.len() as u64, width as u32) as f64;
        self.work.io_pages += pages.max(1.0);
        self.work.cpu_ops += content.len() as f64;

        // filter by the pushed-down sargs
        let mut out = Relation::new(content.cols.clone());
        let positions: Vec<(usize, &SargOp)> = sargs
            .iter()
            .filter_map(|s| {
                content
                    .position(Some(&s.column.binding), &s.column.column)
                    .or_else(|| content.position(None, &s.column.column))
                    .map(|p| (p, &s.op))
            })
            .collect();
        'rows: for row in content.rows {
            for (p, op) in &positions {
                if !sarg_matches(op, &row[*p]) {
                    continue 'rows;
                }
            }
            out.rows.push(row);
        }
        self.expose_view_aggs(&mut out);
        Ok(out)
    }

    /// Append alias columns so that the statement's aggregate keys (as
    /// printed from the AST, e.g. `SUM(o_price)`) resolve against a view
    /// relation whose aggregate columns are canonically table-qualified
    /// (e.g. `SUM(orders.o_price)`).
    fn expose_view_aggs(&self, rel: &mut Relation) {
        let mut stmt_aggs: Vec<(dta_sql::AggFunc, Option<Box<Expr>>, bool)> = Vec::new();
        let mut collect = |e: &Expr| {
            dta_sql::visit::walk_expr(e, &mut |n| {
                if let Expr::Aggregate { func, distinct, arg } = n {
                    if !stmt_aggs.iter().any(|(f, a, d)| f == func && a == arg && d == distinct) {
                        stmt_aggs.push((*func, arg.clone(), *distinct));
                    }
                }
            });
        };
        for p in &self.select.projections {
            collect(&p.expr);
        }
        if let Some(h) = &self.select.having {
            collect(&h.clone());
        }
        for (func, arg, distinct) in stmt_aggs {
            let stmt_key = agg_key(func, &arg, distinct);
            if rel.cols.iter().any(|c| c.binding == "#agg" && c.column == stmt_key) {
                continue;
            }
            let canonical = stmt_agg_canonical_key(self.bound, func, &arg);
            let source =
                rel.cols.iter().position(|c| c.binding == "#agg" && c.column == canonical).or_else(
                    || {
                        (func == dta_sql::AggFunc::Count)
                            .then(|| {
                                rel.cols.iter().position(|c| {
                                    c.binding == "#agg" && c.column.starts_with("COUNT")
                                })
                            })
                            .flatten()
                    },
                );
            if let Some(src) = source {
                rel.cols.push(ColId::new("#agg", &stmt_key));
                for row in &mut rel.rows {
                    let v = row[src].clone();
                    row.push(v);
                }
            }
        }
    }

    /// Compute a view's rows from base data. Columns are named with the
    /// *query binding* that corresponds to each base table so downstream
    /// operators resolve references naturally; aggregate columns use the
    /// canonical `#agg` binding keyed by a table-qualified signature.
    fn materialize_view(&mut self, view: &MaterializedView) -> Result<Relation, ExecError> {
        // binding for each view table (from the query)
        let binding_of = |table: &str| -> String {
            self.bound
                .tables
                .iter()
                .find(|t| t.table == table)
                .map(|t| t.binding.clone())
                .unwrap_or_else(|| table.to_string())
        };

        // join all base tables (no work charged: the view is materialized)
        let mut joined: Option<Relation> = None;
        for t in &view.tables {
            let data = self.table_data(t)?;
            let b = binding_of(t);
            let cols: Vec<ColId> = data.column_names().iter().map(|c| ColId::new(&b, c)).collect();
            let mut rel = Relation::new(cols);
            for r in 0..data.rows() {
                rel.rows.push(
                    (0..data.column_names().len()).map(|c| data.cell(r, c).clone()).collect(),
                );
            }
            joined = Some(match joined {
                None => rel,
                Some(acc) => {
                    // find join pairs connecting acc tables to t
                    let pairs: Vec<JoinPred> = view
                        .join_pairs
                        .iter()
                        .filter_map(|jp| {
                            let lb = binding_of(&jp.left.table);
                            let rb = binding_of(&jp.right.table);
                            let l = dta_optimizer::query::BoundColumn::new(&lb, &jp.left.column);
                            let r = dta_optimizer::query::BoundColumn::new(&rb, &jp.right.column);
                            let connects = (acc.position(Some(&lb), &jp.left.column).is_some()
                                && rel.position(Some(&rb), &jp.right.column).is_some())
                                || (acc.position(Some(&rb), &jp.right.column).is_some()
                                    && rel.position(Some(&lb), &jp.left.column).is_some());
                            connects.then(|| JoinPred::new(l, r))
                        })
                        .collect();
                    let before = self.work;
                    let j = self.hash_join(acc, rel, &pairs)?;
                    self.work = before; // materialization is not query work
                    j
                }
            });
        }
        let joined = joined.ok_or_else(|| ExecError::BadPlan("view with no tables".into()))?;

        if !view.is_grouped() {
            // project to the view's column list
            let positions: Vec<usize> = view
                .projected
                .iter()
                .map(|qc| {
                    let b = binding_of(&qc.table);
                    joined
                        .position(Some(&b), &qc.column)
                        .ok_or_else(|| ExecError::Eval(format!("view column {qc} missing")))
                })
                .collect::<Result<_, _>>()?;
            let cols: Vec<ColId> = positions.iter().map(|&p| joined.cols[p].clone()).collect();
            let mut out = Relation::new(cols);
            for row in &joined.rows {
                out.rows.push(positions.iter().map(|&p| row[p].clone()).collect());
            }
            return Ok(out);
        }

        // group and aggregate
        let group_pos: Vec<usize> = view
            .group_by
            .iter()
            .map(|qc| {
                let b = binding_of(&qc.table);
                joined
                    .position(Some(&b), &qc.column)
                    .ok_or_else(|| ExecError::Eval(format!("view group column {qc} missing")))
            })
            .collect::<Result<_, _>>()?;
        enum ViewAggInput {
            CountStar,
            Expr(Expr),
        }
        let agg_inputs: Vec<ViewAggInput> = view
            .aggregates
            .iter()
            .map(|va| match &va.arg {
                None => Ok(ViewAggInput::CountStar),
                Some(text) => {
                    let mut e = dta_sql::parse_expression(text).map_err(|err| {
                        ExecError::Eval(format!("view aggregate '{text}': {err}"))
                    })?;
                    // the canonical text is table-qualified; the joined
                    // relation's columns are binding-qualified
                    dta_sql::visit::rewrite_columns(&mut e, &mut |c| {
                        if let Some(t) = &c.table {
                            c.table = Some(binding_of(t));
                        }
                    });
                    Ok(ViewAggInput::Expr(e))
                }
            })
            .collect::<Result<_, _>>()?;

        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for row in &joined.rows {
            let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
            let accs = groups.entry(key).or_insert_with(|| {
                view.aggregates.iter().map(|va| Accumulator::new(va.func, false)).collect()
            });
            for (acc, input) in accs.iter_mut().zip(&agg_inputs) {
                match input {
                    ViewAggInput::CountStar => acc.push(None),
                    ViewAggInput::Expr(e) => {
                        let v = eval(e, &joined, row, None)?;
                        acc.push(Some(&v));
                    }
                }
            }
        }

        let mut cols: Vec<ColId> =
            view.group_by.iter().map(|qc| ColId::new(&binding_of(&qc.table), &qc.column)).collect();
        for va in &view.aggregates {
            cols.push(ColId::new("#agg", &view_agg_canonical_key(va)));
        }
        let mut out = Relation::new(cols);
        for (key, accs) in groups {
            let mut row = key;
            row.extend(accs.iter().map(Accumulator::finish));
            out.rows.push(row);
        }
        Ok(out)
    }

    // ---- aggregation ------------------------------------------------------

    fn distinct(&mut self, rel: Relation) -> Result<Relation, ExecError> {
        self.work.cpu_ops += rel.len() as f64 * 1.5;
        // DISTINCT applies to the *projected* values; keep one full input
        // row per distinct projection so final projection still works
        let mut seen = std::collections::HashSet::new();
        let mut out = Relation::new(rel.cols.clone());
        for row in &rel.rows {
            let key: Vec<Value> = if self.select.projections.is_empty() {
                row.clone()
            } else {
                self.select
                    .projections
                    .iter()
                    .map(|p| eval(&p.expr, &rel, row, None))
                    .collect::<Result<_, _>>()?
            };
            if seen.insert(key) {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Group `rel` by the statement's GROUP BY and compute the
    /// statement's aggregates. `from_view` switches argument resolution
    /// to the view's precomputed aggregate columns (re-aggregation).
    fn aggregate(&mut self, rel: Relation, from_view: bool) -> Result<Relation, ExecError> {
        self.work.cpu_ops += rel.len() as f64 * 1.5;

        let group_pos: Vec<usize> = self
            .bound
            .group_by
            .iter()
            .map(|g| {
                rel.position(Some(&g.binding), &g.column)
                    .or_else(|| rel.position(None, &g.column))
                    .ok_or_else(|| ExecError::Eval(format!("group column {} missing", g.column)))
            })
            .collect::<Result<_, _>>()?;

        // gather the statement's aggregate occurrences (AST level so the
        // output can be matched back during projection)
        let mut stmt_aggs: Vec<(dta_sql::AggFunc, Option<Box<Expr>>, bool)> = Vec::new();
        let mut push_aggs = |e: &Expr| {
            dta_sql::visit::walk_expr(e, &mut |n| {
                if let Expr::Aggregate { func, distinct, arg } = n {
                    let key = (func, arg, distinct);
                    let _ = key;
                    if !stmt_aggs.iter().any(|(f, a, d)| f == func && a == arg && d == distinct) {
                        stmt_aggs.push((*func, arg.clone(), *distinct));
                    }
                }
            });
        };
        for p in &self.select.projections {
            push_aggs(&p.expr);
        }
        if let Some(h) = &self.select.having {
            push_aggs(h);
        }

        // resolve each aggregate's input
        enum AggInput {
            /// evaluate this expression per input row
            Expr(Option<Box<Expr>>),
            /// fold this relation column (re-aggregation from a view)
            Column(usize, bool /* sum-of-counts */),
        }
        let inputs: Vec<(dta_sql::AggFunc, bool, AggInput)> = stmt_aggs
            .iter()
            .map(|(func, arg, distinct)| {
                if from_view {
                    let key = stmt_agg_canonical_key(self.bound, *func, arg);
                    let pos = rel
                        .cols
                        .iter()
                        .position(|c| c.binding == "#agg" && c.column == key)
                        .or_else(|| {
                            // COUNT(col)/COUNT(*) fall back to the view's COUNT(*)
                            (*func == dta_sql::AggFunc::Count)
                                .then(|| {
                                    rel.cols.iter().position(|c| {
                                        c.binding == "#agg" && c.column.starts_with("COUNT")
                                    })
                                })
                                .flatten()
                        })
                        .ok_or_else(|| {
                            ExecError::Eval(format!("view lacks aggregate for {}", key))
                        })?;
                    let sum_of_counts = *func == dta_sql::AggFunc::Count;
                    Ok((*func, *distinct, AggInput::Column(pos, sum_of_counts)))
                } else {
                    Ok((*func, *distinct, AggInput::Expr(arg.clone())))
                }
            })
            .collect::<Result<_, ExecError>>()?;

        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for row in &rel.rows {
            let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
            let accs = groups.entry(key).or_insert_with(|| {
                inputs
                    .iter()
                    .map(|(func, distinct, input)| match input {
                        // re-aggregated COUNT is a SUM of partial counts
                        AggInput::Column(_, true) => Accumulator::new(dta_sql::AggFunc::Sum, false),
                        _ => Accumulator::new(*func, *distinct),
                    })
                    .collect()
            });
            for (acc, (_, _, input)) in accs.iter_mut().zip(&inputs) {
                match input {
                    AggInput::Expr(None) => acc.push(None),
                    AggInput::Expr(Some(e)) => {
                        let v = eval(e, &rel, row, None)?;
                        acc.push(Some(&v));
                    }
                    AggInput::Column(p, _) => acc.push(Some(&row[*p])),
                }
            }
        }
        // a scalar aggregate over no rows still yields one (empty) group
        if groups.is_empty() && group_pos.is_empty() {
            groups.insert(
                Vec::new(),
                inputs
                    .iter()
                    .map(|(func, distinct, input)| match input {
                        AggInput::Column(_, true) => Accumulator::new(dta_sql::AggFunc::Sum, false),
                        _ => Accumulator::new(*func, *distinct),
                    })
                    .collect(),
            );
        }

        let mut cols: Vec<ColId> =
            self.bound.group_by.iter().map(|g| ColId::new(&g.binding, &g.column)).collect();
        for (func, arg, distinct) in &stmt_aggs {
            cols.push(ColId::new("#agg", &agg_key(*func, arg, *distinct)));
        }
        let mut out = Relation::new(cols);
        'groups: for (key, accs) in groups {
            let mut row = key;
            for acc in &accs {
                let mut v = acc.finish();
                // SUM of counts produces a float; normalize back to int
                if let Value::Float(f) = v {
                    if f.fract() == 0.0 && matches!(acc, Accumulator::Sum(..)) {
                        // keep floats for SUM; counts are handled below
                        let _ = f;
                    }
                }
                if let Value::Null = v {
                    v = Value::Null;
                }
                row.push(v);
            }
            // HAVING filter, evaluated with aggregate values available
            if let Some(h) = &self.select.having {
                let agg_map = self.agg_map(&out, &row);
                let v = eval(h, &out, &row, Some(&agg_map))
                    .map_err(|e| ExecError::Eval(format!("HAVING: {e}")))?;
                let keep = match v {
                    Value::Int(i) => i != 0,
                    Value::Float(f) => f != 0.0,
                    _ => false,
                };
                if !keep {
                    continue 'groups;
                }
            }
            out.rows.push(row);
        }
        Ok(out)
    }

    /// Map from aggregate key to value for one aggregated row.
    fn agg_map(&self, rel: &Relation, row: &[Value]) -> HashMap<String, Value> {
        rel.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.binding == "#agg")
            .map(|(i, c)| (c.column.clone(), row[i].clone()))
            .collect()
    }

    // ---- final projection ---------------------------------------------

    fn project(&mut self, rel: Relation) -> Result<(Vec<String>, Vec<Vec<Value>>), ExecError> {
        if self.select.projections.is_empty() {
            // SELECT *
            let columns = rel.cols.iter().map(|c| c.column.clone()).collect();
            return Ok((columns, rel.rows));
        }
        let columns: Vec<String> = self
            .select
            .projections
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.alias.clone().unwrap_or_else(|| match &p.expr {
                    Expr::Column(c) => c.column.clone(),
                    other => {
                        let _ = other;
                        format!("col{i}")
                    }
                })
            })
            .collect();
        let mut rows = Vec::with_capacity(rel.len());
        let has_aggs = self.bound.is_aggregate();
        for row in &rel.rows {
            let agg_map = if has_aggs { Some(self.agg_map(&rel, row)) } else { None };
            let mut out_row = Vec::with_capacity(self.select.projections.len());
            for p in &self.select.projections {
                out_row.push(eval(&p.expr, &rel, row, agg_map.as_ref())?);
            }
            rows.push(out_row);
        }
        self.work.cpu_ops += rows.len() as f64;
        Ok((columns, rows))
    }
}

/// Canonical key for a view aggregate: the stored table-qualified text.
fn view_agg_canonical_key(va: &dta_physical::ViewAggregate) -> String {
    match &va.arg {
        Some(text) => format!("{}({text})", va.func.name()),
        None => format!("{}(*)", va.func.name()),
    }
}

/// Canonical key for a statement aggregate in the same (table-qualified)
/// namespace, via the optimizer's canonicalization.
fn stmt_agg_canonical_key(
    bound: &BoundSelect,
    func: dta_sql::AggFunc,
    arg: &Option<Box<Expr>>,
) -> String {
    match arg {
        Some(a) => match dta_optimizer::query::canonical_agg_arg(bound, a) {
            Some((text, _)) => format!("{}({text})", func.name()),
            None => format!("{}(?)", func.name()),
        },
        None => format!("{}(*)", func.name()),
    }
}
