//! The rule engine: R1–R9 token-stream pattern rules with per-rule
//! severity and path scoping, plus the P0 meta-rule validating
//! suppression pragmas.
//!
//! Every rule defends a property PR 1 established and the paper's cost
//! model assumes (see DESIGN.md §8 for the rule-by-rule rationale):
//!
//! | rule | defends |
//! |------|---------|
//! | R1 `hash-iteration` | recommendation byte-identity: hash iteration order is nondeterministic |
//! | R2 `raw-cost-compare` | the `(cost, position)` tie-break that makes parallel == serial |
//! | R3 `interior-mutability` | `Send + Sync` soundness of shared session state |
//! | R4 `unscoped-thread-spawn` | structured concurrency: no detached threads outliving the session |
//! | R5 `library-unwrap` | panic-free library code; invariants must be written down |
//! | R6 `relaxed-ordering` | every `Relaxed` atomic is a deliberate, justified choice |
//! | R7 `library-panic` | the anytime guarantee: no `panic!`/`exit`/`abort` escapes `tune()` |
//! | R8 `library-print` | observability through the observer layer only: no `println!`/`eprintln!`/`dbg!` in library code |
//! | R9 `wall-clock` | determinism quarantine: wall-clock reads (`Instant`/`SystemTime`) live only in `dta_core::obs` |
//!
//! Rules are deliberately *token-stream* checks over the hand-rolled
//! lexer — no parser, no type information. Where a rule needs types
//! (R1), it tracks `name: HashMap<…>` bindings within the file, which
//! is exact for the patterns this workspace uses and degrades to
//! false-negative (never false-positive noise) elsewhere. Inline
//! `#[cfg(test)]` modules are exempt from every rule: test code may
//! assert on raw costs, unwrap, and spawn freely.

use crate::lexer::{self, Token, TokenKind};
use crate::pragma;

/// How bad a finding is. `--deny-warnings` promotes warnings to
/// build-failing; errors always fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding at an exact source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`R1`–`R9`, or `P0` for pragma violations).
    pub rule: &'static str,
    pub severity: Severity,
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub message: String,
}

/// Static description of one rule (for `--json` and docs).
pub struct RuleSpec {
    pub id: &'static str,
    pub name: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        id: "R1",
        name: "hash-iteration",
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration in recommendation-producing crates \
                  (core, optimizer, baselines); iteration order is nondeterministic — \
                  use BTreeMap/BTreeSet or a sorted Vec",
    },
    RuleSpec {
        id: "R2",
        name: "raw-cost-compare",
        severity: Severity::Error,
        summary: "no raw f64 </>/min/max on costs in greedy.rs/enumeration.rs; route \
                  through the deterministic (cost, position) helpers in dta_core::det",
    },
    RuleSpec {
        id: "R3",
        name: "interior-mutability",
        severity: Severity::Error,
        summary: "no Cell/RefCell/UnsafeCell in crates whose public types are shared \
                  across threads (the PR 1 Send+Sync regression class)",
    },
    RuleSpec {
        id: "R4",
        name: "unscoped-thread-spawn",
        severity: Severity::Error,
        summary: "no std::thread::spawn outside the sanctioned parallel modules; use \
                  std::thread::scope so workers cannot outlive the tuning session",
    },
    RuleSpec {
        id: "R5",
        name: "library-unwrap",
        severity: Severity::Warning,
        summary: "no bare unwrap() in library code of core/optimizer/catalog; use \
                  expect(\"<invariant>\") or propagate the Result",
    },
    RuleSpec {
        id: "R6",
        name: "relaxed-ordering",
        severity: Severity::Warning,
        summary: "Ordering::Relaxed requires an allow-pragma explaining why relaxed \
                  semantics are sound at this site",
    },
    RuleSpec {
        id: "R7",
        name: "library-panic",
        severity: Severity::Error,
        summary: "no panic!/std::process::exit/abort in library code of core/server/stats: \
                  the anytime-tuning layer guarantees no panic escapes tune() — return a \
                  typed error or degrade, and justify deliberate panics with a pragma",
    },
    RuleSpec {
        id: "R8",
        name: "library-print",
        severity: Severity::Error,
        summary: "no println!/eprintln!/dbg! in library code of core/server/stats/catalog: \
                  ad-hoc prints bypass the observer layer and corrupt machine-readable \
                  output — emit an observer event or return the data",
    },
    RuleSpec {
        id: "R9",
        name: "wall-clock",
        severity: Severity::Error,
        summary: "no Instant/SystemTime in dta-core outside the observer module: wall-clock \
                  reads on the recommendation path break byte-identical reruns — timings \
                  belong to dta_core::obs, which quarantines them as report-only",
    },
];

fn spec(id: &str) -> &'static RuleSpec {
    RULES.iter().find(|r| r.id == id).expect("rule id registered in RULES")
}

/// Crates R1 applies to: the ones that produce or rank recommendations.
const R1_CRATES: &[&str] = &["core", "optimizer", "baselines"];
/// Files R2 applies to: where Greedy(m,k) comparisons live.
const R2_FILES: &[&str] = &["greedy.rs", "enumeration.rs"];
/// Crates R3 applies to: session state shared across worker threads.
const R3_CRATES: &[&str] =
    &["core", "optimizer", "server", "physical", "storage", "stats", "catalog"];
/// Modules sanctioned to contain thread fan-out (R4). Even these use
/// scoped threads today; the list bounds where spawns may ever appear.
const R4_SANCTIONED: &[&str] = &["crates/core/src/greedy.rs", "crates/core/src/candidates.rs"];
/// Crates R5 applies to.
const R5_CRATES: &[&str] = &["core", "optimizer", "catalog"];
/// Crates R7 applies to: everything the session-robustness guarantees of
/// DESIGN.md §9 flow through. A panic anywhere here either escapes
/// `tune()` or silently kills a worker.
const R7_CRATES: &[&str] = &["core", "server", "stats"];
/// Crates R8 applies to: the library layers whose output must stay
/// machine-readable (reports, XML, observer traces). Binaries and the
/// CLI-facing crates may print.
const R8_CRATES: &[&str] = &["core", "server", "stats", "catalog"];
/// Crates R9 applies to: the recommendation-producing core, where any
/// wall-clock read threatens byte-identical reruns.
const R9_CRATES: &[&str] = &["core"];
/// The one module sanctioned to read wall clocks (R9): the observer,
/// whose timings are quarantined as report-only by construction.
const R9_SANCTIONED: &[&str] = &["crates/core/src/obs.rs"];

/// Path components that mark a file as outside library code. Files
/// under these are skipped entirely (fixtures under `tests/` contain
/// deliberate violations).
pub const EXCLUDED_COMPONENTS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Path facts the scoping predicates need.
struct PathInfo {
    rel: String,
    crate_name: Option<String>,
    file_name: String,
}

impl PathInfo {
    fn new(rel_path: &str) -> Self {
        let rel = rel_path.replace('\\', "/");
        let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
        let crate_name = comps
            .iter()
            .position(|c| *c == "crates")
            .and_then(|i| comps.get(i + 1))
            .map(|s| s.to_string());
        let file_name = comps.last().copied().unwrap_or("").to_string();
        Self { rel, crate_name, file_name }
    }

    fn in_crate(&self, names: &[&str]) -> bool {
        self.crate_name.as_deref().is_some_and(|c| names.contains(&c))
    }
}

/// Whether `rel_path` is library code the linter should look at.
pub fn in_scope(rel_path: &str) -> bool {
    let rel = rel_path.replace('\\', "/");
    rel.ends_with(".rs")
        && !rel.split('/').any(|c| EXCLUDED_COMPONENTS.contains(&c) || c.starts_with('.'))
}

/// Lint one file's source. Returns the surviving findings and the
/// number of findings suppressed by valid pragmas.
pub fn check_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let info = PathInfo::new(rel_path);
    let tokens = lexer::lex(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let test_ranges = test_mod_ranges(&code);
    let pragmas = pragma::collect(&tokens);

    let mut findings = Vec::new();
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    if info.in_crate(R1_CRATES) {
        r1_hash_iteration(&info, &code, &mut findings);
    }
    if R2_FILES.contains(&info.file_name.as_str()) {
        r2_raw_cost_compare(&info, &code, &mut findings);
    }
    if info.in_crate(R3_CRATES) {
        r3_interior_mutability(&info, &code, &mut findings);
    }
    if !R4_SANCTIONED.contains(&info.rel.as_str()) {
        r4_thread_spawn(&info, &code, &mut findings);
    }
    if info.in_crate(R5_CRATES) {
        r5_library_unwrap(&info, &code, &mut findings);
    }
    r6_relaxed_ordering(&info, &code, &mut findings);
    if info.in_crate(R7_CRATES) {
        r7_library_panic(&info, &code, &mut findings);
    }
    if info.in_crate(R8_CRATES) {
        r8_library_print(&info, &code, &mut findings);
    }
    if info.in_crate(R9_CRATES) && !R9_SANCTIONED.contains(&info.rel.as_str()) {
        r9_wall_clock(&info, &code, &mut findings);
    }

    // test modules are exempt from every rule
    findings.retain(|f| !in_test(f.line));

    // malformed / unjustified pragmas are findings themselves
    for p in &pragmas {
        if let Some(err) = &p.error {
            findings.push(Finding {
                rule: "P0",
                severity: Severity::Error,
                path: info.rel.clone(),
                line: p.line,
                col: p.col,
                message: format!("invalid dta-lint pragma: {err}"),
            });
        }
    }

    // apply suppressions
    let before = findings.len();
    findings.retain(|f| f.rule == "P0" || !pragmas.iter().any(|p| p.suppresses(f.rule, f.line)));
    let suppressed = before - findings.len();

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, suppressed)
}

fn push(
    findings: &mut Vec<Finding>,
    id: &'static str,
    info: &PathInfo,
    t: &Token,
    message: String,
) {
    findings.push(Finding {
        rule: id,
        severity: spec(id).severity,
        path: info.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
fn test_mod_ranges(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        // scan the attribute body for cfg + test (and reject not(test))
        let mut j = i + 2;
        let mut depth = 1u32;
        let (mut has_cfg, mut has_test, mut has_not) = (false, false, false);
        while j < code.len() && depth > 0 {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "cfg" => has_cfg = true,
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !(has_cfg && has_test && !has_not) {
            i = j;
            continue;
        }
        // skip any further attributes between #[cfg(test)] and the item
        let mut k = j;
        while code.get(k).is_some_and(|t| t.text == "#")
            && code.get(k + 1).is_some_and(|t| t.text == "[")
        {
            let mut d = 1u32;
            k += 2;
            while k < code.len() && d > 0 {
                match code[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        if code.get(k).is_some_and(|t| t.text == "mod") {
            // mod NAME { … } — find the matching close brace
            let mut b = k;
            while b < code.len() && code[b].text != "{" {
                b += 1;
            }
            if b < code.len() {
                let start_line = code[k].line;
                let mut d = 0i64;
                let mut end = b;
                for (idx, t) in code.iter().enumerate().skip(b) {
                    match t.text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                end = idx;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                out.push((start_line, code[end].line));
                i = end + 1;
                continue;
            }
        }
        i = k.max(i + 1);
    }
    out
}

/// R1: iteration over `HashMap`/`HashSet`-typed bindings.
fn r1_hash_iteration(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
        "retain",
    ];
    // pass 1: `name : [&|mut|std::collections::…] HashMap<` bindings
    // (lets, fields, params — anything written with a type ascription)
    let mut hash_bound: Vec<String> = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident
            || code.get(i + 1).is_none_or(|t| t.text != ":")
            || code.get(i + 2).is_some_and(|t| t.text == ":")
        {
            continue;
        }
        let mut j = i + 2;
        loop {
            match code.get(j) {
                Some(t) if t.text == "&" || t.text == "mut" || t.kind == TokenKind::Lifetime => {
                    j += 1
                }
                Some(t)
                    if (t.text == "std" || t.text == "collections")
                        && code.get(j + 1).is_some_and(|n| n.text == ":")
                        && code.get(j + 2).is_some_and(|n| n.text == ":") =>
                {
                    j += 3
                }
                _ => break,
            }
        }
        if code.get(j).is_some_and(|t| t.text == "HashMap" || t.text == "HashSet")
            && code.get(j + 1).is_some_and(|t| t.text == "<")
        {
            hash_bound.push(code[i].text.clone());
        }
    }
    if hash_bound.is_empty() {
        return;
    }
    let bound = |name: &str| hash_bound.iter().any(|b| b == name);
    // pass 2a: `name.iter()`-family calls
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && bound(&code[i].text)
            && code.get(i + 1).is_some_and(|t| t.text == ".")
            && code.get(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text.as_str())
            })
            && code.get(i + 3).is_some_and(|t| t.text == "(")
        {
            let m = code[i + 2];
            push(
                findings,
                "R1",
                info,
                m,
                format!(
                    "`{}.{}()` iterates a Hash{{Map,Set}} in a recommendation-producing \
                     crate: iteration order is nondeterministic and can reorder output \
                     or float accumulation — use BTreeMap/BTreeSet or collect + sort \
                     (PR 1 byte-identical-recommendation guarantee)",
                    code[i].text, m.text
                ),
            );
        }
    }
    // pass 2b: `for … in [&][mut] [self.]name {`
    for i in 0..code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text == "for") {
            continue;
        }
        let Some(inpos) = (i + 1..code.len().min(i + 16))
            .find(|&j| code[j].kind == TokenKind::Ident && code[j].text == "in")
        else {
            continue;
        };
        let mut j = inpos + 1;
        while code.get(j).is_some_and(|t| t.text == "&" || t.text == "mut") {
            j += 1;
        }
        if code.get(j).is_some_and(|t| t.text == "self")
            && code.get(j + 1).is_some_and(|t| t.text == ".")
        {
            j += 2;
        }
        if code.get(j).is_some_and(|t| t.kind == TokenKind::Ident && bound(&t.text))
            && code.get(j + 1).is_some_and(|t| t.text == "{")
        {
            push(
                findings,
                "R1",
                info,
                code[j],
                format!(
                    "`for … in {}` iterates a Hash{{Map,Set}} in a recommendation-producing \
                     crate: iteration order is nondeterministic — use BTreeMap/BTreeSet \
                     or collect + sort (PR 1 byte-identical-recommendation guarantee)",
                    code[j].text
                ),
            );
        }
    }
}

/// R2: raw float comparisons on cost-like identifiers.
fn r2_raw_cost_compare(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    let costish = |t: &Token| {
        // snake_case value names only: `CostEvaluator<'_>` is a generic
        // type argument list, not a comparison
        t.kind == TokenKind::Ident && !t.text.chars().next().is_some_and(|c| c.is_uppercase()) && {
            let l = t.text.to_ascii_lowercase();
            l.contains("cost") || l.contains("benefit")
        }
    };
    let is_cmp = |t: &Token| t.kind == TokenKind::Punct && (t.text == "<" || t.text == ">");
    for i in 0..code.len() {
        // `cost <`, `cost >`
        if costish(code[i]) && code.get(i + 1).is_some_and(|t| is_cmp(t)) {
            push(
                findings,
                "R2",
                info,
                code[i + 1],
                format!(
                    "raw `{}` comparison on `{}`: float comparisons in the search must \
                     go through dta_core::det ((cost, position) tie-break) or parallel \
                     and serial runs can diverge on ties",
                    code[i + 1].text,
                    code[i].text
                ),
            );
        }
        // `< cost`, `> cost` — but not `-> cost` or `=> cost`
        if is_cmp(code[i])
            && code.get(i + 1).is_some_and(|t| costish(t))
            && !(i > 0 && (code[i - 1].text == "-" || code[i - 1].text == "="))
        {
            push(
                findings,
                "R2",
                info,
                code[i],
                format!(
                    "raw `{}` comparison against `{}`: float comparisons in the search \
                     must go through dta_core::det ((cost, position) tie-break)",
                    code[i].text,
                    code[i + 1].text
                ),
            );
        }
        // `cost.min(` / `cost.max(` and friends
        if costish(code[i])
            && code.get(i + 1).is_some_and(|t| t.text == ".")
            && code.get(i + 2).is_some_and(|t| {
                matches!(t.text.as_str(), "min" | "max" | "lt" | "gt" | "le" | "ge")
            })
            && code.get(i + 3).is_some_and(|t| t.text == "(")
        {
            push(
                findings,
                "R2",
                info,
                code[i + 2],
                format!(
                    "`{}.{}(…)` on a cost: NaN-silent float min/max breaks the \
                     deterministic reduction — use dta_core::det",
                    code[i].text,
                    code[i + 2].text
                ),
            );
        }
    }
}

/// R3: interior-mutability cells in thread-shared crates.
fn r3_interior_mutability(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for t in code {
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "Cell" | "RefCell" | "UnsafeCell" | "OnceCell")
        {
            push(
                findings,
                "R3",
                info,
                t,
                format!(
                    "`{}` in a crate whose types are shared across tuning threads: \
                     interior mutability silently removes Send/Sync (the PR 1 \
                     regression class) — use atomics or parking_lot locks",
                    t.text
                ),
            );
        }
    }
}

/// R4: detached thread spawns.
fn r4_thread_spawn(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && code[i].text == "thread"
            && code.get(i + 1).is_some_and(|t| t.text == ":")
            && code.get(i + 2).is_some_and(|t| t.text == ":")
            && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "spawn")
        {
            push(
                findings,
                "R4",
                info,
                code[i + 3],
                "`std::thread::spawn` outside the sanctioned parallel modules: detached \
                 threads can outlive the tuning session and its borrowed caches — use \
                 `std::thread::scope`"
                    .to_string(),
            );
        }
    }
}

/// R5: bare `unwrap()` in library code.
fn r5_library_unwrap(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if code[i].text == "."
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "unwrap")
            && code.get(i + 2).is_some_and(|t| t.text == "(")
            && code.get(i + 3).is_some_and(|t| t.text == ")")
        {
            push(
                findings,
                "R5",
                info,
                code[i + 1],
                "bare `unwrap()` in library code: write the invariant down with \
                 `expect(\"<invariant>\")` or propagate the error"
                    .to_string(),
            );
        }
    }
}

/// R7: `panic!` / `std::process::exit` / `std::process::abort` in
/// library code of the robustness-covered crates.
fn r7_library_panic(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        // `panic!(…)` — macro invocations only, so `catch_unwind` helpers
        // and identifiers merely *named* panic don't fire
        if code[i].kind == TokenKind::Ident
            && code[i].text == "panic"
            && code.get(i + 1).is_some_and(|t| t.text == "!")
        {
            push(
                findings,
                "R7",
                info,
                code[i],
                "`panic!` in library code: the robustness layer guarantees no panic \
                 escapes tune() — return a typed error, degrade the item, or justify a \
                 deliberate invariant/fault-injection panic with a \
                 `// dta-lint: allow(R7): <why>` pragma"
                    .to_string(),
            );
        }
        // `process::exit(…)` / `process::abort(…)` (with or without the
        // leading `std::`)
        if code[i].kind == TokenKind::Ident
            && code[i].text == "process"
            && code.get(i + 1).is_some_and(|t| t.text == ":")
            && code.get(i + 2).is_some_and(|t| t.text == ":")
            && code.get(i + 3).is_some_and(|t| {
                t.kind == TokenKind::Ident && (t.text == "exit" || t.text == "abort")
            })
        {
            push(
                findings,
                "R7",
                info,
                code[i + 3],
                format!(
                    "`std::process::{}` in library code: it kills the whole session — \
                     even a cancelled or budget-exhausted run must return its \
                     best-so-far recommendation",
                    code[i + 3].text
                ),
            );
        }
    }
}

/// R8: `println!` / `eprintln!` / `dbg!` in library code.
fn r8_library_print(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        // macro invocations only, so a function merely *named* println
        // (there are none, but the lexer cannot know) does not fire
        if code[i].kind == TokenKind::Ident
            && matches!(code[i].text.as_str(), "println" | "eprintln" | "dbg")
            && code.get(i + 1).is_some_and(|t| t.text == "!")
        {
            push(
                findings,
                "R8",
                info,
                code[i],
                format!(
                    "`{}!` in library code: ad-hoc prints bypass the observer layer and \
                     corrupt machine-readable output (XML reports, JSON traces) — emit an \
                     observer event, return the data, or justify a deliberate print with \
                     a `// dta-lint: allow(R8): <why>` pragma",
                    code[i].text
                ),
            );
        }
    }
}

/// R9: wall-clock reads (`Instant` / `SystemTime`) outside the observer.
fn r9_wall_clock(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for t in code {
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "Instant" | "SystemTime") {
            push(
                findings,
                "R9",
                info,
                t,
                format!(
                    "`{}` in dta-core outside the observer module: a wall-clock read on \
                     the recommendation path makes reruns non-reproducible — move the \
                     timing into dta_core::obs (report-only by construction) or justify \
                     with a `// dta-lint: allow(R9): <why>` pragma",
                    t.text
                ),
            );
        }
    }
}

/// R6: `Ordering::Relaxed` without a justification pragma.
fn r6_relaxed_ordering(info: &PathInfo, code: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && code[i].text == "Ordering"
            && code.get(i + 1).is_some_and(|t| t.text == ":")
            && code.get(i + 2).is_some_and(|t| t.text == ":")
            && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "Relaxed")
        {
            push(
                findings,
                "R6",
                info,
                code[i + 3],
                "`Ordering::Relaxed` requires a `// dta-lint: allow(R6): <why>` pragma: \
                 state why relaxed semantics cannot reorder anything that matters here"
                    .to_string(),
            );
        }
    }
}
