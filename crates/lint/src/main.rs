//! CLI for `dta-lint`.
//!
//! ```text
//! dta-lint [PATHS…] [--json] [--deny-warnings]
//! ```
//!
//! Exit codes: 0 clean (warnings allowed unless `--deny-warnings`),
//! 1 findings, 2 usage or I/O failure.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Write to stdout, ignoring a closed pipe (`dta-lint … | head` must
/// not panic).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

const USAGE: &str = "\
dta-lint — determinism & concurrency invariant checker for the DTA workspace

USAGE:
    dta-lint [PATHS…] [--json] [--deny-warnings]

ARGS:
    PATHS…            files or directories to lint (default: crates/)

OPTIONS:
    --json            machine-readable report on stdout
    --deny-warnings   non-zero exit on warnings, not just errors
    --help            this text

Suppression: `// dta-lint: allow(<rules>): <justification>` on or directly
above the offending line. The justification is mandatory.";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut deny_warnings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                emit(USAGE);
                emit("\n");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown option {flag:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    let result = match dta_lint::lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dta-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        emit(&dta_lint::report::json(&result));
    } else {
        emit(&dta_lint::report::text(&result));
    }
    if result.fails(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
