//! `dta-lint` — in-tree static analysis enforcing the workspace's
//! determinism and concurrency invariants.
//!
//! PR 1 established that parallel and serial Greedy(m,k) runs produce
//! **byte-identical recommendations**. That property is load-bearing —
//! DTA ranks configurations by optimizer-estimated cost, so any
//! nondeterminism in iteration order, float tie-breaking, or thread
//! interleaving silently changes recommendations between runs. This
//! crate encodes the discipline as machine-checked rules (R1–R9, see
//! [`rules::RULES`]) over a hand-rolled lexer: dependency-free,
//! offline, and fast enough to gate CI.
//!
//! ```text
//! cargo run -p dta-lint -- crates/ --deny-warnings   # gate
//! cargo run -p dta-lint -- crates/ --json            # machine report
//! ```
//!
//! Escape hatch: `// dta-lint: allow(<rule>): <justification>` on (or
//! directly above) the offending line. The justification is mandatory.

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

pub use rules::{Finding, Severity};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of linting a set of paths.
#[derive(Debug, Default)]
pub struct LintResult {
    /// Findings that survived suppression, in (path, line, col) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by valid pragmas.
    pub suppressed: usize,
    /// Files inspected.
    pub files: usize,
}

impl LintResult {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == severity).count()
    }

    /// Whether the run should fail the build.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0)
    }
}

/// Lint a single source text under a (possibly synthetic) relative
/// path. The path drives rule scoping — `"crates/core/src/x.rs"`
/// enables the core-scoped rules even for an in-memory fixture.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    rules::check_source(rel_path, src).0
}

/// Lint every in-scope `.rs` file under `paths` (files or directories).
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<LintResult> {
    let mut files = Vec::new();
    for p in paths {
        collect_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut result = LintResult::default();
    for f in &files {
        let rel = f.to_string_lossy().replace('\\', "/");
        if !rules::in_scope(&rel) {
            continue;
        }
        let src = fs::read_to_string(f)?;
        let (findings, suppressed) = rules::check_source(&rel, &src);
        result.findings.extend(findings);
        result.suppressed += suppressed;
        result.files += 1;
    }
    result
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(result)
}

fn collect_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let meta = fs::metadata(path)?;
    if meta.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    // deterministic traversal: sort directory entries by name
    let mut entries: Vec<PathBuf> =
        fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for e in entries {
        let name = e.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || rules::EXCLUDED_COMPONENTS.contains(&name) {
            continue;
        }
        if e.is_dir() {
            collect_files(&e, out)?;
        } else if name.ends_with(".rs") {
            out.push(e);
        }
    }
    Ok(())
}
