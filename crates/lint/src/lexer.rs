//! A small hand-rolled Rust lexer — just enough fidelity for
//! token-stream pattern rules.
//!
//! The rules in [`crate::rules`] never need a parse tree; they match
//! short token sequences (`Ordering :: Relaxed`, `. unwrap ( )`, …).
//! What they *do* need is for the lexer to never mistake the inside of
//! a string, comment, or char literal for code, so those are handled
//! with full care:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   **nested**, `/** */`) become [`TokenKind::Comment`] tokens — kept,
//!   because suppression pragmas live in comments;
//! * plain strings with escapes, raw strings `r"…"` / `r#"…"#` (any
//!   hash depth), byte and raw-byte strings;
//! * char literals vs. lifetimes: `'a'` is a char, `'a` is a lifetime,
//!   `'\n'` / `'\u{1F600}'` are chars, `'static` is a lifetime;
//! * numbers (decimal, hex/octal/binary, floats, `_` separators,
//!   suffixes) are consumed greedily into one token.
//!
//! Every token carries its 1-based line and column so findings point at
//! exact source positions.

/// What a token is. Rules mostly care about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// String literal of any flavor (plain, raw, byte, raw-byte).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`.`, `:`, `<`, `{`, …).
    Punct,
    /// Line or block comment, text included (pragmas live here).
    Comment,
}

/// One lexed token with its exact source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token's text. For `Punct` this is one character; for
    /// comments it includes the delimiters.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for tokens the pattern rules should see (everything but
    /// comments).
    pub fn is_code(&self) -> bool {
        self.kind != TokenKind::Comment
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, buf: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            buf.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a full token stream (comments included).
///
/// The lexer is total: any input produces a token stream. Malformed
/// constructs (an unterminated string, a stray byte) degrade to
/// best-effort tokens rather than errors — a *linter* must keep going.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let tok = |kind: TokenKind, text: String| Token { kind, text, line, col };
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // comments
        if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            cur.eat_while(&mut text, |c| c != '\n');
            out.push(tok(TokenKind::Comment, text));
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            out.push(tok(TokenKind::Comment, block_comment(&mut cur)));
            continue;
        }
        // raw / byte / raw-byte string prefixes
        if (c == 'r' || c == 'b') && string_prefix_len(&cur) > 0 {
            out.push(tok(TokenKind::Str, prefixed_string(&mut cur)));
            continue;
        }
        // byte char b'x'
        if c == 'b' && cur.peek_at(1) == Some('\'') {
            let mut text = String::new();
            text.push(cur.bump().expect("peeked 'b'"));
            text.push_str(&char_literal(&mut cur));
            out.push(tok(TokenKind::Char, text));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            cur.eat_while(&mut text, is_ident_continue);
            out.push(tok(TokenKind::Ident, text));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(tok(TokenKind::Num, number(&mut cur)));
            continue;
        }
        if c == '"' {
            out.push(tok(TokenKind::Str, plain_string(&mut cur)));
            continue;
        }
        if c == '\'' {
            // char literal or lifetime?
            let (kind, text) = quote(&mut cur);
            out.push(tok(kind, text));
            continue;
        }
        let mut text = String::new();
        text.push(cur.bump().expect("peeked punct"));
        out.push(tok(TokenKind::Punct, text));
    }
    out
}

/// Length of a raw/byte string prefix at the cursor (`r"`, `r#`, `b"`,
/// `br#`, …), or 0 if the cursor is not at a string prefix.
fn string_prefix_len(cur: &Cursor) -> usize {
    let mut i = 0;
    match cur.peek_at(i) {
        Some('b') => {
            i += 1;
            if cur.peek_at(i) == Some('r') {
                i += 1;
            }
        }
        Some('r') => i += 1,
        _ => return 0,
    }
    let mut j = i;
    while cur.peek_at(j) == Some('#') {
        j += 1;
    }
    if cur.peek_at(j) == Some('"') {
        // `b"…"` (j == i == 1, no `r`) is a plain byte string — fine too.
        j + 1
    } else {
        0
    }
}

/// Consume `r"…"` / `r#"…"#` / `b"…"` / `br##"…"##` starting at the
/// prefix. Raw strings have no escapes; byte strings escape like plain
/// strings.
fn prefixed_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut raw = false;
    while let Some(c) = cur.peek() {
        if c == 'b' || c == 'r' {
            raw |= c == 'r';
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let mut hashes = 0;
    while cur.peek() == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek() == Some('"') {
        text.push('"');
        cur.bump();
    }
    if raw {
        // closes at `"` followed by `hashes` hash marks
        while let Some(c) = cur.bump() {
            text.push(c);
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && cur.peek() == Some('#') {
                    text.push('#');
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    } else {
        text.push_str(&string_body(cur));
    }
    text
}

/// Body of a plain (escaping) string after the opening quote, through
/// the closing quote.
fn string_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        } else if c == '"' {
            break;
        }
    }
    text
}

fn plain_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote"));
    text.push_str(&string_body(cur));
    text
}

/// A `'…` sequence: lifetime (`'a`, `'static`) or char literal
/// (`'x'`, `'\n'`, `'\u{…}'`).
///
/// Disambiguation, same as rustc: after the quote, an identifier chunk
/// that is **not** followed by a closing `'` is a lifetime; anything
/// else is a char literal.
fn quote(cur: &mut Cursor) -> (TokenKind, String) {
    // lookahead without consuming
    let mut i = 1; // past the opening '
    if cur.peek_at(i).is_some_and(is_ident_start) {
        while cur.peek_at(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if cur.peek_at(i) != Some('\'') {
            // lifetime
            let mut text = String::new();
            text.push(cur.bump().expect("opening quote"));
            cur.eat_while(&mut text, is_ident_continue);
            return (TokenKind::Lifetime, text);
        }
    }
    (TokenKind::Char, char_literal(cur))
}

/// A char literal starting at the opening `'`, through the closing `'`.
fn char_literal(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote"));
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            match cur.bump() {
                Some('u') => {
                    text.push('u');
                    // \u{…}
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
                Some(e) => {
                    text.push(e);
                    // \xNN
                    if e == 'x' {
                        for _ in 0..2 {
                            if let Some(h) = cur.bump() {
                                text.push(h);
                            }
                        }
                    }
                }
                None => return text,
            }
        }
        Some(c) => text.push(c),
        None => return text,
    }
    if cur.peek() == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    text
}

/// A numeric literal: integer/float, any radix prefix, `_` separators,
/// type suffixes, exponents. Greedy and permissive — rules only need
/// "this region is a number", never its value.
fn number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    cur.eat_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
    // a fractional part: `.` followed by a digit (not `..` or a method)
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        cur.bump();
        cur.eat_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
    }
    // exponent sign: `1e-5` — the `e` was eaten above, pick up `-5`
    if text.ends_with(['e', 'E']) && cur.peek().is_some_and(|c| c == '+' || c == '-') {
        text.push(cur.bump().expect("peeked sign"));
        cur.eat_while(&mut text, |c| c.is_ascii_digit() || c == '_');
    }
    text
}

/// A block comment starting at `/*`, honoring nesting.
fn block_comment(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().expect("'/'"));
    text.push(cur.bump().expect("'*'"));
    let mut depth = 1u32;
    while depth > 0 {
        match cur.bump() {
            Some('/') if cur.peek() == Some('*') => {
                text.push('/');
                text.push(cur.bump().expect("'*'"));
                depth += 1;
            }
            Some('*') if cur.peek() == Some('/') => {
                text.push('*');
                text.push(cur.bump().expect("'/'"));
                depth -= 1;
            }
            Some(c) => text.push(c),
            None => break,
        }
    }
    text
}
