//! Rendering: rustc-style text diagnostics and a machine-readable
//! `--json` report (hand-rolled writer — the linter is dependency-free).

use crate::rules::{Severity, RULES};
use crate::LintResult;
use std::fmt::Write as _;

/// Render the human-facing text report.
pub fn text(result: &LintResult) -> String {
    let mut out = String::new();
    for f in &result.findings {
        let _ = writeln!(out, "{}[{}]: {}", f.severity.as_str(), f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
    }
    let errors = result.count(Severity::Error);
    let warnings = result.count(Severity::Warning);
    let _ = writeln!(
        out,
        "dta-lint: {} file{} checked, {errors} error{}, {warnings} warning{}, {} suppressed",
        result.files,
        plural(result.files),
        plural(errors),
        plural(warnings),
        result.suppressed,
    );
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Render the machine-readable JSON report.
pub fn json(result: &LintResult) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
             \"col\": {}, \"message\": {}}}",
            escape(f.rule),
            escape(f.severity.as_str()),
            escape(&f.path),
            f.line,
            f.col,
            escape(&f.message)
        );
    }
    if !result.findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"errors\": {},\n  \"warnings\": {},\n  \"suppressed\": {},\n  \"files\": {},\n",
        result.count(Severity::Error),
        result.count(Severity::Warning),
        result.suppressed,
        result.files
    );
    out.push_str("  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {}, \"name\": {}, \"severity\": {}}}",
            escape(r.id),
            escape(r.name),
            escape(r.severity.as_str())
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
