//! Suppression pragmas.
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // dta-lint: allow(R6): counter only; never orders other memory.
//! ```
//!
//! * `allow(…)` takes one or more comma-separated rule ids;
//! * the text after the closing `):` is the **justification** and is
//!   mandatory — a pragma without one is itself a finding (`P0`) *and*
//!   suppresses nothing, so the original finding still fires;
//! * a pragma written **on the same line as code** applies to that
//!   line; a pragma on **a line of its own** applies to the next line
//!   of *code*, so the justification may continue over further comment
//!   lines.
//!
//! This mirrors how `#[allow]`/`NOLINT`-style escapes work in
//! production lint stacks: every escape hatch is grep-able, scoped to
//! one line, and carries its reviewer-facing "why".

use crate::lexer::{Token, TokenKind};

/// Minimum number of characters for a justification to count as
/// "written". Filters out `: ok` / `: fine` rubber stamps.
pub const MIN_JUSTIFICATION: usize = 10;

/// One parsed `dta-lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule ids this pragma suppresses (`["R6"]`).
    pub rules: Vec<String>,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Column of the comment token.
    pub col: u32,
    /// Lines of code the pragma covers.
    pub covers: (u32, u32),
    /// The justification text (may be too short — see `error`).
    pub justification: String,
    /// `Some(message)` when the pragma is malformed or unjustified; a
    /// malformed pragma suppresses nothing.
    pub error: Option<String>,
}

impl Pragma {
    /// Whether this pragma suppresses `rule` on `line`.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.error.is_none()
            && line >= self.covers.0
            && line <= self.covers.1
            && self.rules.iter().any(|r| r == rule)
    }
}

/// Extract every pragma from a token stream (comments included).
pub fn collect(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            continue;
        }
        // a pragma is a comment whose content *begins* with the marker;
        // prose that merely mentions `dta-lint:` mid-sentence is not one
        let content = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !content.starts_with("dta-lint:") {
            continue;
        }
        // standalone iff no code token earlier on the same line
        let standalone = !tokens[..i].iter().any(|p| p.is_code() && p.line == t.line);
        // a standalone pragma covers the next line of *code*, so a
        // multi-line justification comment stays one pragma
        let covers = if standalone {
            let next_code = tokens[i + 1..]
                .iter()
                .find(|p| p.is_code() && p.line > t.line)
                .map_or(t.line + 1, |p| p.line);
            (t.line, next_code)
        } else {
            (t.line, t.line)
        };
        out.push(parse(&t.text, t.line, t.col, covers));
    }
    out
}

fn parse(comment: &str, line: u32, col: u32, covers: (u32, u32)) -> Pragma {
    let mut p =
        Pragma { rules: Vec::new(), line, col, covers, justification: String::new(), error: None };
    let Some(after_marker) = comment.split("dta-lint:").nth(1) else {
        p.error = Some("pragma marker without a directive".into());
        return p;
    };
    let body = after_marker.trim_start();
    let Some(after_allow) = body.strip_prefix("allow") else {
        p.error = Some(format!(
            "unknown dta-lint directive {:?}; only `allow(<rules>): <justification>` exists",
            body.split_whitespace().next().unwrap_or("")
        ));
        return p;
    };
    let after_allow = after_allow.trim_start();
    let Some(rest) = after_allow.strip_prefix('(') else {
        p.error = Some("expected `(` after `allow`".into());
        return p;
    };
    let Some(close) = rest.find(')') else {
        p.error = Some("unclosed rule list in `allow(...)`".into());
        return p;
    };
    p.rules =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if p.rules.is_empty() {
        p.error = Some("`allow()` names no rules".into());
        return p;
    }
    let tail = rest[close + 1..].trim_start();
    let Some(just) = tail.strip_prefix(':') else {
        p.error = Some("missing justification: write `allow(<rules>): <why this is sound>`".into());
        return p;
    };
    p.justification = just.trim().trim_end_matches("*/").trim().to_string();
    if p.justification.len() < MIN_JUSTIFICATION {
        p.error = Some(format!(
            "justification {:?} is too short (< {MIN_JUSTIFICATION} chars): explain why \
             the rule is sound to break here",
            p.justification
        ));
    }
    p
}
