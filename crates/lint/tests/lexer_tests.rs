//! Lexer fidelity tests: the rule engine is only as good as the
//! lexer's ability to keep strings, comments, chars, and lifetimes out
//! of the code stream.

use dta_lint::lexer::{lex, Token, TokenKind};

fn kinds(tokens: &[Token]) -> Vec<TokenKind> {
    tokens.iter().map(|t| t.kind).collect()
}

fn code_texts(tokens: &[Token]) -> Vec<&str> {
    tokens.iter().filter(|t| t.is_code()).map(|t| t.text.as_str()).collect()
}

#[test]
fn plain_string_with_escapes_is_one_token() {
    let toks = lex(r#"let s = "a \" quote and a \\ backslash";"#);
    let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r#""a \" quote and a \\ backslash""#);
    // the semicolon after the string is still seen
    assert_eq!(toks.last().expect("tokens").text, ";");
}

#[test]
fn string_contents_never_leak_into_code() {
    // if the lexer mis-tracked the string, `unwrap` would appear as an Ident
    let toks = lex(r#"let s = "costs.iter().unwrap() /* not code */";"#);
    assert_eq!(
        code_texts(&toks),
        vec!["let", "s", "=", r#""costs.iter().unwrap() /* not code */""#, ";"]
    );
}

#[test]
fn raw_strings_any_hash_depth() {
    let toks = lex(r###"let s = r#"has "quotes" and // no comment"#;"###);
    let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r###"r#"has "quotes" and // no comment"#"###);
    assert!(!toks.iter().any(|t| t.kind == TokenKind::Comment));

    let toks = lex("r##\"one \"# inside\"## next");
    assert_eq!(toks[0].kind, TokenKind::Str);
    assert_eq!(toks[0].text, "r##\"one \"# inside\"##");
    assert_eq!(toks[1].text, "next");
}

#[test]
fn byte_and_raw_byte_strings() {
    let toks = lex(r#"(b"bytes", br"raw bytes", b'q')"#);
    let kinds: Vec<TokenKind> =
        toks.iter().filter(|t| t.kind != TokenKind::Punct).map(|t| t.kind).collect();
    assert_eq!(kinds, vec![TokenKind::Str, TokenKind::Str, TokenKind::Char]);
}

#[test]
fn nested_block_comments() {
    let toks = lex("/* outer /* inner */ still a comment */ fn");
    assert_eq!(kinds(&toks), vec![TokenKind::Comment, TokenKind::Ident]);
    assert_eq!(toks[0].text, "/* outer /* inner */ still a comment */");
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn line_and_doc_comments() {
    let toks = lex("// plain\n/// doc\n//! inner doc\ncode");
    assert_eq!(
        kinds(&toks),
        vec![TokenKind::Comment, TokenKind::Comment, TokenKind::Comment, TokenKind::Ident]
    );
    assert_eq!(toks[0].text, "// plain");
    assert_eq!(toks[1].text, "/// doc");
    assert_eq!(toks[2].text, "//! inner doc");
}

#[test]
fn lifetimes_vs_char_literals() {
    let toks = lex("&'a str + 'static + 'x' + '\\n' + '\\u{1F600}' + 'q'");
    let interesting: Vec<(TokenKind, &str)> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Lifetime | TokenKind::Char))
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(
        interesting,
        vec![
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Lifetime, "'static"),
            (TokenKind::Char, "'x'"),
            (TokenKind::Char, "'\\n'"),
            (TokenKind::Char, "'\\u{1F600}'"),
            (TokenKind::Char, "'q'"),
        ]
    );
}

#[test]
fn char_contents_never_leak_into_code() {
    // a mis-lexed '<' char would look like a comparison to R2
    let toks = lex("let c = '<'; cost");
    assert_eq!(code_texts(&toks), vec!["let", "c", "=", "'<'", ";", "cost"]);
    assert!(!toks.iter().any(|t| t.kind == TokenKind::Punct && t.text == "<"));
}

#[test]
fn numbers_are_single_tokens() {
    let toks = lex("1_000 0xFF 0b1010 3.25 1e-5 2.5f64");
    assert_eq!(code_texts(&toks), vec!["1_000", "0xFF", "0b1010", "3.25", "1e-5", "2.5f64"]);
    assert!(toks.iter().all(|t| t.kind == TokenKind::Num));
}

#[test]
fn range_dots_are_not_fraction() {
    let toks = lex("0..10");
    assert_eq!(code_texts(&toks), vec!["0", ".", ".", "10"]);
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let toks = lex("ab cd\n  efg\n'x' zz");
    let pos: Vec<(&str, u32, u32)> =
        toks.iter().map(|t| (t.text.as_str(), t.line, t.col)).collect();
    assert_eq!(pos, vec![("ab", 1, 1), ("cd", 1, 4), ("efg", 2, 3), ("'x'", 3, 1), ("zz", 3, 5),]);
}

#[test]
fn multiline_strings_and_comments_advance_lines() {
    let toks = lex("\"two\nlines\" after\n/* a\nb */ tail");
    let after = toks.iter().find(|t| t.text == "after").expect("after token");
    assert_eq!((after.line, after.col), (2, 8));
    let tail = toks.iter().find(|t| t.text == "tail").expect("tail token");
    assert_eq!((tail.line, tail.col), (4, 6));
}

#[test]
fn lexer_is_total_on_malformed_input() {
    // unterminated constructs must not hang or panic
    for src in ["\"never closed", "/* never closed", "r#\"never closed", "'", "b'"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "no tokens for {src:?}");
    }
}

#[test]
fn punct_tokens_are_single_chars() {
    let toks = lex("a::<B>()");
    assert_eq!(code_texts(&toks), vec!["a", ":", ":", "<", "B", ">", "(", ")"]);
}
