//! R7 fixture: panics and process kills in library code.

pub fn explode(n: u32) -> u32 {
    if n == 0 {
        panic!("n must be positive");
    }
    n
}

pub fn bail() {
    std::process::exit(2);
}

pub fn die() {
    std::process::abort();
}
