//! R5 fixture: a bare unwrap in library code.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
