//! R4 fixture: a detached thread spawn outside the sanctioned modules.

pub fn background() {
    std::thread::spawn(|| {});
}
