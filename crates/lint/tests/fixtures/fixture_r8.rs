//! R8 fixture: ad-hoc prints in library code.

pub fn trace(cost: f64) -> f64 {
    println!("cost = {cost}");
    eprintln!("still here");
    dbg!(cost)
}
