//! R2 fixture: raw float comparisons on costs (linted as greedy.rs).

pub fn pick(best_cost: f64, cost: f64, benefit: f64) -> f64 {
    if cost < 100.0 {
        return cost;
    }
    if 0.0 > benefit {
        return 0.0;
    }
    best_cost.min(cost)
}
