//! R1 fixture: Hash{Map,Set} iteration under a core-scoped path.

use std::collections::{HashMap, HashSet};

pub fn total(costs: &HashMap<String, f64>) -> f64 {
    let mut sum = 0.0;
    for (_key, value) in costs.iter() {
        sum += *value;
    }
    sum
}

pub fn drain_all(pool: &mut HashSet<u64>) {
    for id in pool {
        let _ = id;
    }
}
