//! Clean fixture: the R6 pragma below is justified, so nothing fires.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn read(counter: &AtomicUsize) -> usize {
    // dta-lint: allow(R6): monotonic counter read after all writers joined.
    counter.load(Ordering::Relaxed)
}
