//! R9 fixture: wall-clock reads on the recommendation path.

use std::time::Instant;

pub fn timed(base: f64) -> f64 {
    let started = Instant::now();
    let t = std::time::SystemTime::now();
    let _ = t;
    base + started.elapsed().as_secs_f64()
}
