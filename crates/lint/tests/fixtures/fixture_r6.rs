//! R6 fixture: a Relaxed atomic load without a justification pragma.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn read(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}
