//! R3 fixture: interior mutability in a thread-shared crate.

use std::cell::RefCell;

pub struct Scratch {
    buffer: RefCell<Vec<f64>>,
}
