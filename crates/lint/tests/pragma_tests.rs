//! Suppression-pragma semantics: coverage, justification policy, and
//! malformed-pragma handling.

use dta_lint::lexer::lex;
use dta_lint::pragma::{collect, Pragma};

fn pragmas(src: &str) -> Vec<Pragma> {
    collect(&lex(src))
}

#[test]
fn trailing_pragma_covers_its_own_line_only() {
    let src = "let x = c.load(Ordering::Relaxed); // dta-lint: allow(R6): counter never orders other memory\nlet y = 1;";
    let ps = pragmas(src);
    assert_eq!(ps.len(), 1);
    let p = &ps[0];
    assert_eq!(p.error, None, "{:?}", p.error);
    assert_eq!(p.rules, vec!["R6"]);
    assert_eq!(p.covers, (1, 1));
    assert!(p.suppresses("R6", 1));
    assert!(!p.suppresses("R6", 2));
    assert!(!p.suppresses("R5", 1), "only the named rule is allowed");
}

#[test]
fn standalone_pragma_covers_through_next_code_line() {
    let src = "\
fn f() {
    // dta-lint: allow(R6): the justification continues onto a
    // second comment line before the code it covers.
    c.load(Ordering::Relaxed);
}";
    let ps = pragmas(src);
    assert_eq!(ps.len(), 1);
    let p = &ps[0];
    assert_eq!(p.error, None, "{:?}", p.error);
    assert_eq!(p.covers, (2, 4), "covers from the pragma through the next code line");
    assert!(p.suppresses("R6", 4));
    assert!(!p.suppresses("R6", 5));
}

#[test]
fn missing_justification_is_an_error_and_suppresses_nothing() {
    let ps = pragmas("// dta-lint: allow(R6)\nx();");
    assert_eq!(ps.len(), 1);
    assert!(ps[0].error.is_some());
    assert!(!ps[0].suppresses("R6", 2));
}

#[test]
fn rubber_stamp_justification_is_rejected() {
    let ps = pragmas("// dta-lint: allow(R6): ok\nx();");
    assert_eq!(ps.len(), 1);
    let err = ps[0].error.as_deref().expect("short justification rejected");
    assert!(err.contains("too short"), "{err}");
    assert!(!ps[0].suppresses("R6", 2));
}

#[test]
fn unknown_directive_is_an_error() {
    let ps = pragmas("// dta-lint: deny(R6): no such directive in this linter\nx();");
    assert_eq!(ps.len(), 1);
    let err = ps[0].error.as_deref().expect("unknown directive rejected");
    assert!(err.contains("unknown"), "{err}");
}

#[test]
fn empty_rule_list_is_an_error() {
    let ps = pragmas("// dta-lint: allow(): a justification that is long enough\nx();");
    assert_eq!(ps.len(), 1);
    assert!(ps[0].error.is_some());
}

#[test]
fn multiple_rules_in_one_pragma() {
    let ps = pragmas("// dta-lint: allow(R5, R6): both are sound here for reasons.\nx();");
    assert_eq!(ps.len(), 1);
    assert_eq!(ps[0].error, None, "{:?}", ps[0].error);
    assert_eq!(ps[0].rules, vec!["R5", "R6"]);
    assert!(ps[0].suppresses("R5", 2));
    assert!(ps[0].suppresses("R6", 2));
}

#[test]
fn prose_mentioning_the_marker_is_not_a_pragma() {
    // doc comments *about* pragmas must not parse as pragmas
    let ps = pragmas("/// Write a `dta-lint: allow(R6)` comment to suppress.\nx();");
    assert!(ps.is_empty(), "{ps:?}");
}

#[test]
fn block_comment_pragma_works() {
    let ps = pragmas("/* dta-lint: allow(R3): cell is private to one thread here */\ncell();");
    assert_eq!(ps.len(), 1);
    assert_eq!(ps[0].error, None, "{:?}", ps[0].error);
    assert_eq!(ps[0].rules, vec!["R3"]);
    assert!(ps[0].suppresses("R3", 2));
}

#[test]
fn pragma_position_is_recorded() {
    let ps = pragmas("    // dta-lint: allow(R6): positioned pragma with a reason\nx();");
    assert_eq!(ps.len(), 1);
    assert_eq!((ps[0].line, ps[0].col), (1, 5));
}
