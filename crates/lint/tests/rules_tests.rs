//! Rule-engine tests: one fixture per rule asserting exact finding
//! positions, scoping, test-module exemption, suppression accounting,
//! the seeded-violation gate, and a self-check over the real tree.

use dta_lint::rules::{check_source, in_scope};
use dta_lint::{lint_source, Finding, LintResult, Severity};

const R1: &str = include_str!("fixtures/fixture_r1.rs");
const R2: &str = include_str!("fixtures/fixture_r2.rs");
const R3: &str = include_str!("fixtures/fixture_r3.rs");
const R4: &str = include_str!("fixtures/fixture_r4.rs");
const R5: &str = include_str!("fixtures/fixture_r5.rs");
const R6: &str = include_str!("fixtures/fixture_r6.rs");
const R7: &str = include_str!("fixtures/fixture_r7.rs");
const R8: &str = include_str!("fixtures/fixture_r8.rs");
const R9: &str = include_str!("fixtures/fixture_r9.rs");
const CLEAN: &str = include_str!("fixtures/fixture_clean.rs");

/// (rule, severity, line, col) projection for position assertions.
fn at(findings: &[Finding]) -> Vec<(&str, Severity, u32, u32)> {
    findings.iter().map(|f| (f.rule, f.severity, f.line, f.col)).collect()
}

#[test]
fn r1_hash_iteration_exact_positions() {
    let found = lint_source("crates/core/src/fixture_r1.rs", R1);
    assert_eq!(
        at(&found),
        vec![
            ("R1", Severity::Error, 7, 32),  // costs.iter()
            ("R1", Severity::Error, 14, 15), // for id in pool {
        ],
        "{found:#?}"
    );
}

#[test]
fn r2_raw_cost_compare_exact_positions() {
    // R2 is file-scoped: the fixture is linted under the greedy.rs name
    let found = lint_source("crates/core/src/greedy.rs", R2);
    assert_eq!(
        at(&found),
        vec![
            ("R2", Severity::Error, 4, 13),  // cost < 100.0
            ("R2", Severity::Error, 7, 12),  // 0.0 > benefit
            ("R2", Severity::Error, 10, 15), // best_cost.min(cost)
        ],
        "{found:#?}"
    );
}

#[test]
fn r3_interior_mutability_exact_positions() {
    let found = lint_source("crates/core/src/fixture_r3.rs", R3);
    assert_eq!(
        at(&found),
        vec![
            ("R3", Severity::Error, 3, 16), // use std::cell::RefCell;
            ("R3", Severity::Error, 6, 13), // buffer: RefCell<…>
        ],
        "{found:#?}"
    );
}

#[test]
fn r4_thread_spawn_exact_position() {
    let found = lint_source("crates/core/src/fixture_r4.rs", R4);
    assert_eq!(at(&found), vec![("R4", Severity::Error, 4, 18)], "{found:#?}");
}

#[test]
fn r5_bare_unwrap_exact_position() {
    let found = lint_source("crates/core/src/fixture_r5.rs", R5);
    assert_eq!(at(&found), vec![("R5", Severity::Warning, 4, 17)], "{found:#?}");
}

#[test]
fn r6_relaxed_ordering_exact_position() {
    let found = lint_source("crates/core/src/fixture_r6.rs", R6);
    assert_eq!(at(&found), vec![("R6", Severity::Warning, 6, 28)], "{found:#?}");
}

#[test]
fn r7_library_panic_exact_positions() {
    let found = lint_source("crates/core/src/fixture_r7.rs", R7);
    assert_eq!(
        at(&found),
        vec![
            ("R7", Severity::Error, 5, 9),   // panic!(…)
            ("R7", Severity::Error, 11, 19), // std::process::exit(2)
            ("R7", Severity::Error, 15, 19), // std::process::abort()
        ],
        "{found:#?}"
    );
}

#[test]
fn r8_library_print_exact_positions() {
    let found = lint_source("crates/core/src/fixture_r8.rs", R8);
    assert_eq!(
        at(&found),
        vec![
            ("R8", Severity::Error, 4, 5), // println!
            ("R8", Severity::Error, 5, 5), // eprintln!
            ("R8", Severity::Error, 6, 5), // dbg!
        ],
        "{found:#?}"
    );
}

#[test]
fn r9_wall_clock_exact_positions() {
    let found = lint_source("crates/core/src/fixture_r9.rs", R9);
    assert_eq!(
        at(&found),
        vec![
            ("R9", Severity::Error, 3, 16), // use std::time::Instant;
            ("R9", Severity::Error, 6, 19), // Instant::now()
            ("R9", Severity::Error, 7, 24), // SystemTime::now()
        ],
        "{found:#?}"
    );
}

#[test]
fn justified_pragma_suppresses_and_is_counted() {
    let (findings, suppressed) = check_source("crates/core/src/fixture_clean.rs", CLEAN);
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn unjustified_pragma_is_p0_and_the_original_finding_survives() {
    let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
pub fn read(c: &AtomicUsize) -> usize {
    // dta-lint: allow(R6)
    c.load(Ordering::Relaxed)
}
";
    let (findings, suppressed) = check_source("crates/core/src/x.rs", src);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["P0", "R6"], "{findings:#?}");
    assert_eq!(suppressed, 0);
    assert_eq!(findings[0].severity, Severity::Error);
}

#[test]
fn pragma_for_the_wrong_rule_suppresses_nothing() {
    let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
pub fn read(c: &AtomicUsize) -> usize {
    // dta-lint: allow(R5): suppressing the wrong rule on purpose.
    c.load(Ordering::Relaxed)
}
";
    let (findings, suppressed) = check_source("crates/core/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "R6");
    assert_eq!(suppressed, 0);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let src = "\
pub fn lib(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
";
    let found = lint_source("crates/core/src/x.rs", src);
    // only the library unwrap on line 2 fires; the test-mod one is exempt
    assert_eq!(at(&found), vec![("R5", Severity::Warning, 2, 7)], "{found:#?}");
}

#[test]
fn cfg_not_test_modules_are_not_exempt() {
    let src = "\
#[cfg(not(test))]
mod imp {
    fn f(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
";
    let found = lint_source("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1, "{found:#?}");
    assert_eq!(found[0].rule, "R5");
}

#[test]
fn rules_scope_by_crate_and_file() {
    // R1 only fires in recommendation-producing crates
    assert!(lint_source("crates/workload/src/x.rs", R1).is_empty());
    // R2 only fires in greedy.rs / enumeration.rs
    assert!(lint_source("crates/core/src/cost.rs", R2).is_empty());
    // R4's sanctioned modules may mention thread::spawn
    assert!(lint_source("crates/core/src/greedy.rs", R4).is_empty());
    // …but the same code elsewhere in the workspace may not
    assert!(!lint_source("crates/sql/src/lex.rs", R4).is_empty());
    // R7 only guards the tune()-reachable crates (core/server/stats)
    assert!(lint_source("crates/sql/src/lex.rs", R7).is_empty());
    assert!(!lint_source("crates/server/src/seeded.rs", R7).is_empty());
    // R8 guards the library layers; CLI-facing crates may print
    assert!(lint_source("crates/bench/src/x.rs", R8).is_empty());
    assert!(!lint_source("crates/catalog/src/seeded.rs", R8).is_empty());
    // R9 is core-only, and the observer module itself is sanctioned
    assert!(lint_source("crates/server/src/seeded.rs", R9).is_empty());
    assert!(lint_source("crates/core/src/obs.rs", R9).is_empty());
    assert!(!lint_source("crates/core/src/seeded.rs", R9).is_empty());
}

#[test]
fn non_library_paths_are_out_of_scope() {
    assert!(in_scope("crates/core/src/cost.rs"));
    assert!(!in_scope("crates/core/tests/integration.rs"));
    assert!(!in_scope("crates/core/benches/bench.rs"));
    assert!(!in_scope("crates/lint/tests/fixtures/fixture_r5.rs"));
    assert!(!in_scope("crates/core/src/data.txt"));
    assert!(!in_scope("crates/core/.hidden/x.rs"));
}

/// The acceptance gate: seeding any R1–R9 violation into a core path
/// must make `dta-lint --deny-warnings` fail (non-zero exit). Exit
/// status is `LintResult::fails` — the binary maps it 1:1.
#[test]
fn any_seeded_violation_fails_the_gate() {
    let seeded: &[(&str, &str, &str)] = &[
        ("R1", "crates/core/src/seeded.rs", R1),
        ("R2", "crates/core/src/greedy.rs", R2),
        ("R3", "crates/core/src/seeded.rs", R3),
        ("R4", "crates/core/src/seeded.rs", R4),
        ("R7", "crates/core/src/seeded.rs", R7),
        ("R8", "crates/core/src/seeded.rs", R8),
        ("R9", "crates/core/src/seeded.rs", R9),
        ("R5", "crates/core/src/seeded.rs", R5),
        ("R6", "crates/core/src/seeded.rs", R6),
    ];
    for (rule, path, src) in seeded {
        let findings = lint_source(path, src);
        assert!(
            findings.iter().any(|f| &f.rule == rule),
            "fixture for {rule} produced {findings:#?}"
        );
        let result = LintResult { findings, suppressed: 0, files: 1 };
        assert!(result.fails(true), "{rule} violation must fail --deny-warnings");
    }
    // the hard-error rules fail even without --deny-warnings
    for (rule, path, src) in &seeded[..7] {
        let result = LintResult { findings: lint_source(path, src), suppressed: 0, files: 1 };
        assert!(result.fails(false), "{rule} violation must fail unconditionally");
    }
}

/// Self-check: the workspace's own crates lint clean under the same
/// flags CI uses. This is the in-repo proof behind the CI gate.
#[test]
fn workspace_tree_is_clean_under_deny_warnings() {
    let root = std::fs::canonicalize(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .expect("workspace root resolves");
    let result = dta_lint::lint_paths(&[root.join("crates")]).expect("lint run succeeds");
    assert!(result.files > 50, "walked only {} files", result.files);
    assert!(result.suppressed > 0, "the workspace's own pragmas should be exercised");
    assert!(
        !result.fails(true),
        "workspace must lint clean under --deny-warnings: {:#?}",
        result.findings
    );
}

#[test]
fn json_report_includes_findings_and_rules() {
    let findings = lint_source("crates/core/src/fixture_r5.rs", R5);
    let result = LintResult { findings, suppressed: 0, files: 1 };
    let json = dta_lint::report::json(&result);
    assert!(json.contains("\"findings\""), "{json}");
    assert!(json.contains("\"R5\""), "{json}");
    assert!(json.contains("fixture_r5.rs"), "{json}");
    // the rule table rides along for report consumers
    for spec in dta_lint::rules::RULES {
        assert!(json.contains(spec.id), "missing {} in {json}", spec.id);
    }
}
