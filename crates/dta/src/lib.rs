//! # dta — Database Tuning Advisor, reproduced in Rust
//!
//! A from-scratch reproduction of *"Database Tuning Advisor for Microsoft
//! SQL Server 2005"* (Agrawal, Chaudhuri, Kollar, Marathe, Narasayya,
//! Syamala — VLDB 2004): an automated physical database design tool that
//! gives **integrated recommendations for indexes, materialized views and
//! range partitioning**, supports **manageability (alignment) constraints**
//! and **user-specified partial configurations**, and scales via
//! **workload compression**, **reduced statistics creation**, and
//! **production/test-server tuning**.
//!
//! This facade re-exports the whole system:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sql`] | `dta-sql` | SQL dialect: parser, AST, signatures |
//! | [`catalog`] | `dta-catalog` | schema metadata, metadata scripting |
//! | [`storage`] | `dta-storage` | columnar store, page model, work meter |
//! | [`stats`] | `dta-stats` | histograms, densities, reduced statistics creation |
//! | [`physical`] | `dta-physical` | indexes, views, partitioning, configurations |
//! | [`optimizer`] | `dta-optimizer` | cost-based what-if optimizer |
//! | [`engine`] | `dta-engine` | plan executor with actual-work metering |
//! | [`server`] | `dta-server` | server facade, production/test tuning |
//! | [`workload`] | `dta-workload` | workloads, compression, benchmark generators |
//! | [`advisor`] | `dta-core` | the tuning advisor itself |
//! | [`xml`] | `dta-xml` | the public XML schema |
//! | [`baselines`] | `dta-baselines` | ITW and staged-tuning baselines |
//!
//! # Quickstart
//!
//! ```
//! use dta::prelude::*;
//!
//! // 1. a server with a table and some data
//! let mut server = Server::new("prod");
//! let mut db = Database::new("shop");
//! db.add_table(
//!     Table::new("item", vec![
//!         Column::new("id", ColumnType::BigInt),
//!         Column::new("cat", ColumnType::Int),
//!         Column::new("price", ColumnType::Float),
//!     ]).with_primary_key(&["id"]),
//! ).unwrap();
//! server.create_database(db).unwrap();
//! let data = server.table_data_mut("shop", "item").unwrap();
//! for i in 0..20_000i64 {
//!     data.push_row(vec![Value::Int(i), Value::Int(i % 100), Value::Float(i as f64)]);
//! }
//!
//! // 2. a workload
//! let workload = Workload::from_sql_file(
//!     "shop",
//!     "SELECT price FROM item WHERE cat = 7;
//!      SELECT cat, COUNT(*) FROM item GROUP BY cat;",
//! ).unwrap();
//!
//! // 3. tune
//! let target = TuningTarget::Single(&server);
//! let result = tune(&target, &workload, &TuningOptions::default()).unwrap();
//! assert!(result.expected_improvement() > 0.0);
//! println!("{result}");
//! ```

pub use dta_baselines as baselines;
pub use dta_catalog as catalog;
pub use dta_core as advisor;
pub use dta_engine as engine;
pub use dta_optimizer as optimizer;
pub use dta_physical as physical;
pub use dta_server as server;
pub use dta_sql as sql;
pub use dta_stats as stats;
pub use dta_storage as storage;
pub use dta_workload as workload;
pub use dta_xml as xml;

/// Everything most users need, in one import.
pub mod prelude {
    pub use dta_catalog::{Catalog, Column, ColumnType, Database, Table, Value};
    pub use dta_core::{
        evaluate_configuration, tune, tune_resume, tune_with_control, tune_with_observer,
        workload_cost, AlignmentMode, CancelHandle, Completion, Counter, CounterSet, FeatureSet,
        NoopObserver, ObserverSummary, RecordingObserver, SessionCheckpoint, SessionControl,
        SessionObserver, Stage, TuningOptions, TuningResult,
    };
    pub use dta_engine::{Engine, QueryResult};
    pub use dta_optimizer::{HardwareParams, WhatIfOptimizer};
    pub use dta_physical::{
        Configuration, Index, IndexKind, MaterializedView, PhysicalStructure, QualifiedColumn,
        RangePartitioning,
    };
    pub use dta_server::{prepare_test_server, Server, TuningTarget};
    pub use dta_sql::{parse_script, parse_statement, Statement};
    pub use dta_workload::{compress, CompressionOptions, Workload, WorkloadItem};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // touching a symbol from each re-export keeps the facade honest
        let _ = crate::prelude::TuningOptions::default();
        let _ = crate::sql::parse_statement("SELECT a FROM t");
        let _ = crate::physical::Configuration::new();
        let _ = crate::storage::PAGE_SIZE;
        let _ = crate::stats::DEFAULT_SAMPLE_FRACTION;
    }
}
