//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so this provides the small
//! API surface the benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`] — as a
//! plain wall-clock harness: per sample the closure runs once, and
//! median / min / max over the samples are printed. No statistics
//! beyond that; the point is comparable relative timings, which is all
//! the perf trajectory tracks.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _c: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Close the group (printing already happened per bench).
    pub fn finish(self) {}
}

/// Passed to the measured closure; [`Bencher::iter`] times its argument.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Measure `f`, recording one sample per configured iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up run, unmeasured
        black_box(f());
        for _ in 0..self.per_sample {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), per_sample: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("noop", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        // 1 warm-up + 2 samples
        assert_eq!(runs, 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
