//! The typed schema layer: DTA inputs and outputs as XML.

use crate::xml::{parse_document, XmlError, XmlNode, XmlWriter};
use dta_catalog::Value;
use dta_core::candidates::ItemSelection;
use dta_core::cost::CacheExport;
use dta_core::enumeration::EnumerationResume;
use dta_core::greedy::{GreedyCursor, GreedySnapshot};
use dta_core::{
    AlignmentMode, Completion, FeatureSet, SessionCheckpoint, Stage, StatsProgress, TuningOptions,
    TuningResult,
};
use dta_physical::{
    Configuration, Index, IndexKind, JoinPair, MaterializedView, PhysicalStructure,
    QualifiedColumn, RangePartitioning, ViewAggregate,
};
use dta_sql::AggFunc;
use dta_workload::{Workload, WorkloadItem};

/// Schema-level errors (syntax or semantic).
#[derive(Debug)]
pub enum SchemaError {
    Xml(XmlError),
    Invalid(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Xml(e) => write!(f, "{e}"),
            SchemaError::Invalid(m) => write!(f, "invalid document: {m}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<XmlError> for SchemaError {
    fn from(e: XmlError) -> Self {
        SchemaError::Xml(e)
    }
}

fn invalid(m: impl Into<String>) -> SchemaError {
    SchemaError::Invalid(m.into())
}

// ---- bit-exact floats -------------------------------------------------------
//
// Checkpoints must round-trip costs *byte*-exactly — a resumed session's
// recommendation is compared bit-for-bit against the uninterrupted run's.
// Costs are therefore serialized as the hex IEEE-754 bit pattern, not as
// a decimal rendering.

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_bits(node: &XmlNode, attr: &str) -> Result<f64, SchemaError> {
    let raw = node.require_attr(attr)?;
    u64::from_str_radix(raw, 16)
        .map(f64::from_bits)
        .map_err(|_| invalid(format!("bad float bits '{raw}' in '{attr}'")))
}

fn parse_num<T: std::str::FromStr>(node: &XmlNode, attr: &str) -> Result<T, SchemaError> {
    node.require_attr(attr)?
        .parse()
        .map_err(|_| invalid(format!("bad number in '{attr}' of <{}>", node.name)))
}

// ---- values ---------------------------------------------------------------

fn write_value(w: &mut XmlWriter, element: &str, v: &Value) {
    let (ty, text) = match v {
        Value::Null => ("null", String::new()),
        Value::Int(i) => ("int", i.to_string()),
        Value::Float(f) => ("float", f.to_string()),
        Value::Str(s) => ("str", s.clone()),
    };
    w.text_element(element, &[("type", ty)], &text);
}

fn read_value(node: &XmlNode) -> Result<Value, SchemaError> {
    match node.require_attr("type")? {
        "null" => Ok(Value::Null),
        "int" => node
            .text
            .parse()
            .map(Value::Int)
            .map_err(|_| invalid(format!("bad int '{}'", node.text))),
        "float" => node
            .text
            .parse()
            .map(Value::Float)
            .map_err(|_| invalid(format!("bad float '{}'", node.text))),
        "str" => Ok(Value::Str(node.text.clone())),
        other => Err(invalid(format!("unknown value type '{other}'"))),
    }
}

// ---- partitioning -----------------------------------------------------------

fn write_partitioning(w: &mut XmlWriter, p: &RangePartitioning) {
    w.open_with("Partitioning", &[("column", &p.column)]);
    for b in &p.boundaries {
        write_value(w, "Boundary", b);
    }
    w.close();
}

fn read_partitioning(node: &XmlNode) -> Result<RangePartitioning, SchemaError> {
    let column = node.require_attr("column")?;
    let mut boundaries = Vec::new();
    for b in node.children_named("Boundary") {
        boundaries.push(read_value(b)?);
    }
    Ok(RangePartitioning::new(column, boundaries))
}

// ---- configuration ---------------------------------------------------------

fn qualified(attr: &str) -> Result<QualifiedColumn, SchemaError> {
    let (t, c) = attr
        .split_once('.')
        .ok_or_else(|| invalid(format!("expected table.column, got '{attr}'")))?;
    Ok(QualifiedColumn::new(t, c))
}

fn write_structure(w: &mut XmlWriter, s: &PhysicalStructure) {
    match s {
        PhysicalStructure::Index(ix) => {
            let kind = match ix.kind {
                IndexKind::Clustered => "clustered",
                IndexKind::NonClustered => "nonclustered",
            };
            let keys = ix.key_columns.join(",");
            let includes = ix.included_columns.join(",");
            let mut attrs = vec![
                ("database", ix.database.as_str()),
                ("table", ix.table.as_str()),
                ("kind", kind),
                ("keys", keys.as_str()),
            ];
            if !includes.is_empty() {
                attrs.push(("includes", includes.as_str()));
            }
            if ix.enforces_constraint {
                attrs.push(("constraint", "true"));
            }
            if let Some(p) = &ix.partitioning {
                w.open_with("Index", &attrs);
                write_partitioning(w, p);
                w.close();
            } else {
                w.leaf("Index", &attrs);
            }
        }
        PhysicalStructure::View(v) => {
            let tables = v.tables.join(",");
            w.open_with(
                "MaterializedView",
                &[("database", v.database.as_str()), ("tables", tables.as_str())],
            );
            for jp in &v.join_pairs {
                w.leaf(
                    "Join",
                    &[("left", &format!("{}", jp.left)), ("right", &format!("{}", jp.right))],
                );
            }
            for g in &v.group_by {
                w.leaf("GroupBy", &[("column", &format!("{g}"))]);
            }
            for p in &v.projected {
                w.leaf("Project", &[("column", &format!("{p}"))]);
            }
            for a in &v.aggregates {
                let mut attrs = vec![("func", a.func.name())];
                if let Some(text) = &a.arg {
                    attrs.push(("arg", text.as_str()));
                }
                if a.arg_columns.is_empty() {
                    w.leaf("Aggregate", &attrs);
                } else {
                    w.open_with("Aggregate", &attrs);
                    for qc in &a.arg_columns {
                        w.leaf("ArgColumn", &[("column", &format!("{qc}"))]);
                    }
                    w.close();
                }
            }
            if let Some(p) = &v.partitioning {
                write_partitioning(w, p);
            }
            w.close();
        }
        PhysicalStructure::TablePartitioning { database, table, scheme } => {
            w.open_with(
                "TablePartitioning",
                &[("database", database.as_str()), ("table", table.as_str())],
            );
            write_partitioning(w, scheme);
            w.close();
        }
    }
}

fn read_structure(node: &XmlNode) -> Result<PhysicalStructure, SchemaError> {
    match node.name.as_str() {
        "Index" => {
            let database = node.require_attr("database")?;
            let table = node.require_attr("table")?;
            let kind = match node.require_attr("kind")? {
                "clustered" => IndexKind::Clustered,
                "nonclustered" => IndexKind::NonClustered,
                other => return Err(invalid(format!("unknown index kind '{other}'"))),
            };
            let keys: Vec<&str> =
                node.require_attr("keys")?.split(',').filter(|s| !s.is_empty()).collect();
            let includes: Vec<&str> = node
                .attr("includes")
                .map(|s| s.split(',').filter(|s| !s.is_empty()).collect())
                .unwrap_or_default();
            let mut ix = match kind {
                IndexKind::Clustered => Index::clustered(database, table, &keys),
                IndexKind::NonClustered => Index::non_clustered(database, table, &keys, &includes),
            };
            if node.attr("constraint") == Some("true") {
                ix = ix.constraint();
            }
            if let Some(p) = node.child("Partitioning") {
                ix = ix.partitioned(read_partitioning(p)?);
            }
            if !ix.is_well_formed() {
                return Err(invalid(format!("malformed index '{}'", ix.name())));
            }
            Ok(PhysicalStructure::Index(ix))
        }
        "MaterializedView" => {
            let database = node.require_attr("database")?;
            let tables: Vec<&str> = node.require_attr("tables")?.split(',').collect();
            let mut join_pairs = Vec::new();
            for j in node.children_named("Join") {
                join_pairs.push(JoinPair::new(
                    qualified(j.require_attr("left")?)?,
                    qualified(j.require_attr("right")?)?,
                ));
            }
            let mut group_by = Vec::new();
            for g in node.children_named("GroupBy") {
                group_by.push(qualified(g.require_attr("column")?)?);
            }
            let mut projected = Vec::new();
            for p in node.children_named("Project") {
                projected.push(qualified(p.require_attr("column")?)?);
            }
            let mut aggregates = Vec::new();
            for a in node.children_named("Aggregate") {
                let func = AggFunc::from_name(&a.require_attr("func")?.to_ascii_lowercase())
                    .ok_or_else(|| invalid("unknown aggregate function"))?;
                let arg = a.attr("arg").map(str::to_string);
                let mut arg_columns = Vec::new();
                for c in a.children_named("ArgColumn") {
                    arg_columns.push(qualified(c.require_attr("column")?)?);
                }
                aggregates.push(ViewAggregate { func, arg, arg_columns });
            }
            let mut view = if group_by.is_empty() && aggregates.is_empty() {
                MaterializedView::join_view(database, &tables, join_pairs, projected)
            } else {
                MaterializedView::grouped(database, &tables, join_pairs, group_by, aggregates)
            };
            if let Some(p) = node.child("Partitioning") {
                view = view.partitioned(read_partitioning(p)?);
            }
            if !view.is_well_formed() {
                return Err(invalid(format!("malformed view '{}'", view.name())));
            }
            Ok(PhysicalStructure::View(view))
        }
        "TablePartitioning" => {
            let scheme = read_partitioning(
                node.child("Partitioning")
                    .ok_or_else(|| invalid("TablePartitioning without Partitioning child"))?,
            )?;
            Ok(PhysicalStructure::TablePartitioning {
                database: node.require_attr("database")?.to_string(),
                table: node.require_attr("table")?.to_string(),
                scheme,
            })
        }
        other => Err(invalid(format!("unknown structure element <{other}>"))),
    }
}

fn write_configuration_into(w: &mut XmlWriter, config: &Configuration) {
    w.open("Configuration");
    for s in config.iter() {
        write_structure(w, s);
    }
    w.close();
}

/// Serialize a configuration.
pub fn configuration_to_xml(config: &Configuration) -> String {
    let mut w = XmlWriter::new();
    write_configuration_into(&mut w, config);
    w.finish()
}

fn configuration_from_node(node: &XmlNode) -> Result<Configuration, SchemaError> {
    if node.name != "Configuration" {
        return Err(invalid(format!("expected <Configuration>, got <{}>", node.name)));
    }
    let mut config = Configuration::new();
    for child in &node.children {
        config.add(read_structure(child)?);
    }
    Ok(config)
}

/// Parse a configuration document.
pub fn configuration_from_xml(text: &str) -> Result<Configuration, SchemaError> {
    configuration_from_node(&parse_document(text)?)
}

// ---- workload -----------------------------------------------------------

fn write_workload_into(w: &mut XmlWriter, workload: &Workload) {
    w.open("Workload");
    for item in &workload.items {
        let weight = item.weight.to_string();
        w.text_element(
            "Statement",
            &[("database", item.database.as_str()), ("weight", weight.as_str())],
            &item.statement.to_string(),
        );
    }
    w.close();
}

/// Serialize a workload.
pub fn workload_to_xml(workload: &Workload) -> String {
    let mut w = XmlWriter::new();
    write_workload_into(&mut w, workload);
    w.finish()
}

fn workload_from_node(root: &XmlNode) -> Result<Workload, SchemaError> {
    if root.name != "Workload" {
        return Err(invalid("expected <Workload> root"));
    }
    let mut items = Vec::new();
    for s in root.children_named("Statement") {
        let database = s.require_attr("database")?;
        let weight: f64 =
            s.attr("weight").unwrap_or("1").parse().map_err(|_| invalid("bad weight"))?;
        let stmt = dta_sql::parse_statement(&s.text)
            .map_err(|e| invalid(format!("statement does not parse: {e}")))?;
        items.push(WorkloadItem::weighted(database, stmt, weight));
    }
    Ok(Workload::from_items(items))
}

/// Parse a workload document.
pub fn workload_from_xml(text: &str) -> Result<Workload, SchemaError> {
    workload_from_node(&parse_document(text)?)
}

// ---- options -----------------------------------------------------------

/// Write tuning options with full fidelity: a checkpoint embeds this
/// document, and a resumed session must see byte-identical knobs.
/// (Rust's float `Display` is shortest-round-trip, so the decimal knobs
/// parse back to the exact same value.)
fn write_options_into(w: &mut XmlWriter, options: &TuningOptions) {
    let mut features = Vec::new();
    if options.features.indexes {
        features.push("indexes");
    }
    if options.features.views {
        features.push("views");
    }
    if options.features.partitioning {
        features.push("partitioning");
    }
    let features = features.join(",");
    let alignment = match options.alignment {
        AlignmentMode::None => "none",
        AlignmentMode::Lazy => "lazy",
        AlignmentMode::Eager => "eager",
    };
    let colgroup = options.colgroup_cost_threshold.to_string();
    let greedy_m = options.greedy_m.to_string();
    let greedy_k = options.greedy_k.to_string();
    let max_cand = options.max_candidates_per_query.to_string();
    let workers = options.parallel_workers.to_string();
    let keep_whole = options.compression.keep_whole_below.to_string();
    let rep_exp = options.compression.rep_exponent.to_string();
    let rep_scale = options.compression.rep_scale.to_string();
    let storage;
    let budget;
    let mut attrs: Vec<(&str, &str)> = vec![
        ("features", features.as_str()),
        ("alignment", alignment),
        ("compress", if options.compress { "true" } else { "false" }),
        ("reduceStatistics", if options.reduce_statistics { "true" } else { "false" }),
        ("colgroupThreshold", colgroup.as_str()),
        ("greedyM", greedy_m.as_str()),
        ("greedyK", greedy_k.as_str()),
        ("maxCandidatesPerQuery", max_cand.as_str()),
        ("parallelWorkers", workers.as_str()),
        ("keepWholeBelow", keep_whole.as_str()),
        ("repExponent", rep_exp.as_str()),
        ("repScale", rep_scale.as_str()),
    ];
    if let Some(b) = options.storage_bytes {
        storage = b.to_string();
        attrs.push(("storageBytes", storage.as_str()));
    }
    if let Some(t) = options.work_budget_units {
        budget = t.to_string();
        attrs.push(("workBudget", budget.as_str()));
    }
    w.open_with("TuningOptions", &attrs);
    if let Some(user) = &options.user_specified {
        w.open("UserSpecified");
        write_configuration_into(w, user);
        w.close();
    }
    w.close();
}

/// Serialize tuning options (the DTA input document).
pub fn options_to_xml(options: &TuningOptions) -> String {
    let mut w = XmlWriter::new();
    write_options_into(&mut w, options);
    w.finish()
}

fn options_from_node(root: &XmlNode) -> Result<TuningOptions, SchemaError> {
    if root.name != "TuningOptions" {
        return Err(invalid("expected <TuningOptions> root"));
    }
    let mut options = TuningOptions::default();
    if let Some(f) = root.attr("features") {
        let set: Vec<&str> = f.split(',').collect();
        options.features = FeatureSet {
            indexes: set.contains(&"indexes"),
            views: set.contains(&"views"),
            partitioning: set.contains(&"partitioning"),
        };
    }
    match root.attr("alignment") {
        Some("lazy") => options.alignment = AlignmentMode::Lazy,
        Some("eager") => options.alignment = AlignmentMode::Eager,
        _ => options.alignment = AlignmentMode::None,
    }
    if let Some(c) = root.attr("compress") {
        options.compress = c == "true";
    }
    if let Some(r) = root.attr("reduceStatistics") {
        options.reduce_statistics = r == "true";
    }
    if let Some(s) = root.attr("storageBytes") {
        options.storage_bytes = Some(s.parse().map_err(|_| invalid("bad storageBytes"))?);
    }
    if let Some(t) = root.attr("workBudget") {
        options.work_budget_units = Some(t.parse().map_err(|_| invalid("bad workBudget"))?);
    }
    if root.attr("colgroupThreshold").is_some() {
        options.colgroup_cost_threshold = parse_num(root, "colgroupThreshold")?;
    }
    if root.attr("greedyM").is_some() {
        options.greedy_m = parse_num(root, "greedyM")?;
    }
    if root.attr("greedyK").is_some() {
        options.greedy_k = parse_num(root, "greedyK")?;
    }
    if root.attr("maxCandidatesPerQuery").is_some() {
        options.max_candidates_per_query = parse_num(root, "maxCandidatesPerQuery")?;
    }
    if root.attr("parallelWorkers").is_some() {
        options.parallel_workers = parse_num(root, "parallelWorkers")?;
    }
    if root.attr("keepWholeBelow").is_some() {
        options.compression.keep_whole_below = parse_num(root, "keepWholeBelow")?;
    }
    if root.attr("repExponent").is_some() {
        options.compression.rep_exponent = parse_num(root, "repExponent")?;
    }
    if root.attr("repScale").is_some() {
        options.compression.rep_scale = parse_num(root, "repScale")?;
    }
    if let Some(user) = root.child("UserSpecified") {
        let cfg = user
            .child("Configuration")
            .ok_or_else(|| invalid("UserSpecified without Configuration"))?;
        options.user_specified = Some(configuration_from_node(cfg)?);
    }
    Ok(options)
}

/// Parse a tuning-options document. Unspecified knobs take defaults.
pub fn options_from_xml(text: &str) -> Result<TuningOptions, SchemaError> {
    options_from_node(&parse_document(text)?)
}

// ---- result -----------------------------------------------------------

/// Serialize a tuning result (the DTA output document). The embedded
/// `<Configuration>` can be fed back as a user-specified configuration —
/// §6.3's iterative-tuning loop.
pub fn result_to_xml(result: &TuningResult) -> String {
    let mut w = XmlWriter::new();
    w.open("DTAOutput");
    let improvement = format!("{:.4}", result.expected_improvement());
    let base = format!("{:.3}", result.base_cost);
    let rec = format!("{:.3}", result.recommended_cost);
    let statements = result.statements_tuned.to_string();
    let events = result.total_events.to_string();
    let calls = result.whatif_calls.to_string();
    let storage = result.storage_bytes.to_string();
    let completion = match result.completion {
        Completion::Complete => "complete".to_string(),
        Completion::BudgetExhausted { stage } => format!("budgetExhausted:{stage}"),
        Completion::Cancelled { stage } => format!("cancelled:{stage}"),
    };
    w.leaf(
        "Report",
        &[
            ("expectedImprovement", improvement.as_str()),
            ("baseCost", base.as_str()),
            ("recommendedCost", rec.as_str()),
            ("statementsTuned", statements.as_str()),
            ("totalEvents", events.as_str()),
            ("whatifCalls", calls.as_str()),
            ("storageBytes", storage.as_str()),
            ("completion", completion.as_str()),
        ],
    );
    if let Some(obs) = &result.observer {
        write_observer(&mut w, obs);
    }
    w.open("Recommendation");
    write_configuration_into(&mut w, &result.recommendation);
    w.close();
    w.close();
    w.finish()
}

/// Serialize an observer trace: counters and span aggregates. Wall-time
/// attributes are report-only; every other attribute is deterministic
/// across reruns and worker counts.
fn write_observer(w: &mut XmlWriter, obs: &dta_core::ObserverSummary) {
    let dropped = obs.dropped_events.to_string();
    w.open_with("Observer", &[("droppedEvents", dropped.as_str())]);
    for (name, value) in &obs.counters {
        let value = value.to_string();
        w.leaf("Counter", &[("name", name.as_str()), ("value", value.as_str())]);
    }
    for span in &obs.spans {
        let enters = span.enters.to_string();
        let wall = span.wall_nanos.to_string();
        let calls = span.whatif_calls.to_string();
        let work = span.work_units.to_string();
        w.leaf(
            "Span",
            &[
                ("path", span.path.as_str()),
                ("enters", enters.as_str()),
                ("wallNanos", wall.as_str()),
                ("whatifCalls", calls.as_str()),
                ("workUnits", work.as_str()),
            ],
        );
    }
    w.close();
}

/// Serialize an exploratory-analysis evaluation (§6.3) with the
/// per-statement what-if call / retry / degradation telemetry, so a
/// `FaultPolicy` run's report shows which statements rode out faults.
pub fn evaluation_to_xml(report: &dta_core::EvaluationReport) -> String {
    let mut w = XmlWriter::new();
    let current = format!("{:.3}", report.current_total);
    let proposed = format!("{:.3}", report.proposed_total);
    let change = format!("{:.4}", report.change_percent());
    w.open_with(
        "DTAEvaluation",
        &[
            ("currentCost", current.as_str()),
            ("proposedCost", proposed.as_str()),
            ("changePercent", change.as_str()),
        ],
    );
    for s in &report.statements {
        let weight = s.weight.to_string();
        let cur = format!("{:.3}", s.current_cost);
        let prop = format!("{:.3}", s.proposed_cost);
        let calls = s.whatif_calls.to_string();
        let retries = s.retries.to_string();
        let degraded = if s.degraded { "true" } else { "false" };
        w.open_with(
            "Statement",
            &[
                ("database", s.database.as_str()),
                ("weight", weight.as_str()),
                ("currentCost", cur.as_str()),
                ("proposedCost", prop.as_str()),
                ("whatifCalls", calls.as_str()),
                ("retries", retries.as_str()),
                ("degraded", degraded),
            ],
        );
        w.text_element("Sql", &[], &s.sql);
        for name in &s.used_structures {
            w.text_element("Uses", &[], name);
        }
        w.close();
    }
    w.close();
    w.finish()
}

/// Extract the recommended configuration from an output document.
pub fn recommendation_from_output(text: &str) -> Result<Configuration, SchemaError> {
    let root = parse_document(text)?;
    if root.name != "DTAOutput" {
        return Err(invalid("expected <DTAOutput> root"));
    }
    let rec = root
        .child("Recommendation")
        .and_then(|r| r.child("Configuration"))
        .ok_or_else(|| invalid("missing Recommendation/Configuration"))?;
    configuration_from_node(rec)
}

// ---- checkpoint -----------------------------------------------------------
//
// A budget-exhausted session's frozen state (DESIGN.md §9). Everything
// cost-valued goes through the bit-pattern helpers so a checkpoint that
// crosses a process boundary resumes to the byte-identical answer.

fn write_selection(w: &mut XmlWriter, sel: &ItemSelection) {
    let generated = sel.generated.to_string();
    let evaluations = sel.evaluations.to_string();
    let benefit = bits(sel.benefit);
    w.open_with(
        "Selection",
        &[
            ("generated", generated.as_str()),
            ("evaluations", evaluations.as_str()),
            ("benefitBits", benefit.as_str()),
        ],
    );
    for s in &sel.chosen {
        write_structure(w, s);
    }
    w.close();
}

fn read_selection(node: &XmlNode) -> Result<ItemSelection, SchemaError> {
    let mut chosen = Vec::new();
    for c in &node.children {
        chosen.push(read_structure(c)?);
    }
    Ok(ItemSelection {
        generated: parse_num(node, "generated")?,
        evaluations: parse_num(node, "evaluations")?,
        chosen,
        benefit: parse_bits(node, "benefitBits")?,
    })
}

fn write_enumeration(w: &mut XmlWriter, resume: &EnumerationResume) {
    let lazy = resume.lazy_variants.to_string();
    let best_cost = bits(resume.snapshot.best_cost);
    let evaluations = resume.snapshot.evaluations.to_string();
    let (phase, next, round_best) = match resume.snapshot.cursor {
        GreedyCursor::Phase1 { next, round_best } => ("phase1", next, round_best),
        GreedyCursor::Phase2 { next, round_best } => ("phase2", next, round_best),
    };
    let next = next.to_string();
    let mut attrs: Vec<(&str, &str)> = vec![
        ("lazyVariants", lazy.as_str()),
        ("bestCostBits", best_cost.as_str()),
        ("evaluations", evaluations.as_str()),
        ("phase", phase),
        ("next", next.as_str()),
    ];
    let pos;
    let cost;
    if let Some((p, c)) = round_best {
        pos = p.to_string();
        cost = bits(c);
        attrs.push(("roundBestPos", pos.as_str()));
        attrs.push(("roundBestCostBits", cost.as_str()));
    }
    w.open_with("Enumeration", &attrs);
    for &i in &resume.snapshot.best_set {
        let idx = i.to_string();
        w.leaf("Pick", &[("index", idx.as_str())]);
    }
    w.close();
}

fn read_enumeration(node: &XmlNode) -> Result<EnumerationResume, SchemaError> {
    let round_best = match node.attr("roundBestPos") {
        Some(_) => Some((parse_num(node, "roundBestPos")?, parse_bits(node, "roundBestCostBits")?)),
        None => None,
    };
    let next = parse_num(node, "next")?;
    let cursor = match node.require_attr("phase")? {
        "phase1" => GreedyCursor::Phase1 { next, round_best },
        "phase2" => GreedyCursor::Phase2 { next, round_best },
        other => return Err(invalid(format!("unknown greedy phase '{other}'"))),
    };
    let mut best_set = Vec::new();
    for p in node.children_named("Pick") {
        best_set.push(parse_num(p, "index")?);
    }
    Ok(EnumerationResume {
        snapshot: GreedySnapshot {
            best_set,
            best_cost: parse_bits(node, "bestCostBits")?,
            evaluations: parse_num(node, "evaluations")?,
            cursor,
        },
        lazy_variants: parse_num(node, "lazyVariants")?,
    })
}

/// Serialize a session checkpoint (`Completion::BudgetExhausted` state)
/// so a later process can continue the session via `tune_resume`.
pub fn checkpoint_to_xml(cp: &SessionCheckpoint) -> String {
    let mut w = XmlWriter::new();
    let consumed = cp.consumed_units.to_string();
    let work = bits(cp.tuning_work_units);
    let statements = cp.total_statements.to_string();
    let events = bits(cp.total_events);
    let calls = cp.whatif_calls.to_string();
    let restarts = cp.worker_restarts.to_string();
    let retries = cp.whatif_retries.to_string();
    let backoff = cp.retry_backoff_units.to_string();
    w.open_with(
        "SessionCheckpoint",
        &[
            ("stage", cp.stage.as_str()),
            ("consumedUnits", consumed.as_str()),
            ("tuningWorkUnitsBits", work.as_str()),
            ("totalStatements", statements.as_str()),
            ("totalEventsBits", events.as_str()),
            ("whatifCalls", calls.as_str()),
            ("workerRestarts", restarts.as_str()),
            ("whatifRetries", retries.as_str()),
            ("retryBackoffUnits", backoff.as_str()),
        ],
    );
    write_options_into(&mut w, &cp.options);
    write_workload_into(&mut w, &cp.workload);
    w.open("PreCosts");
    for &c in &cp.pre_costs {
        let b = bits(c);
        w.leaf("Cost", &[("bits", b.as_str())]);
    }
    w.close();
    if let Some(stats) = &cp.stats {
        let requested = stats.requested.to_string();
        let created = stats.created.to_string();
        let work = bits(stats.work_units);
        let failed = stats.failed.to_string();
        let retries = stats.retries.to_string();
        let backoff = stats.backoff_units.to_string();
        w.leaf(
            "Stats",
            &[
                ("requested", requested.as_str()),
                ("created", created.as_str()),
                ("workUnitsBits", work.as_str()),
                ("failed", failed.as_str()),
                ("retries", retries.as_str()),
                ("backoffUnits", backoff.as_str()),
            ],
        );
    }
    if let Some(sels) = &cp.selections {
        w.open("Selections");
        for sel in sels {
            write_selection(&mut w, sel);
        }
        w.close();
    }
    if let Some(e) = &cp.enumeration {
        write_enumeration(&mut w, e);
    }
    w.open("Cache");
    for e in &cp.cache {
        let item = e.item.to_string();
        let fp = format!("{:016x}", e.fingerprint);
        let cost = bits(e.cost);
        let verify = format!("{:016x}", e.verify);
        w.open_with(
            "Entry",
            &[
                ("item", item.as_str()),
                ("fingerprint", fp.as_str()),
                ("costBits", cost.as_str()),
                ("verify", verify.as_str()),
            ],
        );
        for name in &e.used_structures {
            w.leaf("Use", &[("name", name.as_str())]);
        }
        w.close();
    }
    w.close();
    w.open("Degraded");
    for &d in &cp.degraded {
        let idx = d.to_string();
        w.leaf("Item", &[("index", idx.as_str())]);
    }
    w.close();
    w.close();
    w.finish()
}

/// Parse a session checkpoint. Returns a typed error — never panics —
/// on truncated, corrupted, or structurally inconsistent documents.
pub fn checkpoint_from_xml(text: &str) -> Result<SessionCheckpoint, SchemaError> {
    let root = parse_document(text)?;
    if root.name != "SessionCheckpoint" {
        return Err(invalid("expected <SessionCheckpoint> root"));
    }
    let stage = Stage::parse(root.require_attr("stage")?)
        .ok_or_else(|| invalid(format!("unknown stage '{}'", root.attr("stage").unwrap_or(""))))?;
    let options = options_from_node(
        root.child("TuningOptions").ok_or_else(|| invalid("checkpoint missing TuningOptions"))?,
    )?;
    let workload = workload_from_node(
        root.child("Workload").ok_or_else(|| invalid("checkpoint missing Workload"))?,
    )?;
    let mut pre_costs = Vec::new();
    for c in root
        .child("PreCosts")
        .ok_or_else(|| invalid("checkpoint missing PreCosts"))?
        .children_named("Cost")
    {
        pre_costs.push(parse_bits(c, "bits")?);
    }
    let stats = match root.child("Stats") {
        Some(s) => Some(StatsProgress {
            requested: parse_num(s, "requested")?,
            created: parse_num(s, "created")?,
            work_units: parse_bits(s, "workUnitsBits")?,
            failed: parse_num(s, "failed")?,
            retries: parse_num(s, "retries")?,
            backoff_units: parse_num(s, "backoffUnits")?,
        }),
        None => None,
    };
    let selections = match root.child("Selections") {
        Some(node) => {
            let mut sels = Vec::new();
            for s in node.children_named("Selection") {
                sels.push(read_selection(s)?);
            }
            Some(sels)
        }
        None => None,
    };
    let enumeration = match root.child("Enumeration") {
        Some(e) => Some(read_enumeration(e)?),
        None => None,
    };
    let mut cache = Vec::new();
    for e in root
        .child("Cache")
        .ok_or_else(|| invalid("checkpoint missing Cache"))?
        .children_named("Entry")
    {
        let fp = e.require_attr("fingerprint")?;
        let verify = e.require_attr("verify")?;
        cache.push(CacheExport {
            item: parse_num(e, "item")?,
            fingerprint: u64::from_str_radix(fp, 16)
                .map_err(|_| invalid(format!("bad fingerprint '{fp}'")))?,
            cost: parse_bits(e, "costBits")?,
            used_structures: e
                .children_named("Use")
                .map(|u| u.require_attr("name").map(str::to_string))
                .collect::<Result<_, _>>()?,
            verify: u64::from_str_radix(verify, 16)
                .map_err(|_| invalid(format!("bad verify fingerprint '{verify}'")))?,
        });
    }
    let mut degraded = Vec::new();
    for d in root
        .child("Degraded")
        .ok_or_else(|| invalid("checkpoint missing Degraded"))?
        .children_named("Item")
    {
        degraded.push(parse_num(d, "index")?);
    }
    let cp = SessionCheckpoint {
        options,
        workload,
        total_statements: parse_num(&root, "totalStatements")?,
        total_events: parse_bits(&root, "totalEventsBits")?,
        stage,
        consumed_units: parse_num(&root, "consumedUnits")?,
        tuning_work_units: parse_bits(&root, "tuningWorkUnitsBits")?,
        pre_costs,
        stats,
        selections,
        enumeration,
        cache,
        whatif_calls: parse_num(&root, "whatifCalls")?,
        worker_restarts: parse_num(&root, "workerRestarts")?,
        whatif_retries: parse_num(&root, "whatifRetries")?,
        retry_backoff_units: parse_num(&root, "retryBackoffUnits")?,
        degraded,
    };
    cp.validate().map_err(invalid)?;
    Ok(cp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> Configuration {
        Configuration::from_structures([
            PhysicalStructure::Index(
                Index::non_clustered("db", "t", &["a", "b"], &["pad"]).partitioned(
                    RangePartitioning::new(
                        "a",
                        vec![Value::Int(10), Value::Float(2.5), Value::Str("x<&>".into())],
                    ),
                ),
            ),
            PhysicalStructure::Index(Index::clustered("db", "u", &["k"]).constraint()),
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: RangePartitioning::new("a", vec![Value::Int(10)]),
            },
            PhysicalStructure::View(MaterializedView::grouped(
                "db",
                &["t", "u"],
                vec![JoinPair::new(QualifiedColumn::new("t", "k"), QualifiedColumn::new("u", "k"))],
                vec![QualifiedColumn::new("t", "a")],
                vec![
                    ViewAggregate::count_star(),
                    ViewAggregate::column(AggFunc::Sum, QualifiedColumn::new("u", "v")),
                    ViewAggregate::expr(
                        AggFunc::Sum,
                        "u.v * (1 - t.a)",
                        vec![QualifiedColumn::new("u", "v"), QualifiedColumn::new("t", "a")],
                    ),
                ],
            )),
        ])
    }

    #[test]
    fn configuration_roundtrip() {
        let config = sample_config();
        let xml = configuration_to_xml(&config);
        let back = configuration_from_xml(&xml).unwrap();
        assert_eq!(config, back, "\n{xml}");
    }

    #[test]
    fn workload_roundtrip() {
        let mut workload = Workload::from_sql_file(
            "db",
            "SELECT a FROM t WHERE x < 10; UPDATE t SET a = 1 WHERE k = 'it''s';",
        )
        .unwrap();
        workload.items[0].weight = 25.0;
        let xml = workload_to_xml(&workload);
        let back = workload_from_xml(&xml).unwrap();
        assert_eq!(workload, back, "\n{xml}");
    }

    #[test]
    fn options_roundtrip() {
        let mut options = TuningOptions::default()
            .with_storage_mb(200)
            .with_features(FeatureSet::indexes_and_views())
            .with_alignment()
            .with_work_budget(5000);
        options.compress = false;
        options.greedy_k = 11;
        options.parallel_workers = 3;
        options.colgroup_cost_threshold = 0.0375;
        options.compression.rep_scale = 0.625;
        options.user_specified = Some(sample_config());
        let xml = options_to_xml(&options);
        let back = options_from_xml(&xml).unwrap();
        assert_eq!(back.features, options.features);
        assert_eq!(back.alignment, options.alignment);
        assert_eq!(back.compress, options.compress);
        assert_eq!(back.storage_bytes, options.storage_bytes);
        assert_eq!(back.work_budget_units, options.work_budget_units);
        assert_eq!(back.greedy_k, options.greedy_k);
        assert_eq!(back.parallel_workers, options.parallel_workers);
        assert_eq!(
            back.colgroup_cost_threshold.to_bits(),
            options.colgroup_cost_threshold.to_bits()
        );
        assert_eq!(back.compression.rep_scale.to_bits(), options.compression.rep_scale.to_bits());
        assert_eq!(back.user_specified, options.user_specified);
        // full fidelity: re-serializing the parsed options is byte-identical
        assert_eq!(options_to_xml(&back), xml);
    }

    #[test]
    fn output_feeds_back_as_input() {
        // §6.3: take the output configuration of one run and feed a
        // modified version as input into a subsequent run
        let result = TuningResult {
            recommendation: sample_config(),
            base_cost: 100.0,
            recommended_cost: 25.0,
            statements_tuned: 5,
            total_statements: 50,
            total_events: 50.0,
            whatif_calls: 10,
            evaluations: 20,
            candidates_generated: 30,
            candidates_selected: 8,
            pool_size: 9,
            lazy_variants: 0,
            stats_requested: 4,
            stats_created: 2,
            stats_work_units: 3.0,
            tuning_work_units: 100.0,
            storage_bytes: 1 << 20,
            completion: Completion::BudgetExhausted { stage: Stage::Enumeration },
            worker_restarts: 0,
            whatif_retries: 0,
            retry_backoff_units: 0,
            degraded_statements: Vec::new(),
            checkpoint: None,
            observer: None,
        };
        let out_xml = result_to_xml(&result);
        assert!(out_xml.contains("completion=\"budgetExhausted:enumeration\""), "{out_xml}");
        assert!(!out_xml.contains("<Observer"), "no observer section without a summary");
        let recovered = recommendation_from_output(&out_xml).unwrap();
        assert_eq!(recovered, result.recommendation);

        // with an observer trace attached, the output carries the
        // counters and span aggregates without disturbing feedback
        let mut traced = result.clone();
        traced.observer = Some(dta_core::ObserverSummary {
            counters: vec![("whatifCalls".into(), 10)],
            spans: vec![dta_core::obs::SpanSummary {
                path: "enumeration/greedyPhase1".into(),
                enters: 1,
                wall_nanos: 12345,
                whatif_calls: 10,
                work_units: 20,
            }],
            shards: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        });
        let traced_xml = result_to_xml(&traced);
        assert!(
            traced_xml.contains("<Counter name=\"whatifCalls\" value=\"10\"/>"),
            "{traced_xml}"
        );
        assert!(traced_xml.contains("path=\"enumeration/greedyPhase1\""), "{traced_xml}");
        let recovered = recommendation_from_output(&traced_xml).unwrap();
        assert_eq!(recovered, result.recommendation);
    }

    #[test]
    fn evaluation_report_xml_carries_fault_telemetry() {
        let report = dta_core::EvaluationReport {
            statements: vec![dta_core::StatementReport {
                database: "db".into(),
                sql: "SELECT a FROM t WHERE x < 1".into(),
                weight: 2.0,
                current_cost: 100.0,
                proposed_cost: 40.0,
                used_structures: vec!["idx_t_a".into()],
                whatif_calls: 5,
                retries: 3,
                degraded: true,
            }],
            current_total: 100.0,
            proposed_total: 40.0,
        };
        let xml = evaluation_to_xml(&report);
        assert!(xml.contains("whatifCalls=\"5\""), "{xml}");
        assert!(xml.contains("retries=\"3\""), "{xml}");
        assert!(xml.contains("degraded=\"true\""), "{xml}");
        assert!(xml.contains("SELECT a FROM t WHERE x &lt; 1"), "{xml}");
        assert!(xml.contains("<Uses>idx_t_a</Uses>"), "{xml}");
        assert!(xml.contains("changePercent=\"-60.0000\""), "{xml}");
        let parsed = parse_document(&xml).expect("well-formed");
        assert_eq!(parsed.name, "DTAEvaluation");
    }

    fn sample_checkpoint() -> SessionCheckpoint {
        let workload = Workload::from_sql_file(
            "db",
            "SELECT a FROM t WHERE x < 10; SELECT b FROM t WHERE x > 20;",
        )
        .unwrap();
        SessionCheckpoint {
            options: TuningOptions::default().with_work_budget(500),
            workload,
            total_statements: 7,
            total_events: 7.5,
            stage: Stage::Enumeration,
            consumed_units: 321,
            tuning_work_units: 1234.5678901234567,
            pre_costs: vec![10.125, 0.1 + 0.2], // deliberately non-terminating bits
            stats: Some(StatsProgress {
                requested: 9,
                created: 8,
                work_units: 45.375,
                failed: 1,
                retries: 2,
                backoff_units: 6,
            }),
            selections: Some(vec![
                ItemSelection {
                    generated: 5,
                    evaluations: 12,
                    chosen: sample_config().iter().cloned().collect(),
                    benefit: 0.30000000000000004,
                },
                ItemSelection::default(),
            ]),
            enumeration: Some(EnumerationResume {
                snapshot: GreedySnapshot {
                    best_set: vec![3, 0, 5],
                    best_cost: 99.0625,
                    evaluations: 77,
                    cursor: GreedyCursor::Phase2 { next: 4, round_best: Some((2, 98.5)) },
                },
                lazy_variants: 3,
            }),
            cache: vec![CacheExport {
                item: 1,
                fingerprint: 0xdeadbeef12345678,
                cost: 17.375,
                used_structures: vec!["idx_t_x".into()],
                verify: 0xfeed,
            }],
            whatif_calls: 40,
            worker_restarts: 1,
            whatif_retries: 3,
            retry_backoff_units: 14,
            degraded: vec![1],
        }
    }

    #[test]
    fn checkpoint_roundtrip_is_byte_identical() {
        let cp = sample_checkpoint();
        let xml = checkpoint_to_xml(&cp);
        let back = checkpoint_from_xml(&xml).unwrap();
        // write → parse → re-write is byte-identical: every float made it
        // through via its exact bit pattern
        assert_eq!(checkpoint_to_xml(&back), xml, "\n{xml}");
        assert_eq!(back.pre_costs[1].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.stage, Stage::Enumeration);
        assert_eq!(back.enumeration.as_ref().unwrap().snapshot.best_set, vec![3, 0, 5]);
        assert_eq!(back.cache[0].fingerprint, 0xdeadbeef12345678);
    }

    #[test]
    fn minimal_checkpoint_roundtrips() {
        // earliest possible cut: nothing past pre-costing yet
        let mut cp = sample_checkpoint();
        cp.stage = Stage::PreCosting;
        cp.pre_costs = vec![1.5];
        cp.stats = None;
        cp.selections = None;
        cp.enumeration = None;
        cp.cache.clear();
        cp.degraded.clear();
        let xml = checkpoint_to_xml(&cp);
        let back = checkpoint_from_xml(&xml).unwrap();
        assert_eq!(checkpoint_to_xml(&back), xml);
        assert!(back.stats.is_none() && back.selections.is_none() && back.enumeration.is_none());
    }

    #[test]
    fn corrupted_checkpoints_are_typed_errors_not_panics() {
        let xml = checkpoint_to_xml(&sample_checkpoint());
        // truncation at every content-bearing prefix length must yield
        // Err, never panic (cutting only trailing whitespace is still a
        // complete document, so stop at the last non-whitespace byte)
        for cut in 0..xml.trim_end().len() {
            assert!(checkpoint_from_xml(&xml[..cut]).is_err(), "prefix {cut} accepted");
        }
        // well-formed XML, wrong root
        assert!(checkpoint_from_xml("<Nope/>").is_err());
        // corrupted float bits
        let bad = xml.replacen("tuningWorkUnitsBits=\"", "tuningWorkUnitsBits=\"zz", 1);
        assert!(checkpoint_from_xml(&bad).is_err());
        // unknown stage
        let bad = xml.replacen("stage=\"enumeration\"", "stage=\"warpDrive\"", 1);
        assert!(checkpoint_from_xml(&bad).is_err());
        // semantically inconsistent (degraded index out of range) is
        // rejected by the embedded validate() pass
        let bad = xml.replacen("<Item index=\"1\"/>", "<Item index=\"99\"/>", 1);
        let err = checkpoint_from_xml(&bad);
        assert!(matches!(err, Err(SchemaError::Invalid(_))), "{err:?}");
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(configuration_from_xml("<Configuration><Index/></Configuration>").is_err());
        assert!(configuration_from_xml("<Nope/>").is_err());
        assert!(workload_from_xml(
            "<Workload><Statement database=\"d\">NOT SQL</Statement></Workload>"
        )
        .is_err());
        assert!(configuration_from_xml(
            "<Configuration><Index database=\"d\" table=\"t\" kind=\"hash\" keys=\"a\"/></Configuration>"
        )
        .is_err());
        // malformed index (empty keys)
        assert!(configuration_from_xml(
            "<Configuration><Index database=\"d\" table=\"t\" kind=\"nonclustered\" keys=\"\"/></Configuration>"
        )
        .is_err());
    }
}
