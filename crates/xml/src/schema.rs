//! The typed schema layer: DTA inputs and outputs as XML.

use crate::xml::{parse_document, XmlError, XmlNode, XmlWriter};
use dta_catalog::Value;
use dta_core::{AlignmentMode, FeatureSet, TuningOptions, TuningResult};
use dta_physical::{
    Configuration, Index, IndexKind, JoinPair, MaterializedView, PhysicalStructure,
    QualifiedColumn, RangePartitioning, ViewAggregate,
};
use dta_sql::AggFunc;
use dta_workload::{Workload, WorkloadItem};

/// Schema-level errors (syntax or semantic).
#[derive(Debug)]
pub enum SchemaError {
    Xml(XmlError),
    Invalid(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Xml(e) => write!(f, "{e}"),
            SchemaError::Invalid(m) => write!(f, "invalid document: {m}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<XmlError> for SchemaError {
    fn from(e: XmlError) -> Self {
        SchemaError::Xml(e)
    }
}

fn invalid(m: impl Into<String>) -> SchemaError {
    SchemaError::Invalid(m.into())
}

// ---- values ---------------------------------------------------------------

fn write_value(w: &mut XmlWriter, element: &str, v: &Value) {
    let (ty, text) = match v {
        Value::Null => ("null", String::new()),
        Value::Int(i) => ("int", i.to_string()),
        Value::Float(f) => ("float", f.to_string()),
        Value::Str(s) => ("str", s.clone()),
    };
    w.text_element(element, &[("type", ty)], &text);
}

fn read_value(node: &XmlNode) -> Result<Value, SchemaError> {
    match node.require_attr("type")? {
        "null" => Ok(Value::Null),
        "int" => node
            .text
            .parse()
            .map(Value::Int)
            .map_err(|_| invalid(format!("bad int '{}'", node.text))),
        "float" => node
            .text
            .parse()
            .map(Value::Float)
            .map_err(|_| invalid(format!("bad float '{}'", node.text))),
        "str" => Ok(Value::Str(node.text.clone())),
        other => Err(invalid(format!("unknown value type '{other}'"))),
    }
}

// ---- partitioning -----------------------------------------------------------

fn write_partitioning(w: &mut XmlWriter, p: &RangePartitioning) {
    w.open_with("Partitioning", &[("column", &p.column)]);
    for b in &p.boundaries {
        write_value(w, "Boundary", b);
    }
    w.close();
}

fn read_partitioning(node: &XmlNode) -> Result<RangePartitioning, SchemaError> {
    let column = node.require_attr("column")?;
    let mut boundaries = Vec::new();
    for b in node.children_named("Boundary") {
        boundaries.push(read_value(b)?);
    }
    Ok(RangePartitioning::new(column, boundaries))
}

// ---- configuration ---------------------------------------------------------

fn qualified(attr: &str) -> Result<QualifiedColumn, SchemaError> {
    let (t, c) = attr
        .split_once('.')
        .ok_or_else(|| invalid(format!("expected table.column, got '{attr}'")))?;
    Ok(QualifiedColumn::new(t, c))
}

fn write_structure(w: &mut XmlWriter, s: &PhysicalStructure) {
    match s {
        PhysicalStructure::Index(ix) => {
            let kind = match ix.kind {
                IndexKind::Clustered => "clustered",
                IndexKind::NonClustered => "nonclustered",
            };
            let keys = ix.key_columns.join(",");
            let includes = ix.included_columns.join(",");
            let mut attrs = vec![
                ("database", ix.database.as_str()),
                ("table", ix.table.as_str()),
                ("kind", kind),
                ("keys", keys.as_str()),
            ];
            if !includes.is_empty() {
                attrs.push(("includes", includes.as_str()));
            }
            if ix.enforces_constraint {
                attrs.push(("constraint", "true"));
            }
            if let Some(p) = &ix.partitioning {
                w.open_with("Index", &attrs);
                write_partitioning(w, p);
                w.close();
            } else {
                w.leaf("Index", &attrs);
            }
        }
        PhysicalStructure::View(v) => {
            let tables = v.tables.join(",");
            w.open_with(
                "MaterializedView",
                &[("database", v.database.as_str()), ("tables", tables.as_str())],
            );
            for jp in &v.join_pairs {
                w.leaf(
                    "Join",
                    &[("left", &format!("{}", jp.left)), ("right", &format!("{}", jp.right))],
                );
            }
            for g in &v.group_by {
                w.leaf("GroupBy", &[("column", &format!("{g}"))]);
            }
            for p in &v.projected {
                w.leaf("Project", &[("column", &format!("{p}"))]);
            }
            for a in &v.aggregates {
                let mut attrs = vec![("func", a.func.name())];
                if let Some(text) = &a.arg {
                    attrs.push(("arg", text.as_str()));
                }
                if a.arg_columns.is_empty() {
                    w.leaf("Aggregate", &attrs);
                } else {
                    w.open_with("Aggregate", &attrs);
                    for qc in &a.arg_columns {
                        w.leaf("ArgColumn", &[("column", &format!("{qc}"))]);
                    }
                    w.close();
                }
            }
            if let Some(p) = &v.partitioning {
                write_partitioning(w, p);
            }
            w.close();
        }
        PhysicalStructure::TablePartitioning { database, table, scheme } => {
            w.open_with(
                "TablePartitioning",
                &[("database", database.as_str()), ("table", table.as_str())],
            );
            write_partitioning(w, scheme);
            w.close();
        }
    }
}

fn read_structure(node: &XmlNode) -> Result<PhysicalStructure, SchemaError> {
    match node.name.as_str() {
        "Index" => {
            let database = node.require_attr("database")?;
            let table = node.require_attr("table")?;
            let kind = match node.require_attr("kind")? {
                "clustered" => IndexKind::Clustered,
                "nonclustered" => IndexKind::NonClustered,
                other => return Err(invalid(format!("unknown index kind '{other}'"))),
            };
            let keys: Vec<&str> =
                node.require_attr("keys")?.split(',').filter(|s| !s.is_empty()).collect();
            let includes: Vec<&str> = node
                .attr("includes")
                .map(|s| s.split(',').filter(|s| !s.is_empty()).collect())
                .unwrap_or_default();
            let mut ix = match kind {
                IndexKind::Clustered => Index::clustered(database, table, &keys),
                IndexKind::NonClustered => Index::non_clustered(database, table, &keys, &includes),
            };
            if node.attr("constraint") == Some("true") {
                ix = ix.constraint();
            }
            if let Some(p) = node.child("Partitioning") {
                ix = ix.partitioned(read_partitioning(p)?);
            }
            if !ix.is_well_formed() {
                return Err(invalid(format!("malformed index '{}'", ix.name())));
            }
            Ok(PhysicalStructure::Index(ix))
        }
        "MaterializedView" => {
            let database = node.require_attr("database")?;
            let tables: Vec<&str> = node.require_attr("tables")?.split(',').collect();
            let mut join_pairs = Vec::new();
            for j in node.children_named("Join") {
                join_pairs.push(JoinPair::new(
                    qualified(j.require_attr("left")?)?,
                    qualified(j.require_attr("right")?)?,
                ));
            }
            let mut group_by = Vec::new();
            for g in node.children_named("GroupBy") {
                group_by.push(qualified(g.require_attr("column")?)?);
            }
            let mut projected = Vec::new();
            for p in node.children_named("Project") {
                projected.push(qualified(p.require_attr("column")?)?);
            }
            let mut aggregates = Vec::new();
            for a in node.children_named("Aggregate") {
                let func = AggFunc::from_name(&a.require_attr("func")?.to_ascii_lowercase())
                    .ok_or_else(|| invalid("unknown aggregate function"))?;
                let arg = a.attr("arg").map(str::to_string);
                let mut arg_columns = Vec::new();
                for c in a.children_named("ArgColumn") {
                    arg_columns.push(qualified(c.require_attr("column")?)?);
                }
                aggregates.push(ViewAggregate { func, arg, arg_columns });
            }
            let mut view = if group_by.is_empty() && aggregates.is_empty() {
                MaterializedView::join_view(database, &tables, join_pairs, projected)
            } else {
                MaterializedView::grouped(database, &tables, join_pairs, group_by, aggregates)
            };
            if let Some(p) = node.child("Partitioning") {
                view = view.partitioned(read_partitioning(p)?);
            }
            if !view.is_well_formed() {
                return Err(invalid(format!("malformed view '{}'", view.name())));
            }
            Ok(PhysicalStructure::View(view))
        }
        "TablePartitioning" => {
            let scheme = read_partitioning(
                node.child("Partitioning")
                    .ok_or_else(|| invalid("TablePartitioning without Partitioning child"))?,
            )?;
            Ok(PhysicalStructure::TablePartitioning {
                database: node.require_attr("database")?.to_string(),
                table: node.require_attr("table")?.to_string(),
                scheme,
            })
        }
        other => Err(invalid(format!("unknown structure element <{other}>"))),
    }
}

fn write_configuration_into(w: &mut XmlWriter, config: &Configuration) {
    w.open("Configuration");
    for s in config.iter() {
        write_structure(w, s);
    }
    w.close();
}

/// Serialize a configuration.
pub fn configuration_to_xml(config: &Configuration) -> String {
    let mut w = XmlWriter::new();
    write_configuration_into(&mut w, config);
    w.finish()
}

fn configuration_from_node(node: &XmlNode) -> Result<Configuration, SchemaError> {
    if node.name != "Configuration" {
        return Err(invalid(format!("expected <Configuration>, got <{}>", node.name)));
    }
    let mut config = Configuration::new();
    for child in &node.children {
        config.add(read_structure(child)?);
    }
    Ok(config)
}

/// Parse a configuration document.
pub fn configuration_from_xml(text: &str) -> Result<Configuration, SchemaError> {
    configuration_from_node(&parse_document(text)?)
}

// ---- workload -----------------------------------------------------------

/// Serialize a workload.
pub fn workload_to_xml(workload: &Workload) -> String {
    let mut w = XmlWriter::new();
    w.open("Workload");
    for item in &workload.items {
        let weight = item.weight.to_string();
        w.text_element(
            "Statement",
            &[("database", item.database.as_str()), ("weight", weight.as_str())],
            &item.statement.to_string(),
        );
    }
    w.close();
    w.finish()
}

/// Parse a workload document.
pub fn workload_from_xml(text: &str) -> Result<Workload, SchemaError> {
    let root = parse_document(text)?;
    if root.name != "Workload" {
        return Err(invalid("expected <Workload> root"));
    }
    let mut items = Vec::new();
    for s in root.children_named("Statement") {
        let database = s.require_attr("database")?;
        let weight: f64 =
            s.attr("weight").unwrap_or("1").parse().map_err(|_| invalid("bad weight"))?;
        let stmt = dta_sql::parse_statement(&s.text)
            .map_err(|e| invalid(format!("statement does not parse: {e}")))?;
        items.push(WorkloadItem::weighted(database, stmt, weight));
    }
    Ok(Workload::from_items(items))
}

// ---- options -----------------------------------------------------------

/// Serialize tuning options (the DTA input document).
pub fn options_to_xml(options: &TuningOptions) -> String {
    let mut w = XmlWriter::new();
    let mut features = Vec::new();
    if options.features.indexes {
        features.push("indexes");
    }
    if options.features.views {
        features.push("views");
    }
    if options.features.partitioning {
        features.push("partitioning");
    }
    let features = features.join(",");
    let alignment = match options.alignment {
        AlignmentMode::None => "none",
        AlignmentMode::Lazy => "lazy",
        AlignmentMode::Eager => "eager",
    };
    let storage;
    let budget;
    let mut attrs: Vec<(&str, &str)> = vec![
        ("features", features.as_str()),
        ("alignment", alignment),
        ("compress", if options.compress { "true" } else { "false" }),
        ("reduceStatistics", if options.reduce_statistics { "true" } else { "false" }),
    ];
    if let Some(b) = options.storage_bytes {
        storage = b.to_string();
        attrs.push(("storageBytes", storage.as_str()));
    }
    if let Some(t) = options.time_budget_units {
        budget = t.to_string();
        attrs.push(("timeBudget", budget.as_str()));
    }
    w.open_with("TuningOptions", &attrs);
    if let Some(user) = &options.user_specified {
        w.open("UserSpecified");
        write_configuration_into(&mut w, user);
        w.close();
    }
    w.close();
    w.finish()
}

/// Parse a tuning-options document. Unspecified knobs take defaults.
pub fn options_from_xml(text: &str) -> Result<TuningOptions, SchemaError> {
    let root = parse_document(text)?;
    if root.name != "TuningOptions" {
        return Err(invalid("expected <TuningOptions> root"));
    }
    let mut options = TuningOptions::default();
    if let Some(f) = root.attr("features") {
        let set: Vec<&str> = f.split(',').collect();
        options.features = FeatureSet {
            indexes: set.contains(&"indexes"),
            views: set.contains(&"views"),
            partitioning: set.contains(&"partitioning"),
        };
    }
    match root.attr("alignment") {
        Some("lazy") => options.alignment = AlignmentMode::Lazy,
        Some("eager") => options.alignment = AlignmentMode::Eager,
        _ => options.alignment = AlignmentMode::None,
    }
    if let Some(c) = root.attr("compress") {
        options.compress = c == "true";
    }
    if let Some(r) = root.attr("reduceStatistics") {
        options.reduce_statistics = r == "true";
    }
    if let Some(s) = root.attr("storageBytes") {
        options.storage_bytes = Some(s.parse().map_err(|_| invalid("bad storageBytes"))?);
    }
    if let Some(t) = root.attr("timeBudget") {
        options.time_budget_units = Some(t.parse().map_err(|_| invalid("bad timeBudget"))?);
    }
    if let Some(user) = root.child("UserSpecified") {
        let cfg = user
            .child("Configuration")
            .ok_or_else(|| invalid("UserSpecified without Configuration"))?;
        options.user_specified = Some(configuration_from_node(cfg)?);
    }
    Ok(options)
}

// ---- result -----------------------------------------------------------

/// Serialize a tuning result (the DTA output document). The embedded
/// `<Configuration>` can be fed back as a user-specified configuration —
/// §6.3's iterative-tuning loop.
pub fn result_to_xml(result: &TuningResult) -> String {
    let mut w = XmlWriter::new();
    w.open("DTAOutput");
    let improvement = format!("{:.4}", result.expected_improvement());
    let base = format!("{:.3}", result.base_cost);
    let rec = format!("{:.3}", result.recommended_cost);
    let statements = result.statements_tuned.to_string();
    let events = result.total_events.to_string();
    let calls = result.whatif_calls.to_string();
    let storage = result.storage_bytes.to_string();
    w.leaf(
        "Report",
        &[
            ("expectedImprovement", improvement.as_str()),
            ("baseCost", base.as_str()),
            ("recommendedCost", rec.as_str()),
            ("statementsTuned", statements.as_str()),
            ("totalEvents", events.as_str()),
            ("whatifCalls", calls.as_str()),
            ("storageBytes", storage.as_str()),
        ],
    );
    w.open("Recommendation");
    write_configuration_into(&mut w, &result.recommendation);
    w.close();
    w.close();
    w.finish()
}

/// Extract the recommended configuration from an output document.
pub fn recommendation_from_output(text: &str) -> Result<Configuration, SchemaError> {
    let root = parse_document(text)?;
    if root.name != "DTAOutput" {
        return Err(invalid("expected <DTAOutput> root"));
    }
    let rec = root
        .child("Recommendation")
        .and_then(|r| r.child("Configuration"))
        .ok_or_else(|| invalid("missing Recommendation/Configuration"))?;
    configuration_from_node(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> Configuration {
        Configuration::from_structures([
            PhysicalStructure::Index(
                Index::non_clustered("db", "t", &["a", "b"], &["pad"]).partitioned(
                    RangePartitioning::new(
                        "a",
                        vec![Value::Int(10), Value::Float(2.5), Value::Str("x<&>".into())],
                    ),
                ),
            ),
            PhysicalStructure::Index(Index::clustered("db", "u", &["k"]).constraint()),
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: RangePartitioning::new("a", vec![Value::Int(10)]),
            },
            PhysicalStructure::View(MaterializedView::grouped(
                "db",
                &["t", "u"],
                vec![JoinPair::new(QualifiedColumn::new("t", "k"), QualifiedColumn::new("u", "k"))],
                vec![QualifiedColumn::new("t", "a")],
                vec![
                    ViewAggregate::count_star(),
                    ViewAggregate::column(AggFunc::Sum, QualifiedColumn::new("u", "v")),
                    ViewAggregate::expr(
                        AggFunc::Sum,
                        "u.v * (1 - t.a)",
                        vec![QualifiedColumn::new("u", "v"), QualifiedColumn::new("t", "a")],
                    ),
                ],
            )),
        ])
    }

    #[test]
    fn configuration_roundtrip() {
        let config = sample_config();
        let xml = configuration_to_xml(&config);
        let back = configuration_from_xml(&xml).unwrap();
        assert_eq!(config, back, "\n{xml}");
    }

    #[test]
    fn workload_roundtrip() {
        let mut workload = Workload::from_sql_file(
            "db",
            "SELECT a FROM t WHERE x < 10; UPDATE t SET a = 1 WHERE k = 'it''s';",
        )
        .unwrap();
        workload.items[0].weight = 25.0;
        let xml = workload_to_xml(&workload);
        let back = workload_from_xml(&xml).unwrap();
        assert_eq!(workload, back, "\n{xml}");
    }

    #[test]
    fn options_roundtrip() {
        let mut options = TuningOptions::default()
            .with_storage_mb(200)
            .with_features(FeatureSet::indexes_and_views())
            .with_alignment();
        options.compress = false;
        options.time_budget_units = Some(5000.0);
        options.user_specified = Some(sample_config());
        let xml = options_to_xml(&options);
        let back = options_from_xml(&xml).unwrap();
        assert_eq!(back.features, options.features);
        assert_eq!(back.alignment, options.alignment);
        assert_eq!(back.compress, options.compress);
        assert_eq!(back.storage_bytes, options.storage_bytes);
        assert_eq!(back.time_budget_units, options.time_budget_units);
        assert_eq!(back.user_specified, options.user_specified);
    }

    #[test]
    fn output_feeds_back_as_input() {
        // §6.3: take the output configuration of one run and feed a
        // modified version as input into a subsequent run
        let result = TuningResult {
            recommendation: sample_config(),
            base_cost: 100.0,
            recommended_cost: 25.0,
            statements_tuned: 5,
            total_statements: 50,
            total_events: 50.0,
            whatif_calls: 10,
            evaluations: 20,
            candidates_generated: 30,
            candidates_selected: 8,
            pool_size: 9,
            lazy_variants: 0,
            stats_requested: 4,
            stats_created: 2,
            stats_work_units: 3.0,
            tuning_work_units: 100.0,
            storage_bytes: 1 << 20,
        };
        let out_xml = result_to_xml(&result);
        let recovered = recommendation_from_output(&out_xml).unwrap();
        assert_eq!(recovered, result.recommendation);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(configuration_from_xml("<Configuration><Index/></Configuration>").is_err());
        assert!(configuration_from_xml("<Nope/>").is_err());
        assert!(workload_from_xml(
            "<Workload><Statement database=\"d\">NOT SQL</Statement></Workload>"
        )
        .is_err());
        assert!(configuration_from_xml(
            "<Configuration><Index database=\"d\" table=\"t\" kind=\"hash\" keys=\"a\"/></Configuration>"
        )
        .is_err());
        // malformed index (empty keys)
        assert!(configuration_from_xml(
            "<Configuration><Index database=\"d\" table=\"t\" kind=\"nonclustered\" keys=\"\"/></Configuration>"
        )
        .is_err());
    }
}
