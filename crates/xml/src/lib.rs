//! The public XML schema for physical database design (§6.1).
//!
//! "Having a public schema facilitates development of other tools that
//! can program against the schema ... and makes it possible for different
//! users/tools to interchange and communicate physical database design
//! information."
//!
//! This crate provides a small, dependency-free XML reader/writer
//! ([`xml`]) and the typed schema layer ([`schema`]) that serializes DTA
//! inputs (workload, tuning options, user-specified configuration) and
//! outputs (recommendation, report). §6.3's iterative-tuning loop — feed
//! the output configuration of one run back as the input of the next —
//! is a round-trip through this schema and is covered by tests.

pub mod schema;
pub mod xml;

pub use schema::{
    checkpoint_from_xml, checkpoint_to_xml, configuration_from_xml, configuration_to_xml,
    evaluation_to_xml, options_from_xml, options_to_xml, result_to_xml, workload_from_xml,
    workload_to_xml, SchemaError,
};
pub use xml::{parse_document, XmlError, XmlNode, XmlWriter};
