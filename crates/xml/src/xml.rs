//! A minimal, self-contained XML reader and writer.
//!
//! Supports exactly what the DTA schema needs: elements, attributes,
//! text content, self-closing tags, comments, and the five standard
//! entities. No namespaces, DTDs, or processing instructions.

use std::fmt::Write as _;

/// An XML element tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly under this element.
    pub text: String,
}

impl XmlNode {
    /// New element.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Required attribute lookup.
    pub fn require_attr(&self, name: &str) -> Result<&str, XmlError> {
        self.attr(name).ok_or_else(|| {
            XmlError::new(format!("element <{}> missing attribute '{name}'", self.name))
        })
    }

    /// First child element with a given name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with a given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// XML syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
}

impl XmlError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xml error: {}", self.message)
    }
}

impl std::error::Error for XmlError {}

/// Escape text content / attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let end = s[i..]
                .find(';')
                .map(|e| i + e)
                .ok_or_else(|| XmlError::new("unterminated entity"))?;
            match &s[i + 1..end] {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                other => return Err(XmlError::new(format!("unknown entity '&{other};'"))),
            }
            i = end + 1;
        } else {
            let c = s[i..].chars().next().expect("in bounds");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

/// A streaming writer producing indented XML.
#[derive(Debug, Default)]
pub struct XmlWriter {
    buf: String,
    stack: Vec<String>,
    /// whether the current element has children (controls indentation)
    had_children: Vec<bool>,
}

impl XmlWriter {
    /// New writer with the XML declaration.
    pub fn new() -> Self {
        Self {
            buf: "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n".to_string(),
            ..Default::default()
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    fn mark_parent(&mut self) {
        if let Some(last) = self.had_children.last_mut() {
            *last = true;
        }
    }

    /// Open an element.
    pub fn open(&mut self, name: &str) -> &mut Self {
        self.open_with(name, &[])
    }

    /// Open an element with attributes.
    pub fn open_with(&mut self, name: &str, attrs: &[(&str, &str)]) -> &mut Self {
        self.mark_parent();
        self.indent();
        let _ = write!(self.buf, "<{name}");
        for (k, v) in attrs {
            let _ = write!(self.buf, " {k}=\"{}\"", escape(v));
        }
        self.buf.push_str(">\n");
        self.stack.push(name.to_string());
        self.had_children.push(false);
        self
    }

    /// Emit a self-closing element.
    pub fn leaf(&mut self, name: &str, attrs: &[(&str, &str)]) -> &mut Self {
        self.mark_parent();
        self.indent();
        let _ = write!(self.buf, "<{name}");
        for (k, v) in attrs {
            let _ = write!(self.buf, " {k}=\"{}\"", escape(v));
        }
        self.buf.push_str("/>\n");
        self
    }

    /// Emit an element containing only text.
    pub fn text_element(&mut self, name: &str, attrs: &[(&str, &str)], text: &str) -> &mut Self {
        self.mark_parent();
        self.indent();
        let _ = write!(self.buf, "<{name}");
        for (k, v) in attrs {
            let _ = write!(self.buf, " {k}=\"{}\"", escape(v));
        }
        let _ = writeln!(self.buf, ">{}</{name}>", escape(text));
        self
    }

    /// Close the innermost element.
    pub fn close(&mut self) -> &mut Self {
        let name = self.stack.pop().expect("close without open");
        self.had_children.pop();
        self.indent();
        let _ = writeln!(self.buf, "</{name}>");
        self
    }

    /// Finish, returning the document. Panics if elements remain open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed elements: {:?}", self.stack);
        self.buf
    }
}

/// Parse a document, returning the root element.
pub fn parse_document(input: &str) -> Result<XmlNode, XmlError> {
    let mut parser = Parser { input: input.as_bytes(), pos: 0, src: input };
    parser.skip_prolog()?;
    let root = parser.element()?;
    parser.skip_ws_and_comments()?;
    if parser.pos != parser.input.len() {
        return Err(XmlError::new("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = self.src[self.pos..]
                    .find("-->")
                    .ok_or_else(|| XmlError::new("unterminated comment"))?;
                self.pos += end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            let end = self.src[self.pos..]
                .find("?>")
                .ok_or_else(|| XmlError::new("unterminated XML declaration"))?;
            self.pos += end + 2;
        }
        self.skip_ws_and_comments()
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::new(format!("expected name at byte {}", self.pos)));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::new(format!("expected '<' at byte {}", self.pos)));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);

        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(XmlError::new("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(node); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::new(format!(
                            "expected '=' after attribute '{attr_name}'"
                        )));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(XmlError::new("expected quoted attribute value"));
                    }
                    let quote = quote.expect("checked");
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(XmlError::new("unterminated attribute value"));
                    }
                    let value = unescape(&self.src[start..self.pos])?;
                    self.pos += 1;
                    node.attrs.push((attr_name, value));
                }
                None => return Err(XmlError::new("unexpected end of input in tag")),
            }
        }

        // content
        loop {
            if self.starts_with("<!--") {
                let end = self.src[self.pos..]
                    .find("-->")
                    .ok_or_else(|| XmlError::new("unterminated comment"))?;
                self.pos += end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(XmlError::new(format!(
                        "mismatched closing tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::new("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(node);
            }
            match self.peek() {
                Some(b'<') => {
                    node.children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let text = unescape(self.src[start..self.pos].trim())?;
                    node.text.push_str(&text);
                }
                None => return Err(XmlError::new(format!("unclosed element <{name}>"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_parseable_output() {
        let mut w = XmlWriter::new();
        w.open_with("Root", &[("version", "1.0")]);
        w.leaf("Leaf", &[("x", "a<b&c\"d'e")]);
        w.text_element("Text", &[], "hello <world>");
        w.open("Nested");
        w.leaf("Inner", &[]);
        w.close();
        w.close();
        let doc = w.finish();
        let root = parse_document(&doc).unwrap();
        assert_eq!(root.name, "Root");
        assert_eq!(root.attr("version"), Some("1.0"));
        assert_eq!(root.child("Leaf").unwrap().attr("x"), Some("a<b&c\"d'e"));
        assert_eq!(root.child("Text").unwrap().text, "hello <world>");
        assert_eq!(root.child("Nested").unwrap().children.len(), 1);
    }

    #[test]
    fn parses_hand_written_xml() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <a p='1'>
               <b/>
               some text
               <c q="2">inner</c>
            </a>"#;
        let root = parse_document(doc).unwrap();
        assert_eq!(root.attr("p"), Some("1"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.text, "some text");
        assert_eq!(root.child("c").unwrap().text, "inner");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a x></a>",
            "<a x=1></a>",
            "<a x=\"1></a>",
            "<a>&bogus;</a>",
            "<a></a><b></b>",
            "no xml at all",
            "<a><!-- unterminated </a>",
        ] {
            assert!(parse_document(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn entity_roundtrip() {
        assert_eq!(escape("&<>\"'"), "&amp;&lt;&gt;&quot;&apos;");
        assert_eq!(unescape("&amp;&lt;&gt;&quot;&apos;").unwrap(), "&<>\"'");
    }

    #[test]
    fn children_named_filters() {
        let root = parse_document("<r><x a=\"1\"/><y/><x a=\"2\"/></r>").unwrap();
        let xs: Vec<_> = root.children_named("x").collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].attr("a"), Some("2"));
    }

    #[test]
    fn require_attr_errors() {
        let root = parse_document("<r/>").unwrap();
        assert!(root.require_attr("missing").is_err());
    }
}
