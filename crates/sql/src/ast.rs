//! Abstract syntax tree for the DTA SQL dialect.

use std::fmt;

/// A literal constant appearing in a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// 64-bit signed integer, e.g. `42`.
    Int(i64),
    /// Double-precision float, e.g. `0.05`.
    Float(f64),
    /// Single-quoted string, e.g. `'BRAZIL'`. Dates are ISO-8601 strings
    /// (`'1995-03-15'`), which compare correctly lexicographically.
    Str(String),
    /// `NULL`.
    Null,
}

impl Literal {
    /// True if this literal is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Literal::Int(_) | Literal::Float(_))
    }
}

/// A possibly-qualified column reference (`t.a` or `a`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias qualifier, if present.
    pub table: Option<String>,
    /// Column name (lower-cased by the lexer).
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self { table: None, column: column.into() }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self { table: Some(table.into()), column: column.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | NotEq | Lt | LtEq | Gt | GtEq)
    }

    /// Mirror of a comparison: `a < b` ⇔ `b > a`.
    pub fn flip(self) -> Self {
        use BinaryOp::*;
        match self {
            Lt => Gt,
            LtEq => GtEq,
            Gt => Lt,
            GtEq => LtEq,
            other => other,
        }
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Or => "OR",
            And => "AND",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parse an aggregate name (already lower-cased).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// Scalar and boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant literal.
    Literal(Literal),
    /// Column reference.
    Column(ColumnRef),
    /// Binary operation (arithmetic, comparison, AND/OR).
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// Unary operation (NOT, unary minus).
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// `expr [NOT] BETWEEN low AND high`.
    Between { expr: Box<Expr>, negated: bool, low: Box<Expr>, high: Box<Expr> },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList { expr: Box<Expr>, negated: bool, list: Vec<Expr> },
    /// `expr [NOT] LIKE pattern`.
    Like { expr: Box<Expr>, negated: bool, pattern: Box<Expr> },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Aggregate { func: AggFunc, distinct: bool, arg: Option<Box<Expr>> },
    /// Other scalar function call, e.g. `SUBSTRING(a, 1, 2)`.
    Function { name: String, args: Vec<Expr> },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// String literal shorthand.
    pub fn str(v: &str) -> Expr {
        Expr::Literal(Literal::Str(v.to_string()))
    }

    /// Build `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op: BinaryOp::And, right: Box::new(other) }
    }

    /// Build a binary comparison.
    pub fn cmp(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op, right: Box::new(other) }
    }

    /// True if the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        crate::visit::walk_expr(self, &mut |e| {
            if matches!(e, Expr::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// Split a conjunction into its conjuncts: `a AND b AND c` → `[a, b, c]`.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::And, right } => {
                    go(left, out);
                    go(right, out);
                }
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }

    /// Re-join conjuncts into a single AND tree. Returns `None` for an
    /// empty slice.
    pub fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
        let first = if parts.is_empty() { return None } else { parts.remove(0) };
        Some(parts.into_iter().fold(first, |acc, e| acc.and(e)))
    }
}

/// A base table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Catalog table name.
    pub name: String,
    /// Alias used in the query, if any.
    pub alias: Option<String>,
}

impl TableRef {
    /// Table reference without an alias.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), alias: None }
    }

    /// The name this table is known by inside the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An explicit `JOIN ... ON ...` attached to a base table.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The join condition.
    pub on: Expr,
}

/// One element of the `FROM` list: a base table plus zero or more
/// explicit joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

impl TableWithJoins {
    /// All table references in this FROM element, base first.
    pub fn tables(&self) -> impl Iterator<Item = &TableRef> {
        std::iter::once(&self.base).chain(self.joins.iter().map(|j| &j.table))
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// `ORDER BY` element.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    pub distinct: bool,
    /// `SELECT TOP n`, if present.
    pub top: Option<u64>,
    /// Empty means `SELECT *`.
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableWithJoins>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
}

impl SelectStatement {
    /// All table references mentioned in the FROM clause.
    pub fn tables(&self) -> Vec<&TableRef> {
        self.from.iter().flat_map(|twj| twj.tables()).collect()
    }

    /// True if the query computes aggregates (GROUP BY or aggregate in the
    /// select list).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || self.projections.iter().any(|p| p.expr.contains_aggregate())
    }
}

/// An `INSERT` statement (`VALUES` form only).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    /// Target column list; empty means "all columns in table order".
    pub columns: Vec<String>,
    /// One or more value tuples.
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub predicate: Option<Expr>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    pub table: String,
    pub predicate: Option<Expr>,
}

/// Any statement in the dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    Insert(InsertStatement),
    Update(UpdateStatement),
    Delete(DeleteStatement),
}

impl Statement {
    /// True for `INSERT`/`UPDATE`/`DELETE`.
    pub fn is_update(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }

    /// Names of all tables the statement references.
    pub fn referenced_tables(&self) -> Vec<&str> {
        match self {
            Statement::Select(s) => s.tables().iter().map(|t| t.name.as_str()).collect(),
            Statement::Insert(i) => vec![i.table.as_str()],
            Statement::Update(u) => vec![u.table.as_str()],
            Statement::Delete(d) => vec![d.table.as_str()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_roundtrip() {
        let e = Expr::col("a")
            .cmp(BinaryOp::Eq, Expr::int(1))
            .and(Expr::col("b").cmp(BinaryOp::Lt, Expr::int(2)))
            .and(Expr::col("c").cmp(BinaryOp::Gt, Expr::int(3)));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjoin(parts.into_iter().cloned().collect()).unwrap();
        assert_eq!(rejoined, e);
    }

    #[test]
    fn conjoin_empty_is_none() {
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn flip_comparisons() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.flip(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Aggregate { func: AggFunc::Count, distinct: false, arg: None };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let nested =
            Expr::Binary { left: Box::new(Expr::int(1)), op: BinaryOp::Add, right: Box::new(e) };
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let mut t = TableRef::new("lineitem");
        assert_eq!(t.binding_name(), "lineitem");
        t.alias = Some("l".into());
        assert_eq!(t.binding_name(), "l");
    }

    #[test]
    fn statement_tables() {
        let s = Statement::Update(UpdateStatement {
            table: "t".into(),
            assignments: vec![("a".into(), Expr::int(1))],
            predicate: None,
        });
        assert!(s.is_update());
        assert_eq!(s.referenced_tables(), vec!["t"]);
    }
}
