//! Lightweight AST walkers.
//!
//! These are plain pre-order traversals driven by closures — enough for
//! the analyses the advisor performs (column collection, literal
//! collection, aggregate detection) without the weight of a full visitor
//! trait hierarchy.

use crate::ast::*;

/// Walk an expression tree pre-order, invoking `f` on every node.
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                walk_expr(a, f);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

/// Walk every expression in a statement (predicates, projections,
/// group-by, order-by, assignment values, inserted values, join
/// conditions).
pub fn walk_statement_exprs(stmt: &Statement, f: &mut dyn FnMut(&Expr)) {
    match stmt {
        Statement::Select(s) => {
            for p in &s.projections {
                walk_expr(&p.expr, f);
            }
            for twj in &s.from {
                for j in &twj.joins {
                    walk_expr(&j.on, f);
                }
            }
            if let Some(p) = &s.predicate {
                walk_expr(p, f);
            }
            for g in &s.group_by {
                walk_expr(g, f);
            }
            if let Some(h) = &s.having {
                walk_expr(h, f);
            }
            for o in &s.order_by {
                walk_expr(&o.expr, f);
            }
        }
        Statement::Insert(i) => {
            for row in &i.rows {
                for e in row {
                    walk_expr(e, f);
                }
            }
        }
        Statement::Update(u) => {
            for (_, e) in &u.assignments {
                walk_expr(e, f);
            }
            if let Some(p) = &u.predicate {
                walk_expr(p, f);
            }
        }
        Statement::Delete(d) => {
            if let Some(p) = &d.predicate {
                walk_expr(p, f);
            }
        }
    }
}

/// Rewrite every column reference in an expression in place (e.g. to
/// re-qualify columns with table names for canonical forms).
pub fn rewrite_columns(expr: &mut Expr, f: &mut dyn FnMut(&mut ColumnRef)) {
    match expr {
        Expr::Literal(_) => {}
        Expr::Column(c) => f(c),
        Expr::Binary { left, right, .. } => {
            rewrite_columns(left, f);
            rewrite_columns(right, f);
        }
        Expr::Unary { expr, .. } => rewrite_columns(expr, f),
        Expr::Between { expr, low, high, .. } => {
            rewrite_columns(expr, f);
            rewrite_columns(low, f);
            rewrite_columns(high, f);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_columns(expr, f);
            for e in list {
                rewrite_columns(e, f);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            rewrite_columns(expr, f);
            rewrite_columns(pattern, f);
        }
        Expr::IsNull { expr, .. } => rewrite_columns(expr, f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                rewrite_columns(a, f);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_columns(a, f);
            }
        }
    }
}

/// Collect every column reference in a statement.
pub fn referenced_columns(stmt: &Statement) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    walk_statement_exprs(stmt, &mut |e| {
        if let Expr::Column(c) = e {
            out.push(c.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    #[test]
    fn collects_columns_from_everywhere() {
        let stmt = parse_statement(
            "SELECT a, SUM(b) FROM t JOIN u ON t.k = u.k WHERE c > 1 GROUP BY a HAVING SUM(b) > 2 ORDER BY d",
        )
        .unwrap();
        let cols = referenced_columns(&stmt);
        let names: Vec<&str> = cols.iter().map(|c| c.column.as_str()).collect();
        for expected in ["a", "b", "k", "c", "d"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn update_columns() {
        let stmt = parse_statement("UPDATE t SET a = b + 1 WHERE c = 2").unwrap();
        let cols = referenced_columns(&stmt);
        let names: Vec<&str> = cols.iter().map(|c| c.column.as_str()).collect();
        assert!(names.contains(&"b"));
        assert!(names.contains(&"c"));
        // the assignment *target* is not an expression
        assert!(!names.contains(&"a"));
    }
}
