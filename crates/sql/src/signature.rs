//! Statement signatures — the templatization relation from §5.1.
//!
//! Two statements have the same *signature* iff they are identical in all
//! respects except the constants they reference. Workload compression
//! partitions a workload by signature and then tunes only representatives
//! from each partition.
//!
//! The signature is computed by printing the statement with every literal
//! replaced by `?`. Alongside the signature we extract the *parameter
//! vector* (the literals in occurrence order), which the compression
//! clustering uses as a crude distance signal.

use crate::ast::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The template text of a statement with literals replaced by `?`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub String);

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Compute the signature of a statement.
pub fn signature(stmt: &Statement) -> Signature {
    let mut templated = stmt.clone();
    blank_statement(&mut templated);
    Signature(templated.to_string())
}

/// A 64-bit hash of the signature, for cheap grouping.
pub fn signature_hash(stmt: &Statement) -> u64 {
    let mut h = DefaultHasher::new();
    signature(stmt).0.hash(&mut h);
    h.finish()
}

/// Extract the literals of a statement in occurrence order, as f64 features
/// (strings hash to a stable numeric value). Used by workload-compression
/// clustering.
pub fn parameter_vector(stmt: &Statement) -> Vec<f64> {
    let mut out = Vec::new();
    crate::visit::walk_statement_exprs(stmt, &mut |e| {
        if let Expr::Literal(l) = e {
            out.push(literal_feature(l));
        }
    });
    out
}

fn literal_feature(l: &Literal) -> f64 {
    match l {
        Literal::Int(v) => *v as f64,
        Literal::Float(v) => *v,
        Literal::Str(s) => {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            // map onto a bounded range so distances stay comparable
            (h.finish() % 100_000) as f64
        }
        Literal::Null => 0.0,
    }
}

/// The placeholder literal used in templated statements.
fn placeholder() -> Expr {
    Expr::Function { name: "?".into(), args: vec![] }
}

fn blank_expr(e: &mut Expr) {
    match e {
        Expr::Literal(_) => *e = placeholder(),
        Expr::Column(_) => {}
        Expr::Binary { left, right, .. } => {
            blank_expr(left);
            blank_expr(right);
        }
        Expr::Unary { expr, .. } => blank_expr(expr),
        Expr::Between { expr, low, high, .. } => {
            blank_expr(expr);
            blank_expr(low);
            blank_expr(high);
        }
        Expr::InList { expr, list, .. } => {
            blank_expr(expr);
            // IN lists of different lengths should share a template: collapse
            // the whole list to a single placeholder element.
            list.clear();
            list.push(placeholder());
            blank_expr(expr);
        }
        Expr::Like { expr, pattern, .. } => {
            blank_expr(expr);
            blank_expr(pattern);
        }
        Expr::IsNull { expr, .. } => blank_expr(expr),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                blank_expr(a);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                blank_expr(a);
            }
        }
    }
}

fn blank_statement(stmt: &mut Statement) {
    match stmt {
        Statement::Select(s) => {
            for p in &mut s.projections {
                blank_expr(&mut p.expr);
            }
            for twj in &mut s.from {
                for j in &mut twj.joins {
                    blank_expr(&mut j.on);
                }
            }
            if let Some(p) = &mut s.predicate {
                blank_expr(p);
            }
            for g in &mut s.group_by {
                blank_expr(g);
            }
            if let Some(h) = &mut s.having {
                blank_expr(h);
            }
            for o in &mut s.order_by {
                blank_expr(&mut o.expr);
            }
        }
        Statement::Insert(i) => {
            // all VALUES tuples share a template regardless of arity count
            i.rows.truncate(1);
            for row in &mut i.rows {
                for e in row {
                    blank_expr(e);
                }
            }
        }
        Statement::Update(u) => {
            for (_, e) in &mut u.assignments {
                blank_expr(e);
            }
            if let Some(p) = &mut u.predicate {
                blank_expr(p);
            }
        }
        Statement::Delete(d) => {
            if let Some(p) = &mut d.predicate {
                blank_expr(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn sig(sql: &str) -> Signature {
        signature(&parse_statement(sql).unwrap())
    }

    #[test]
    fn same_template_same_signature() {
        assert_eq!(sig("SELECT a FROM t WHERE x < 10"), sig("SELECT a FROM t WHERE x < 99"));
        assert_eq!(sig("SELECT a FROM t WHERE s = 'foo'"), sig("SELECT a FROM t WHERE s = 'bar'"));
    }

    #[test]
    fn different_structure_different_signature() {
        assert_ne!(sig("SELECT a FROM t WHERE x < 10"), sig("SELECT a FROM t WHERE x > 10"));
        assert_ne!(sig("SELECT a FROM t WHERE x < 10"), sig("SELECT b FROM t WHERE x < 10"));
        assert_ne!(sig("SELECT a FROM t"), sig("SELECT a FROM u"));
    }

    #[test]
    fn in_lists_collapse() {
        assert_eq!(
            sig("SELECT a FROM t WHERE b IN (1, 2, 3)"),
            sig("SELECT a FROM t WHERE b IN (7)")
        );
    }

    #[test]
    fn insert_rows_collapse() {
        assert_eq!(sig("INSERT INTO t VALUES (1, 2)"), sig("INSERT INTO t VALUES (3, 4), (5, 6)"));
    }

    #[test]
    fn dml_signatures() {
        assert_eq!(sig("UPDATE t SET a = 5 WHERE k = 1"), sig("UPDATE t SET a = 9 WHERE k = 3"));
        assert_ne!(sig("UPDATE t SET a = 5 WHERE k = 1"), sig("UPDATE t SET b = 5 WHERE k = 1"));
    }

    #[test]
    fn parameter_vectors() {
        let stmt = parse_statement("SELECT a FROM t WHERE x < 10 AND y = 2.5").unwrap();
        assert_eq!(parameter_vector(&stmt), vec![10.0, 2.5]);
    }

    #[test]
    fn hash_consistency() {
        let a = parse_statement("SELECT a FROM t WHERE x < 10").unwrap();
        let b = parse_statement("SELECT a FROM t WHERE x < 42").unwrap();
        assert_eq!(signature_hash(&a), signature_hash(&b));
    }
}
