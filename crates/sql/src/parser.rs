//! Recursive-descent parser for the DTA SQL dialect.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, Kw, Token, TokenKind};

/// Parse a single statement; trailing semicolon is allowed.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a standalone scalar/boolean expression (used by the engine to
/// evaluate canonical aggregate arguments stored in view definitions).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a script of `;`-separated statements (a workload file).
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Self { tokens: tokenize(input)?, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn check_kw(&self, kw: Kw) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw:?}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            format!("expected {wanted}, found {}", self.peek().describe()),
            self.offset(),
        )
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(_) => {
                if let TokenKind::Ident(s) = self.advance() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Kw::Select) => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(Kw::Insert) => Ok(Statement::Insert(self.insert()?)),
            TokenKind::Keyword(Kw::Update) => Ok(Statement::Update(self.update()?)),
            TokenKind::Keyword(Kw::Delete) => Ok(Statement::Delete(self.delete()?)),
            _ => Err(self.unexpected("SELECT, INSERT, UPDATE or DELETE")),
        }
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_kw(Kw::Select)?;
        let mut stmt =
            SelectStatement { distinct: self.eat_kw(Kw::Distinct), ..Default::default() };
        if self.eat_kw(Kw::Top) {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => stmt.top = Some(n as u64),
                _ => return Err(self.unexpected("non-negative integer after TOP")),
            }
        }
        // select list: `*` or comma-separated items
        if self.eat(&TokenKind::Star) {
            // empty projections = SELECT *
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw(Kw::As) || matches!(self.peek(), TokenKind::Ident(_)) {
                    Some(self.ident()?)
                } else {
                    None
                };
                stmt.projections.push(SelectItem { expr, alias });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::From) {
            loop {
                stmt.from.push(self.table_with_joins()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Where) {
            stmt.predicate = Some(self.expr()?);
        }
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Having) {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Kw::Desc) {
                    true
                } else {
                    self.eat_kw(Kw::Asc);
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(stmt)
    }

    fn table_with_joins(&mut self) -> Result<TableWithJoins> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.check_kw(Kw::Inner);
            if inner && !matches!(self.peek2(), TokenKind::Keyword(Kw::Join)) {
                return Err(self.unexpected("JOIN after INNER"));
            }
            if inner {
                self.advance();
            }
            if !self.eat_kw(Kw::Join) {
                break;
            }
            let table = self.table_ref()?;
            self.expect_kw(Kw::On)?;
            let on = self.expr()?;
            joins.push(Join { table, on });
        }
        Ok(TableWithJoins { base, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw(Kw::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> Result<InsertStatement> {
        self.expect_kw(Kw::Insert)?;
        self.expect_kw(Kw::Into)?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw(Kw::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(InsertStatement { table, columns, rows })
    }

    fn update(&mut self) -> Result<UpdateStatement> {
        self.expect_kw(Kw::Update)?;
        let table = self.ident()?;
        self.expect_kw(Kw::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw(Kw::Where) { Some(self.expr()?) } else { None };
        Ok(UpdateStatement { table, assignments, predicate })
    }

    fn delete(&mut self) -> Result<DeleteStatement> {
        self.expect_kw(Kw::Delete)?;
        self.expect_kw(Kw::From)?;
        let table = self.ident()?;
        let predicate = if self.eat_kw(Kw::Where) { Some(self.expr()?) } else { None };
        Ok(DeleteStatement { table, predicate })
    }

    // ---- expressions ----------------------------------------------------
    //
    // Precedence (low to high): OR, AND, NOT, comparison/BETWEEN/IN/LIKE/IS,
    // +/-, */÷, unary minus, primary.

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Kw::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // NOT BETWEEN / NOT IN / NOT LIKE
        let negated = if self.check_kw(Kw::Not)
            && matches!(
                self.peek2(),
                TokenKind::Keyword(Kw::Between)
                    | TokenKind::Keyword(Kw::In)
                    | TokenKind::Keyword(Kw::Like)
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Kw::Between) {
            let low = self.additive()?;
            self.expect_kw(Kw::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw(Kw::In) {
            self.expect(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), negated, list });
        }
        if self.eat_kw(Kw::Like) {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), negated, pattern: Box::new(pattern) });
        }
        if negated {
            return Err(self.unexpected("BETWEEN, IN or LIKE after NOT"));
        }
        if self.eat_kw(Kw::Is) {
            let negated = self.eat_kw(Kw::Not);
            self.expect_kw(Kw::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            // constant-fold negated numeric literals so that `-1` is a literal
            match self.peek() {
                TokenKind::Int(v) => {
                    let v = -*v;
                    self.advance();
                    return Ok(Expr::Literal(Literal::Int(v)));
                }
                TokenKind::Float(v) => {
                    let v = -*v;
                    self.advance();
                    return Ok(Expr::Literal(Literal::Float(v)));
                }
                _ => {
                    let inner = self.unary()?;
                    return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
                }
            }
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Kw::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.check(&TokenKind::LParen) {
                    self.advance();
                    return self.call(name);
                }
                if self.eat(&TokenKind::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column(ColumnRef { table: Some(name), column }));
                }
                Ok(Expr::Column(ColumnRef { table: None, column: name }))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    /// Finishes a function call after the opening paren has been consumed.
    fn call(&mut self, name: String) -> Result<Expr> {
        if let Some(func) = AggFunc::from_name(&name) {
            // COUNT(*) special case
            if func == AggFunc::Count && self.eat(&TokenKind::Star) {
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Aggregate { func, distinct: false, arg: None });
            }
            let distinct = self.eat_kw(Kw::Distinct);
            let arg = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Aggregate { func, distinct, arg: Some(Box::new(arg)) });
        }
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Function { name, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(input: &str) -> SelectStatement {
        match parse_statement(input).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].base.name, "t");
    }

    #[test]
    fn select_star() {
        let s = sel("SELECT * FROM t WHERE a = 1");
        assert!(s.projections.is_empty());
        assert!(s.predicate.is_some());
    }

    #[test]
    fn paper_example_1() {
        // Example 1 from the paper.
        let s = sel("SELECT A, COUNT(*) FROM T WHERE X < 10 GROUP BY A");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.is_aggregate());
        let pred = s.predicate.unwrap();
        assert_eq!(pred, Expr::col("x").cmp(BinaryOp::Lt, Expr::int(10)));
    }

    #[test]
    fn aliases_and_joins() {
        let s = sel(
            "SELECT l.a FROM lineitem AS l JOIN orders o ON l.okey = o.okey WHERE o.d < '1995-01-01'",
        );
        assert_eq!(s.from[0].base.alias.as_deref(), Some("l"));
        assert_eq!(s.from[0].joins.len(), 1);
        assert_eq!(s.from[0].joins[0].table.binding_name(), "o");
    }

    #[test]
    fn comma_joins() {
        let s = sel("SELECT a FROM t1, t2, t3 WHERE t1.x = t2.x AND t2.y = t3.y");
        assert_eq!(s.from.len(), 3);
    }

    #[test]
    fn inner_join() {
        let s = sel("SELECT a FROM t1 INNER JOIN t2 ON t1.x = t2.x");
        assert_eq!(s.from[0].joins.len(), 1);
    }

    #[test]
    fn between_in_like() {
        let s = sel("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3) AND c LIKE 'abc'");
        let conj: Vec<_> = s.predicate.as_ref().unwrap().conjuncts().into_iter().cloned().collect();
        assert_eq!(conj.len(), 3);
        assert!(matches!(conj[0], Expr::Between { .. }));
        assert!(matches!(conj[1], Expr::InList { .. }));
        assert!(matches!(conj[2], Expr::Like { .. }));
    }

    #[test]
    fn negated_predicates() {
        let s = sel("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (5) AND c NOT LIKE 'x' AND d IS NOT NULL");
        let conj = s.predicate.unwrap();
        let parts = conj.conjuncts().into_iter().cloned().collect::<Vec<_>>();
        assert!(matches!(parts[0], Expr::Between { negated: true, .. }));
        assert!(matches!(parts[1], Expr::InList { negated: true, .. }));
        assert!(matches!(parts[2], Expr::Like { negated: true, .. }));
        assert!(matches!(parts[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn aggregates() {
        let s = sel("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w), COUNT(DISTINCT v) FROM t");
        assert_eq!(s.projections.len(), 6);
        assert!(matches!(s.projections[5].expr, Expr::Aggregate { distinct: true, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT a + b * c FROM t");
        match &s.projections[0].expr {
            Expr::Binary { op: BinaryOp::Add, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_or_precedence() {
        let s = sel("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        match s.predicate.unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_top() {
        let s = sel("SELECT TOP 10 a FROM t ORDER BY a DESC, b");
        assert_eq!(s.top, Some(10));
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 100");
        assert!(s.having.is_some());
    }

    #[test]
    fn insert_forms() {
        let i = match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(i.columns, vec!["a", "b"]);
        assert_eq!(i.rows.len(), 2);

        let i2 = match parse_statement("INSERT INTO t VALUES (1, 2)").unwrap() {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        assert!(i2.columns.is_empty());
    }

    #[test]
    fn update_statement() {
        let u = match parse_statement("UPDATE t SET a = a + 1, b = 'z' WHERE k = 5").unwrap() {
            Statement::Update(u) => u,
            other => panic!("{other:?}"),
        };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.predicate.is_some());
    }

    #[test]
    fn delete_statement() {
        let d = match parse_statement("DELETE FROM t WHERE k < 100").unwrap() {
            Statement::Delete(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(d.table, "t");
        assert!(d.predicate.is_some());
    }

    #[test]
    fn negative_literals_folded() {
        let s = sel("SELECT a FROM t WHERE x > -5 AND y < -2.5");
        let parts: Vec<Expr> = s.predicate.unwrap().conjuncts().into_iter().cloned().collect();
        assert_eq!(parts[0], Expr::col("x").cmp(BinaryOp::Gt, Expr::int(-5)));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "SELECT a FROM t; UPDATE t SET a = 1 WHERE b = 2;\n-- comment\nDELETE FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn script_without_separator_fails() {
        assert!(parse_script("SELECT a FROM t SELECT b FROM u").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("FROBNICATE").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE a NOT 5").is_err());
        assert!(parse_statement("SELECT TOP x a FROM t").is_err());
        assert!(parse_statement("SELECT a FROM t1 INNER t2").is_err());
    }
}
