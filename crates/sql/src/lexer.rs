//! Hand-written SQL lexer.
//!
//! Identifiers and keywords are case-insensitive; identifiers are
//! normalized to lower case so that the rest of the system can compare
//! names directly.

use crate::error::{ParseError, Result};

/// SQL keywords recognised by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    Select,
    Distinct,
    Top,
    From,
    Where,
    Group,
    Order,
    By,
    Having,
    As,
    And,
    Or,
    Not,
    Between,
    In,
    Like,
    Is,
    Null,
    Join,
    Inner,
    On,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Asc,
    Desc,
}

impl Kw {
    fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "select" => Kw::Select,
            "distinct" => Kw::Distinct,
            "top" => Kw::Top,
            "from" => Kw::From,
            "where" => Kw::Where,
            "group" => Kw::Group,
            "order" => Kw::Order,
            "by" => Kw::By,
            "having" => Kw::Having,
            "as" => Kw::As,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "between" => Kw::Between,
            "in" => Kw::In,
            "like" => Kw::Like,
            "is" => Kw::Is,
            "null" => Kw::Null,
            "join" => Kw::Join,
            "inner" => Kw::Inner,
            "on" => Kw::On,
            "insert" => Kw::Insert,
            "into" => Kw::Into,
            "values" => Kw::Values,
            "update" => Kw::Update,
            "set" => Kw::Set,
            "delete" => Kw::Delete,
            "asc" => Kw::Asc,
            "desc" => Kw::Desc,
            _ => return None,
        })
    }
}

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Kw),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    Plus,
    Minus,
    Star,
    Slash,
    Comma,
    Dot,
    LParen,
    RParen,
    Semicolon,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {k:?}"),
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(input.len() / 4 + 4);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a quote
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid float literal '{text}'"), start)
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid integer literal '{text}'"), start)
                    })?)
                };
                out.push(Token { kind, offset: start });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = input[start..i].to_ascii_lowercase();
                let kind = match Kw::from_str(&word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word),
                };
                out.push(Token { kind, offset: start });
            }
            _ => {
                let start = i;
                let kind = match c {
                    b'=' => {
                        i += 1;
                        TokenKind::Eq
                    }
                    b'<' => {
                        i += 1;
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                            TokenKind::LtEq
                        } else if i < bytes.len() && bytes[i] == b'>' {
                            i += 1;
                            TokenKind::NotEq
                        } else {
                            TokenKind::Lt
                        }
                    }
                    b'>' => {
                        i += 1;
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                            TokenKind::GtEq
                        } else {
                            TokenKind::Gt
                        }
                    }
                    b'!' => {
                        i += 1;
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                            TokenKind::NotEq
                        } else {
                            return Err(ParseError::new("expected '=' after '!'", start));
                        }
                    }
                    b'+' => {
                        i += 1;
                        TokenKind::Plus
                    }
                    b'-' => {
                        i += 1;
                        TokenKind::Minus
                    }
                    b'*' => {
                        i += 1;
                        TokenKind::Star
                    }
                    b'/' => {
                        i += 1;
                        TokenKind::Slash
                    }
                    b',' => {
                        i += 1;
                        TokenKind::Comma
                    }
                    b'.' => {
                        i += 1;
                        TokenKind::Dot
                    }
                    b'(' => {
                        i += 1;
                        TokenKind::LParen
                    }
                    b')' => {
                        i += 1;
                        TokenKind::RParen
                    }
                    b';' => {
                        i += 1;
                        TokenKind::Semicolon
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("unexpected character '{}'", other as char),
                            start,
                        ))
                    }
                };
                out.push(Token { kind, offset: start });
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("SELECT foo FROM Bar");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Kw::Select),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword(Kw::From),
                TokenKind::Ident("bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 007"),
            vec![TokenKind::Int(1), TokenKind::Float(2.5), TokenKind::Int(7), TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into()), TokenKind::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< <= <> != >= > ="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::GtEq,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            kinds("1 -- comment here\n 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("a  b").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn bad_character_errors() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
