//! Parse errors.

use std::fmt;

/// Error produced by the lexer or parser.
///
/// Carries the byte offset in the input at which the problem was detected,
/// which callers can map back to a line/column if they wish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source text.
    pub offset: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ParseError>;
