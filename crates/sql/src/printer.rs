//! Pretty-printer: `Display` implementations that emit parseable SQL.
//!
//! The printer always parenthesizes nested binary operations whose
//! precedence could be ambiguous, which keeps the parse→print→parse
//! round-trip exact (verified by property tests in the crate's test
//! suite).

use crate::ast::*;
use std::fmt::{self, Write as _};

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // keep a decimal point so the literal re-parses as a float
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

fn precedence(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | NotEq | Lt | LtEq | Gt | GtEq => 3,
        Add | Sub => 4,
        Mul | Div => 5,
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, expr: &Expr, parent_prec: u8) -> fmt::Result {
    match expr {
        Expr::Literal(l) => write!(f, "{l}"),
        Expr::Column(c) => write!(f, "{c}"),
        Expr::Binary { left, op, right } => {
            let prec = precedence(*op);
            let needs_parens = prec < parent_prec;
            if needs_parens {
                f.write_char('(')?;
            }
            write_expr(f, left, prec)?;
            write!(f, " {} ", op.symbol())?;
            // right side binds one tighter to preserve left-associativity
            write_expr(f, right, prec + 1)?;
            if needs_parens {
                f.write_char(')')?;
            }
            Ok(())
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                write!(f, "NOT ")?;
                write_expr(f, expr, 3)
            }
            UnaryOp::Neg => {
                write!(f, "-")?;
                write_expr(f, expr, 6)
            }
        },
        Expr::Between { expr, negated, low, high } => {
            write_expr(f, expr, 4)?;
            if *negated {
                write!(f, " NOT")?;
            }
            write!(f, " BETWEEN ")?;
            write_expr(f, low, 4)?;
            write!(f, " AND ")?;
            write_expr(f, high, 4)
        }
        Expr::InList { expr, negated, list } => {
            write_expr(f, expr, 4)?;
            if *negated {
                write!(f, " NOT")?;
            }
            write!(f, " IN (")?;
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, e, 0)?;
            }
            write!(f, ")")
        }
        Expr::Like { expr, negated, pattern } => {
            write_expr(f, expr, 4)?;
            if *negated {
                write!(f, " NOT")?;
            }
            write!(f, " LIKE ")?;
            write_expr(f, pattern, 4)
        }
        Expr::IsNull { expr, negated } => {
            write_expr(f, expr, 4)?;
            if *negated {
                write!(f, " IS NOT NULL")
            } else {
                write!(f, " IS NULL")
            }
        }
        Expr::Aggregate { func, distinct, arg } => {
            write!(f, "{}(", func.name())?;
            if *distinct {
                write!(f, "DISTINCT ")?;
            }
            match arg {
                Some(a) => write_expr(f, a, 0)?,
                None => write!(f, "*")?,
            }
            write!(f, ")")
        }
        Expr::Function { name, args } => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, a, 0)?;
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self, 0)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if let Some(n) = self.top {
            write!(f, "TOP {n} ")?;
        }
        if self.projections.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, p) in self.projections.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", p.expr)?;
                if let Some(a) = &p.alias {
                    write!(f, " AS {a}")?;
                }
            }
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, twj) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", twj.base)?;
                for j in &twj.joins {
                    write!(f, " JOIN {} ON {}", j.table, j.on)?;
                }
            }
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for InsertStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for UpdateStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, e)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} = {e}")?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for DeleteStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_statement;

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        assert_eq!(stmt, reparsed, "roundtrip mismatch for {sql}");
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a",
            "SELECT * FROM t",
            "SELECT DISTINCT a FROM t",
            "SELECT TOP 5 a FROM t ORDER BY a DESC",
            "SELECT a AS x, b y FROM t AS q",
            "SELECT l.a FROM lineitem AS l JOIN orders AS o ON l.k = o.k WHERE o.d < '1995-01-01'",
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1, 2) AND c LIKE 'x' AND d IS NULL",
            "SELECT a + b * c - d / e FROM t",
            "SELECT SUM(a * (1 - b)) FROM t",
            "SELECT COUNT(DISTINCT a) FROM t",
            "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)",
            "UPDATE t SET a = a + 1 WHERE b = 2",
            "DELETE FROM t WHERE k < 100",
            "SELECT a FROM t WHERE NOT x = 1",
            "SELECT substring(a, 1, 2) FROM t",
            "SELECT a FROM t WHERE x > -5 AND y < -2.5",
            "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 100 ORDER BY a",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn canonical_spacing() {
        let stmt = parse_statement("select   a from  t where x<10").unwrap();
        assert_eq!(stmt.to_string(), "SELECT a FROM t WHERE x < 10");
    }

    #[test]
    fn parenthesization_preserves_structure() {
        // (1 + 2) * 3 must not print as 1 + 2 * 3
        let stmt = parse_statement("SELECT (a + b) * c FROM t").unwrap();
        assert_eq!(stmt.to_string(), "SELECT (a + b) * c FROM t");
    }

    #[test]
    fn left_associativity_preserved() {
        // a - b - c is (a-b)-c; naive printing without right-side +1 would
        // reparse a - (b - c).
        roundtrip("SELECT a - b - c FROM t");
        roundtrip("SELECT a / b / c FROM t");
    }
}
