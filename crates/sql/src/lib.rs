//! SQL front-end for the DTA reproduction.
//!
//! This crate implements the SQL dialect that workloads are expressed in:
//! a lexer, a recursive-descent parser, the abstract syntax tree, a
//! pretty-printer (round-trip guaranteed by property tests), and
//! *statement signatures* — the templatization used by workload
//! compression (two statements share a signature iff they are identical in
//! all respects except the constants they reference; §5.1 of the paper).
//!
//! The dialect covers what the paper's workloads need: `SELECT` with
//! multi-table `FROM` (comma joins and `JOIN ... ON`), `WHERE`, `GROUP BY`,
//! `HAVING`, `ORDER BY`, `TOP`, aggregates, and the DML statements
//! `INSERT`, `UPDATE`, `DELETE`.
//!
//! # Example
//!
//! ```
//! use dta_sql::parse_statement;
//! let stmt = parse_statement(
//!     "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a").unwrap();
//! assert_eq!(stmt.to_string(), "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod signature;
pub mod visit;

pub use ast::*;
pub use error::{ParseError, Result};
pub use parser::{parse_expression, parse_script, parse_statement};
pub use signature::{signature, signature_hash, Signature};
