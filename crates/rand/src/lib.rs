//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` cannot be fetched. This crate provides exactly the
//! 0.8-era API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`] — backed by xoshiro256** seeded via
//! SplitMix64. Deterministic for a given seed, fast, and statistically
//! sound for data generation and page sampling; not cryptographic.

use std::ops::Range;

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler over half-open ranges.
///
/// A single blanket [`SampleRange`] impl hangs off this trait — as in the
/// real crate — so `Range<{integer}>` unifies with the expected output
/// type during inference instead of defaulting to `i32`.
pub trait SampleUniform: Sized {
    /// Draw one value from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // widening-multiply range reduction; bias is negligible for
                // the small spans used in workload/data generation
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(range: Range<f64>, rng: &mut R) -> f64 {
        range.start + unit_f64(rng.next_u64()) * (range.end - range.start)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1)
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
