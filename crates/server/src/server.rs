//! The server itself.

use crate::{FaultKind, ServerError};
use dta_catalog::script::MetadataScript;
use dta_catalog::{Catalog, Database};
use dta_engine::{Engine, QueryResult};
use dta_optimizer::{HardwareParams, Plan, TableStatsProvider, WhatIfOptimizer};
use dta_physical::{Configuration, Index, MaterializedView, PhysicalStructure, SizingInfo};
use dta_sql::Statement;
use dta_stats::{
    build_statistic, RetryPolicy, StatKey, Statistic, StatisticsManager, DEFAULT_SAMPLE_FRACTION,
};
use dta_storage::{Store, TableData, WorkCounter};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Work units charged per what-if optimizer call, base.
pub const WHATIF_BASE_UNITS: f64 = 4.0;

/// Extra work units per table referenced by the optimized statement
/// (join optimization is superlinear; squared below).
pub const WHATIF_PER_TABLE_UNITS: f64 = 4.0;

/// Result of a batch statistics-creation request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsCreationReport {
    /// Statistics actually created.
    pub created: usize,
    /// Statistics requested.
    pub requested: usize,
    /// Work units spent creating them (sampling I/O).
    pub work_units: f64,
    /// Requests abandoned after a permanent fault (or exhausted retries).
    pub failed: usize,
    /// Transient faults absorbed by retry.
    pub retries: usize,
    /// Deterministic backoff units accounted across those retries.
    pub backoff_units: u64,
}

/// Deterministic fault-injection policy for testing the robustness
/// layer.
///
/// Whether a given call faults is decided by hashing the *content* of
/// the call (statement, statistic key) with `seed` — never by global
/// call order or wall-clock — so a schedule is independent of thread
/// count and cache warmth, and re-running the same session reproduces
/// the same faults. What-if faults classify per *statement*, so a
/// permanently-faulted statement fails for every configuration (the
/// evaluator degrades it to a constant fallback, which then cancels out
/// of configuration comparisons deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Seed decorrelating schedules from one another.
    pub seed: u64,
    /// Fraction of statements whose what-if calls fail transiently.
    pub whatif_transient_rate: f64,
    /// Fraction of statements whose what-if calls fail permanently.
    pub whatif_permanent_rate: f64,
    /// Fraction of statistics whose creation fails transiently.
    pub stats_transient_rate: f64,
    /// Fraction of statistics whose creation fails permanently.
    pub stats_permanent_rate: f64,
    /// Fraction of statements whose what-if calls *panic* (once per call
    /// site, then succeed) — exercises the panic-isolation layer: a
    /// worker that hits the panic is restarted and the re-run succeeds,
    /// so the session converges to the no-panic recommendation.
    pub whatif_panic_rate: f64,
    /// A transient schedule fails the first `1..=max_transient_failures`
    /// attempts of each call site (the exact count is hash-derived).
    pub max_transient_failures: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            seed: 0,
            whatif_transient_rate: 0.0,
            whatif_permanent_rate: 0.0,
            stats_transient_rate: 0.0,
            stats_permanent_rate: 0.0,
            whatif_panic_rate: 0.0,
            max_transient_failures: 2,
        }
    }
}

/// Live fault state: the policy plus per-call-site attempt counters for
/// transient schedules.
struct FaultState {
    policy: FaultPolicy,
    attempts: HashMap<u64, u32>,
}

/// A database server instance.
pub struct Server {
    /// Server name, for reports.
    pub name: String,
    catalog: Catalog,
    store: Store,
    stats: RwLock<StatisticsManager>,
    deployed: RwLock<Configuration>,
    hardware: RwLock<HardwareParams>,
    work: WorkCounter,
    whatif_invocations: AtomicU64,
    rng: Mutex<StdRng>,
    fault: Mutex<Option<FaultState>>,
}

impl Server {
    /// New empty server with production-default hardware.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            catalog: Catalog::new(),
            store: Store::new(),
            stats: RwLock::new(StatisticsManager::new()),
            deployed: RwLock::new(Configuration::new()),
            hardware: RwLock::new(HardwareParams::production_default()),
            work: WorkCounter::default(),
            whatif_invocations: AtomicU64::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(0x5EED)),
            fault: Mutex::new(None),
        }
    }

    /// Builder-style hardware override.
    pub fn with_hardware(self, hw: HardwareParams) -> Self {
        *self.hardware.write() = hw;
        self
    }

    // ---- fault injection -------------------------------------------------

    /// Install (or clear) a deterministic fault-injection policy.
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        *self.fault.lock() = policy.map(|policy| FaultState { policy, attempts: HashMap::new() });
    }

    /// Builder-style fault-policy override.
    pub fn with_fault_policy(self, policy: FaultPolicy) -> Self {
        self.set_fault_policy(Some(policy));
        self
    }

    /// The installed fault policy, if any.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.fault.lock().as_ref().map(|s| s.policy)
    }

    /// Decide whether this call faults. `classify` identifies the fault
    /// *domain member* (a statement, a statistic) — hashed with the seed
    /// it classifies the member as clean / transient / permanent, fixed
    /// for the whole session. `site` identifies the retryable call site
    /// (e.g. statement + configuration) whose attempt counter a
    /// transient schedule counts down on.
    fn fault_check(
        &self,
        domain: &str,
        classify: u64,
        site: u64,
        transient_rate: f64,
        permanent_rate: f64,
        what: &str,
    ) -> Result<(), ServerError> {
        let mut guard = self.fault.lock();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        let mut h = DefaultHasher::new();
        (state.policy.seed, domain, classify).hash(&mut h);
        let roll = h.finish();
        let u = (roll % 1_000_000) as f64 / 1_000_000.0;
        if u < permanent_rate {
            return Err(ServerError::Fault { kind: FaultKind::Permanent, what: what.to_string() });
        }
        if u < permanent_rate + transient_rate {
            let max = state.policy.max_transient_failures.max(1);
            let failures = 1 + ((roll >> 32) % max as u64) as u32;
            let mut hs = DefaultHasher::new();
            (state.policy.seed, domain, site).hash(&mut hs);
            let seen = state.attempts.entry(hs.finish()).or_insert(0);
            if *seen < failures {
                *seen += 1;
                return Err(ServerError::Fault {
                    kind: FaultKind::Transient,
                    what: what.to_string(),
                });
            }
        }
        Ok(())
    }

    // ---- catalog & data -------------------------------------------------

    /// Create a database (schema only).
    pub fn create_database(&mut self, db: Database) -> Result<(), ServerError> {
        db.validate()?;
        for t in db.tables() {
            self.store.create_table(&db.name, t);
        }
        self.catalog.add_database(db)?;
        Ok(())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The data store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable table data (bulk loading).
    pub fn table_data_mut(&mut self, database: &str, table: &str) -> Option<&mut TableData> {
        self.store.table_mut(database, table)
    }

    /// Total logical data size in bytes across all databases.
    pub fn total_data_bytes(&self) -> u64 {
        self.store.total_logical_bytes()
    }

    // ---- overhead metering ----------------------------------------------

    /// The overhead meter: all work this server performed on behalf of
    /// clients (what-if calls, statistics creation, execution).
    pub fn work(&self) -> &WorkCounter {
        &self.work
    }

    /// Work units accumulated so far.
    pub fn overhead_units(&self) -> f64 {
        self.work.work_units()
    }

    /// Reset the overhead meter.
    pub fn reset_overhead(&self) {
        self.work.reset();
    }

    /// What-if optimizer invocations observed at the server, including
    /// attempts rejected by an injected fault before any work was
    /// charged. This is the server's own ground-truth tally; the tuning
    /// layer's counter only sees its cost-cache misses.
    pub fn whatif_invocations(&self) -> u64 {
        self.whatif_invocations.load(Ordering::SeqCst)
    }

    fn charge_units(&self, units: f64) {
        // encode scalar units as CPU ops so the counter stays integral
        self.work.cpu((units / dta_storage::work::CPU_OP_WEIGHT) as u64);
    }

    // ---- hardware ---------------------------------------------------------

    /// The hardware parameters what-if calls currently model.
    pub fn hardware(&self) -> HardwareParams {
        *self.hardware.read()
    }

    /// Override the modeled hardware — used on a test server to simulate
    /// the production server's CPUs and memory (§5.3).
    pub fn simulate_hardware(&self, hw: HardwareParams) {
        *self.hardware.write() = hw;
    }

    // ---- configuration -----------------------------------------------------

    /// The currently deployed physical design.
    pub fn deployed(&self) -> Configuration {
        self.deployed.read().clone()
    }

    /// Implement a physical design (the `CREATE INDEX`/`CREATE VIEW` step
    /// after tuning). Validity is the caller's responsibility to check.
    pub fn deploy(&self, config: Configuration) {
        *self.deployed.write() = config;
    }

    /// The *raw* configuration of §7.1: only indexes that enforce
    /// referential-integrity constraints (primary keys) survive.
    pub fn raw_configuration(&self) -> Configuration {
        let mut cfg = Configuration::new();
        for db in self.catalog.databases() {
            for t in db.tables() {
                if !t.primary_key.is_empty() {
                    let keys: Vec<&str> = t.primary_key.iter().map(String::as_str).collect();
                    cfg.add(PhysicalStructure::Index(
                        Index::non_clustered(&db.name, &t.name, &keys, &[]).constraint(),
                    ));
                }
            }
        }
        cfg
    }

    // ---- what-if interface ---------------------------------------------

    /// A what-if optimizer call: the estimated best plan for `stmt` as if
    /// `config` were materialized. Charges optimization work to the
    /// overhead meter.
    pub fn whatif(
        &self,
        database: &str,
        stmt: &Statement,
        config: &Configuration,
    ) -> Result<Plan, ServerError> {
        // server-side invocation tally: every arrival counts, including
        // attempts an injected fault rejects before any work is charged
        // (the client-side what-if counter only sees cache misses)
        self.whatif_invocations.fetch_add(1, Ordering::SeqCst);
        // injected faults are decided before work is charged: a failed
        // attempt spends no server work, so a transient schedule that
        // retry absorbs leaves the overhead meter exactly where a
        // no-fault run would
        if let Some(policy) = self.fault_policy() {
            let stmt_text = stmt.to_string();
            let classify = {
                let mut h = DefaultHasher::new();
                (database, stmt_text.as_str()).hash(&mut h);
                h.finish()
            };
            let site = {
                // order-independent combine over the configuration so the
                // site key is stable however the structures are listed
                let (mut sum, mut xor) = (0u64, 0u64);
                for s in config.iter() {
                    let mut h = DefaultHasher::new();
                    s.hash(&mut h);
                    let v = h.finish();
                    sum = sum.wrapping_add(v);
                    xor ^= v;
                }
                let mut h = DefaultHasher::new();
                (classify, sum, xor).hash(&mut h);
                h.finish()
            };
            self.fault_check(
                "whatif",
                classify,
                site,
                policy.whatif_transient_rate,
                policy.whatif_permanent_rate,
                &format!("what-if optimization of `{stmt_text}` on {database}"),
            )?;
            if policy.whatif_panic_rate > 0.0 {
                // decide-and-count under the fault lock, panic after it is
                // dropped and before any work is charged: the rescued
                // retry of the same site succeeds, and every meter ends
                // exactly where a no-panic run would
                let should_panic = {
                    let mut guard = self.fault.lock();
                    match guard.as_mut() {
                        Some(state) => {
                            let mut h = DefaultHasher::new();
                            (state.policy.seed, "whatif-panic", classify).hash(&mut h);
                            let u = (h.finish() % 1_000_000) as f64 / 1_000_000.0;
                            if u < state.policy.whatif_panic_rate {
                                let mut hs = DefaultHasher::new();
                                (state.policy.seed, "whatif-panic", site).hash(&mut hs);
                                let seen = state.attempts.entry(hs.finish()).or_insert(0);
                                if *seen == 0 {
                                    *seen = 1;
                                    true
                                } else {
                                    false
                                }
                            } else {
                                false
                            }
                        }
                        None => false,
                    }
                };
                if should_panic {
                    // dta-lint: allow(R7): deliberate fault injection — the
                    // panic-isolation layer under test must catch this.
                    panic!("injected what-if panic for `{stmt_text}` on {database}");
                }
            }
        }
        let tables = stmt.referenced_tables().len() as f64;
        self.charge_units(WHATIF_BASE_UNITS + WHATIF_PER_TABLE_UNITS * tables * tables);
        let stats = self.stats.read();
        let opt = WhatIfOptimizer::new(&self.catalog, &stats, self, self.hardware());
        Ok(opt.optimize(database, stmt, config)?)
    }

    /// Estimated row count of a hypothetical materialized view.
    pub fn view_rows_estimate(&self, view: &MaterializedView) -> u64 {
        let stats = self.stats.read();
        let opt = WhatIfOptimizer::new(&self.catalog, &stats, self, self.hardware());
        opt.view_rows(view)
    }

    // ---- statistics -----------------------------------------------------

    /// Does the server already hold equivalent statistical information?
    pub fn statistics_cover(&self, key: &StatKey) -> bool {
        self.stats.read().covers(key)
    }

    /// Number of statistics held.
    pub fn statistics_count(&self) -> usize {
        self.stats.read().count()
    }

    /// Create one statistic by sampling stored data, charging the
    /// sampling I/O. Returns false when the table has no data here.
    pub fn create_statistic(&self, key: StatKey) -> bool {
        let Some(data) = self.store.table(&key.database, &key.table) else {
            return false;
        };
        if data.rows() == 0 {
            return false;
        }
        let mut rng = self.rng.lock();
        let stat = build_statistic(key, data, DEFAULT_SAMPLE_FRACTION, &mut *rng, &self.work);
        self.stats.write().add(stat);
        true
    }

    /// Decide whether creating `key` faults under the installed policy.
    fn stat_fault_check(&self, key: &StatKey) -> Result<(), ServerError> {
        let Some(policy) = self.fault_policy() else {
            return Ok(());
        };
        let classify = {
            let mut h = DefaultHasher::new();
            (key.database.as_str(), key.table.as_str(), &key.columns).hash(&mut h);
            h.finish()
        };
        self.fault_check(
            "stats",
            classify,
            classify,
            policy.stats_transient_rate,
            policy.stats_permanent_rate,
            &format!("statistics creation on {}.{} {:?}", key.database, key.table, key.columns),
        )
    }

    /// Create a batch of statistics, reporting how much work it took.
    ///
    /// Transient injected faults are absorbed by bounded retry with
    /// deterministic backoff accounting; a permanent fault (or exhausted
    /// retries) abandons that one statistic — it is counted in `failed`
    /// and the optimizer simply keeps its default estimates for those
    /// columns, which is a graceful degradation, not an error.
    pub fn create_statistics(&self, keys: &[StatKey]) -> StatsCreationReport {
        let before = self.work.snapshot();
        let retry = RetryPolicy::default();
        let mut created = 0;
        let mut failed = 0;
        let mut retries = 0;
        let mut backoff_units = 0u64;
        for key in keys {
            let mut attempt: u32 = 0;
            let ok = loop {
                match self.stat_fault_check(key) {
                    Ok(()) => break true,
                    Err(ServerError::Fault { kind: FaultKind::Transient, .. })
                        if retry.allows_retry(attempt) =>
                    {
                        retries += 1;
                        backoff_units = backoff_units.saturating_add(retry.backoff_units(attempt));
                        attempt += 1;
                    }
                    Err(_) => break false,
                }
            };
            if !ok {
                failed += 1;
                continue;
            }
            if self.create_statistic(key.clone()) {
                created += 1;
            }
        }
        let delta = self.work.snapshot().since(before);
        StatsCreationReport {
            created,
            requested: keys.len(),
            work_units: delta.work_units(),
            failed,
            retries,
            backoff_units,
        }
    }

    /// Direct read access to the statistics manager.
    pub fn with_statistics<R>(&self, f: impl FnOnce(&StatisticsManager) -> R) -> R {
        f(&self.stats.read())
    }

    /// Export all statistics of one database (ships summaries, not data).
    pub fn export_statistics(&self, database: &str) -> Vec<Statistic> {
        self.stats.read().export_database(database)
    }

    /// Import previously exported statistics (test-server side of §5.3).
    pub fn import_statistics(&self, stats: Vec<Statistic>) {
        self.stats.write().import(stats);
    }

    // ---- metadata scripting ------------------------------------------------

    /// Script out one database's metadata (no data). Logical row counts
    /// ride along so an importing test server costs queries as production
    /// would (§5.3).
    pub fn export_metadata(&self, database: &str) -> Result<MetadataScript, ServerError> {
        let mut db = self.catalog.database_required(database)?.clone();
        for t in db.tables_mut() {
            t.rows = self.store.table(database, &t.name).map_or(0, |d| d.logical_rows());
        }
        Ok(MetadataScript::export(&db))
    }

    /// Import a scripted database. Creates empty tables only.
    pub fn import_metadata(&mut self, script: &MetadataScript) -> Result<(), ServerError> {
        let db = script.import()?;
        self.create_database(db)
    }

    // ---- execution -------------------------------------------------------

    /// Optimize under the deployed configuration and execute, charging
    /// actual work to the overhead meter. SELECT only.
    pub fn execute(&self, database: &str, stmt: &Statement) -> Result<QueryResult, ServerError> {
        let deployed = self.deployed();
        let plan = {
            let stats = self.stats.read();
            let opt = WhatIfOptimizer::new(&self.catalog, &stats, self, self.hardware());
            opt.optimize(database, stmt, &deployed)?
        };
        let engine = Engine::new(&self.catalog, &self.store, self.hardware());
        let result = engine.execute_select(database, stmt, &plan)?;
        self.work.read_pages(result.work.io_pages as u64);
        self.work.cpu(result.work.cpu_ops as u64);
        Ok(result)
    }

    /// Estimated cost of a statement under the deployed configuration,
    /// without charging what-if overhead (for reporting).
    pub fn estimated_cost_deployed(
        &self,
        database: &str,
        stmt: &Statement,
    ) -> Result<f64, ServerError> {
        let deployed = self.deployed();
        let stats = self.stats.read();
        let opt = WhatIfOptimizer::new(&self.catalog, &stats, self, self.hardware());
        Ok(opt.optimize(database, stmt, &deployed)?.cost)
    }
}

impl TableStatsProvider for Server {
    fn rows(&self, database: &str, table: &str) -> u64 {
        // data if we have it; otherwise imported statistics, then scripted
        // metadata row counts (metadata-only test servers, §5.3)
        if let Some(d) = self.store.table(database, table) {
            if d.rows() > 0 {
                return d.logical_rows();
            }
        }
        if let Some(n) =
            self.stats.read().for_table(database, table).iter().map(|s| s.row_count).max()
        {
            return n;
        }
        self.catalog.database(database).and_then(|d| d.table(table)).map_or(0, |t| t.rows)
    }

    fn row_width(&self, database: &str, table: &str) -> u32 {
        self.catalog
            .database(database)
            .and_then(|d| d.table(table))
            .map(|t| t.row_width())
            .unwrap_or(64)
    }

    fn column_width(&self, database: &str, table: &str, column: &str) -> u32 {
        self.catalog
            .database(database)
            .and_then(|d| d.table(table))
            .and_then(|t| t.column(column))
            .map(|c| c.ty.width())
            .unwrap_or(8)
    }
}

impl SizingInfo for Server {
    fn table_rows(&self, database: &str, table: &str) -> u64 {
        TableStatsProvider::rows(self, database, table)
    }

    fn column_width(&self, database: &str, table: &str, column: &str) -> u32 {
        TableStatsProvider::column_width(self, database, table, column)
    }

    fn view_rows(&self, view: &MaterializedView) -> u64 {
        self.view_rows_estimate(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Table, Value};
    use dta_sql::parse_statement;

    fn make_server() -> Server {
        let mut server = Server::new("prod");
        let mut db = Database::new("shop");
        db.add_table(
            Table::new(
                "item",
                vec![
                    Column::new("id", ColumnType::BigInt),
                    Column::new("cat", ColumnType::Int),
                    Column::new("price", ColumnType::Float),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        server.create_database(db).unwrap();
        let data = server.table_data_mut("shop", "item").unwrap();
        for i in 0..5000i64 {
            data.push_row(vec![Value::Int(i), Value::Int(i % 50), Value::Float(i as f64)]);
        }
        server
    }

    #[test]
    fn whatif_charges_overhead() {
        let server = make_server();
        assert_eq!(server.overhead_units(), 0.0);
        assert_eq!(server.whatif_invocations(), 0);
        let stmt = parse_statement("SELECT price FROM item WHERE cat = 3").unwrap();
        let plan = server.whatif("shop", &stmt, &Configuration::new()).unwrap();
        assert!(plan.cost > 0.0);
        assert!(server.overhead_units() >= WHATIF_BASE_UNITS);
        assert_eq!(server.whatif_invocations(), 1);
        server.reset_overhead();
        assert_eq!(server.whatif_invocations(), 1, "invocation tally survives meter resets");
    }

    #[test]
    fn statistics_creation_and_coverage() {
        let server = make_server();
        let key = StatKey::new("shop", "item", &["cat", "price"]);
        assert!(!server.statistics_cover(&key));
        let report = server.create_statistics(std::slice::from_ref(&key));
        assert_eq!(report.created, 1);
        assert!(report.work_units > 0.0);
        assert!(server.statistics_cover(&key));
        assert!(server.statistics_cover(&StatKey::new("shop", "item", &["cat"])));
    }

    #[test]
    fn stats_improve_estimates() {
        let server = make_server();
        let stmt = parse_statement("SELECT price FROM item WHERE cat = 3").unwrap();
        let before = server.whatif("shop", &stmt, &Configuration::new()).unwrap();
        server.create_statistics(&[StatKey::new("shop", "item", &["cat"])]);
        let after = server.whatif("shop", &stmt, &Configuration::new()).unwrap();
        // 50 categories: with stats the estimate should move toward 2%
        assert!((after.est_rows - 100.0).abs() < 50.0, "rows={}", after.est_rows);
        let _ = before;
    }

    #[test]
    fn raw_configuration_has_pk_indexes() {
        let server = make_server();
        let raw = server.raw_configuration();
        assert_eq!(raw.len(), 1);
        let s = raw.iter().next().unwrap();
        match s {
            PhysicalStructure::Index(ix) => {
                assert!(ix.enforces_constraint);
                assert_eq!(ix.key_columns, vec!["id"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deploy_and_execute() {
        let server = make_server();
        let stmt = parse_statement("SELECT COUNT(*) FROM item WHERE cat = 7").unwrap();
        server.deploy(Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("shop", "item", &["cat"], &[]),
        )]));
        let res = server.execute("shop", &stmt).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(100));
        assert!(server.overhead_units() > 0.0);
    }

    #[test]
    fn metadata_roundtrip_between_servers() {
        let prod = make_server();
        let script = prod.export_metadata("shop").unwrap();
        let mut test = Server::new("test");
        test.import_metadata(&script).unwrap();
        assert!(test.catalog().database("shop").is_some());
        // no data came across
        assert_eq!(test.store().table("shop", "item").unwrap().rows(), 0);
        // but after importing statistics the test server knows row counts
        prod.create_statistics(&[StatKey::new("shop", "item", &["cat"])]);
        test.import_statistics(prod.export_statistics("shop"));
        assert_eq!(TableStatsProvider::rows(&test, "shop", "item"), 5000);
    }

    #[test]
    fn hardware_simulation() {
        let server = make_server();
        let small = HardwareParams::test_default();
        server.simulate_hardware(small);
        assert_eq!(server.hardware(), small);
    }

    #[test]
    fn overhead_reset() {
        let server = make_server();
        let stmt = parse_statement("SELECT id FROM item").unwrap();
        server.whatif("shop", &stmt, &Configuration::new()).unwrap();
        assert!(server.overhead_units() > 0.0);
        server.reset_overhead();
        assert_eq!(server.overhead_units(), 0.0);
    }
}
