//! Server facade: the "Microsoft SQL Server" of the reproduction.
//!
//! A [`Server`] owns a catalog, a data store, a statistics cache, a
//! deployed physical configuration, and hardware parameters. It exposes
//! exactly the surface DTA consumes:
//!
//! * **what-if optimization** ([`Server::whatif`]) — every call is charged
//!   to the server's overhead meter, which is how Figure 3's "overhead on
//!   the production server" is measured;
//! * **statistics creation** ([`Server::create_statistics`]) — sampled
//!   from the stored data, charging sampling I/O;
//! * **metadata and statistics export/import** — the §5.3 production/
//!   test-server plumbing (no data is ever copied);
//! * **deployment and execution** — implement a recommendation and run
//!   statements against it with actual-work metering.
//!
//! [`TuningTarget`] wraps either a single server or a production+test
//! pair, routing what-if calls to the test server and statistics
//! creation to the production server, exactly as §5.3 prescribes.

pub mod server;
pub mod target;

pub use server::{
    FaultPolicy, Server, StatsCreationReport, WHATIF_BASE_UNITS, WHATIF_PER_TABLE_UNITS,
};
pub use target::{prepare_test_server, TuningTarget};

/// How an injected fault behaves (see [`FaultPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails a bounded number of attempts, then succeeds — a retry
    /// should absorb it.
    Transient,
    /// Fails every attempt — the caller must degrade gracefully.
    Permanent,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// Errors from server operations.
#[derive(Debug)]
pub enum ServerError {
    Catalog(dta_catalog::CatalogError),
    Bind(dta_optimizer::BindError),
    Exec(dta_engine::ExecError),
    /// A deterministically injected fault (see [`FaultPolicy`]).
    Fault {
        /// Transient (retryable) or permanent.
        kind: FaultKind,
        /// What failed, for reports.
        what: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Catalog(e) => write!(f, "catalog: {e}"),
            ServerError::Bind(e) => write!(f, "bind: {e}"),
            ServerError::Exec(e) => write!(f, "exec: {e}"),
            ServerError::Fault { kind, what } => write!(f, "{kind} fault: {what}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<dta_catalog::CatalogError> for ServerError {
    fn from(e: dta_catalog::CatalogError) -> Self {
        ServerError::Catalog(e)
    }
}

impl From<dta_optimizer::BindError> for ServerError {
    fn from(e: dta_optimizer::BindError) -> Self {
        ServerError::Bind(e)
    }
}

impl From<dta_engine::ExecError> for ServerError {
    fn from(e: dta_engine::ExecError) -> Self {
        ServerError::Exec(e)
    }
}
