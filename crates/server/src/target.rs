//! Tuning targets: single-server and production/test-server tuning.
//!
//! §5.3: DTA can exploit a test server to tune a production database
//! *without copying the data*. Metadata and statistics are imported into
//! the test server; the test server simulates the production hardware;
//! what-if calls run on the test server; only statistics creation (which
//! needs the actual data) touches the production server.

use crate::server::{Server, StatsCreationReport};
use crate::ServerError;
use dta_catalog::Catalog;
use dta_optimizer::Plan;
use dta_physical::{Configuration, MaterializedView};
use dta_sql::Statement;
use dta_stats::{reduce_statistics, StatKey};

/// Where DTA's server interactions go.
pub enum TuningTarget<'a> {
    /// Everything runs on one server.
    Single(&'a Server),
    /// What-if calls on `test`, statistics creation on `production`.
    ProdTest { production: &'a Server, test: &'a Server },
}

impl<'a> TuningTarget<'a> {
    /// The server what-if calls and catalog reads go to.
    pub fn whatif_server(&self) -> &'a Server {
        match self {
            TuningTarget::Single(s) => s,
            TuningTarget::ProdTest { test, .. } => test,
        }
    }

    /// The server holding the actual data.
    pub fn data_server(&self) -> &'a Server {
        match self {
            TuningTarget::Single(s) => s,
            TuningTarget::ProdTest { production, .. } => production,
        }
    }

    /// Catalog the advisor tunes against.
    pub fn catalog(&self) -> &'a Catalog {
        self.whatif_server().catalog()
    }

    /// A what-if optimizer call.
    pub fn whatif(
        &self,
        database: &str,
        stmt: &Statement,
        config: &Configuration,
    ) -> Result<Plan, ServerError> {
        self.whatif_server().whatif(database, stmt, config)
    }

    /// Estimated row count of a hypothetical view.
    pub fn view_rows_estimate(&self, view: &MaterializedView) -> u64 {
        self.whatif_server().view_rows_estimate(view)
    }

    /// Ensure the statistics `required` (by the indexes/views under
    /// consideration) exist where what-if calls run.
    ///
    /// With `use_reduction` the §5.2 greedy covering first eliminates
    /// redundant statistics; without it, every non-covered statistic is
    /// created (the naïve strategy, kept for the §7.5 experiment).
    ///
    /// Creation always happens on the data server (sampling needs data);
    /// in the production/test scenario the new statistics are then
    /// imported into the test server.
    pub fn ensure_statistics(
        &self,
        required: &[StatKey],
        use_reduction: bool,
    ) -> StatsCreationReport {
        let whatif_server = self.whatif_server();
        let to_create: Vec<StatKey> = if use_reduction {
            whatif_server.with_statistics(|existing| reduce_statistics(required, existing)).chosen
        } else {
            let mut uncovered: Vec<StatKey> = Vec::new();
            for k in required {
                if !whatif_server.statistics_cover(k) && !uncovered.contains(k) {
                    uncovered.push(k.clone());
                }
            }
            uncovered
        };
        let report = self.data_server().create_statistics(&to_create);
        if let TuningTarget::ProdTest { production, test } = self {
            // ship only the statistics for affected databases
            let mut dbs: Vec<&str> = to_create.iter().map(|k| k.database.as_str()).collect();
            dbs.sort_unstable();
            dbs.dedup();
            for db in dbs {
                test.import_statistics(production.export_statistics(db));
            }
        }
        StatsCreationReport { requested: required.len(), ..report }
    }
}

/// Set up a test server for tuning a production server (§5.3 Step 1):
/// import metadata of every database (no data), copy existing statistics,
/// and simulate the production hardware.
pub fn prepare_test_server(production: &Server, test: &mut Server) -> Result<(), ServerError> {
    let dbs: Vec<String> = production.catalog().databases().map(|d| d.name.clone()).collect();
    for db in &dbs {
        let script = production.export_metadata(db)?;
        test.import_metadata(&script)?;
        test.import_statistics(production.export_statistics(db));
    }
    test.simulate_hardware(production.hardware());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_sql::parse_statement;

    fn production() -> Server {
        let mut server = Server::new("prod");
        let mut db = Database::new("d");
        db.add_table(Table::new(
            "t",
            vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Int)],
        ))
        .unwrap();
        server.create_database(db).unwrap();
        let data = server.table_data_mut("d", "t").unwrap();
        for i in 0..10_000i64 {
            data.push_row(vec![Value::Int(i % 100), Value::Int(i)]);
        }
        server
    }

    #[test]
    fn prod_test_routing() {
        let prod = production();
        let mut test = Server::new("test");
        prepare_test_server(&prod, &mut test).unwrap();
        let target = TuningTarget::ProdTest { production: &prod, test: &test };

        prod.reset_overhead();
        test.reset_overhead();

        // stats creation lands on production
        let report = target.ensure_statistics(&[StatKey::new("d", "t", &["a"])], true);
        assert_eq!(report.created, 1);
        assert!(prod.overhead_units() > 0.0, "stats sampling runs on production");

        let prod_after_stats = prod.overhead_units();

        // what-if calls land on the test server only
        let stmt = parse_statement("SELECT b FROM t WHERE a = 5").unwrap();
        for _ in 0..10 {
            target.whatif("d", &stmt, &Configuration::new()).unwrap();
        }
        assert_eq!(prod.overhead_units(), prod_after_stats);
        assert!(test.overhead_units() > 0.0);
    }

    #[test]
    fn test_server_estimates_match_production() {
        // §5.3's premise: with metadata + statistics + hardware simulation,
        // the test server produces the same plans/costs as production would
        let prod = production();
        prod.create_statistics(&[StatKey::new("d", "t", &["a"]), StatKey::new("d", "t", &["b"])]);
        let mut test = Server::new("test");
        prepare_test_server(&prod, &mut test).unwrap();

        let stmt = parse_statement("SELECT b FROM t WHERE a = 5").unwrap();
        let cfg = Configuration::from_structures([dta_physical::PhysicalStructure::Index(
            dta_physical::Index::non_clustered("d", "t", &["a"], &["b"]),
        )]);
        let on_prod = prod.whatif("d", &stmt, &cfg).unwrap();
        let on_test = test.whatif("d", &stmt, &cfg).unwrap();
        assert!(
            (on_prod.cost - on_test.cost).abs() < 1e-9,
            "prod {} vs test {}",
            on_prod.cost,
            on_test.cost
        );
        assert_eq!(on_prod.used_structures(), on_test.used_structures());
    }

    #[test]
    fn reduction_creates_fewer_statistics() {
        let prod = production();
        let target = TuningTarget::Single(&prod);
        let required = vec![
            StatKey::new("d", "t", &["a"]),
            StatKey::new("d", "t", &["a", "b"]),
            StatKey::new("d", "t", &["b", "a"]),
            StatKey::new("d", "t", &["b"]),
        ];
        let report = target.ensure_statistics(&required, true);
        assert!(report.created < required.len(), "created={}", report.created);
        // everything is covered afterwards
        for k in &required {
            assert!(prod.statistics_cover(k), "{k:?} not covered");
        }
    }

    #[test]
    fn naive_creates_all_uncovered() {
        let prod = production();
        let target = TuningTarget::Single(&prod);
        let required = vec![StatKey::new("d", "t", &["a"]), StatKey::new("d", "t", &["a", "b"])];
        let report = target.ensure_statistics(&required, false);
        assert_eq!(report.created, 2);
    }
}
