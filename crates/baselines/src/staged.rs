//! Staged physical design selection — the §3 strawman.
//!
//! Example 2: a staged solution that first selects the best clustered
//! index and only then considers partitioning can never discover that
//! the optimum is "clustered index on A *and* range partitioning on X",
//! because stage 1 grabs X for the clustered index. Integrated selection
//! considers the features together.

use dta_core::session::TuneError;
use dta_core::{tune, FeatureSet, TuningOptions, TuningResult};
use dta_physical::Configuration;
use dta_server::TuningTarget;
use dta_workload::Workload;

/// One stage: which features this stage may pick.
#[derive(Debug, Clone, Copy)]
pub struct StagePlan {
    pub features: FeatureSet,
    /// Storage budget for this stage (the ad-hoc split the paper calls
    /// out: "how to divide up the overall storage ... for each step").
    pub storage_bytes: Option<u64>,
}

/// Tune in stages: each stage's recommendation becomes a fixed
/// user-specified configuration for the next. Returns the final result
/// with work metrics accumulated across stages.
pub fn tune_staged(
    target: &TuningTarget<'_>,
    workload: &Workload,
    stages: &[StagePlan],
    base_options: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    assert!(!stages.is_empty(), "at least one stage");
    let raw = target.whatif_server().raw_configuration();
    let mut fixed: Option<Configuration> = base_options.user_specified.clone();
    let mut last: Option<TuningResult> = None;
    let mut total_whatif = 0usize;
    let mut total_evals = 0usize;
    let mut total_units = 0.0f64;

    for stage in stages {
        let options = TuningOptions {
            features: stage.features,
            storage_bytes: stage.storage_bytes,
            user_specified: fixed.clone(),
            ..base_options.clone()
        };
        let result = tune(target, workload, &options)?;
        total_whatif += result.whatif_calls;
        total_evals += result.evaluations;
        total_units += result.tuning_work_units;
        // everything chosen so far (beyond constraints) is frozen
        let chosen: Configuration =
            result.recommendation.difference(&raw).into_iter().cloned().collect();
        fixed = Some(chosen);
        last = Some(result);
    }

    let mut result = last.expect("at least one stage ran");
    result.whatif_calls = total_whatif;
    result.evaluations = total_evals;
    result.tuning_work_units = total_units;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_server::Server;
    use dta_sql::parse_statement;
    use dta_workload::WorkloadItem;

    /// The Example-1/Example-2 setting: SELECT A, COUNT(*) FROM T WHERE
    /// X < c GROUP BY A, where both clustering and partitioning compete
    /// for column X.
    fn setup() -> (Server, Workload) {
        let mut server = Server::new("s");
        let mut db = Database::new("d");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("x", ColumnType::Int),
                Column::new("pad", ColumnType::Str(60)),
            ],
        ))
        .unwrap();
        server.create_database(db).unwrap();
        let data = server.table_data_mut("d", "t").unwrap();
        for i in 0..50_000i64 {
            data.push_row(vec![
                Value::Int(i % 200),
                Value::Int(i % 1000),
                Value::Str(format!("{i:060}")),
            ]);
        }
        data.set_scale(40.0);
        let mut items = Vec::new();
        for i in 0..12 {
            items.push(WorkloadItem::new(
                "d",
                parse_statement(&format!(
                    "SELECT a, COUNT(*) FROM t WHERE x < {} GROUP BY a",
                    100 + i * 50
                ))
                .unwrap(),
            ));
        }
        (server, Workload::from_items(items))
    }

    #[test]
    fn integrated_beats_or_matches_staged() {
        let (server, workload) = setup();
        let target = TuningTarget::Single(&server);
        let base = TuningOptions {
            parallel_workers: 1,
            features: FeatureSet { indexes: true, views: false, partitioning: true },
            ..Default::default()
        };

        // staged: clustered/indexes first, then partitioning
        let staged = tune_staged(
            &target,
            &workload,
            &[
                StagePlan { features: FeatureSet::indexes_only(), storage_bytes: None },
                StagePlan {
                    features: FeatureSet { indexes: false, views: false, partitioning: true },
                    storage_bytes: None,
                },
            ],
            &base,
        )
        .unwrap();

        // integrated: both features together
        let integrated = tune(&target, &workload, &base).unwrap();

        let q = |r: &TuningResult| {
            dta_core::workload_cost(&target, &workload, &r.recommendation).unwrap()
        };
        let staged_cost = q(&staged);
        let integrated_cost = q(&integrated);
        assert!(
            integrated_cost <= staged_cost * 1.001,
            "integrated {integrated_cost} should not lose to staged {staged_cost}"
        );
    }

    #[test]
    fn staged_stages_accumulate_metrics() {
        let (server, workload) = setup();
        let target = TuningTarget::Single(&server);
        let base = TuningOptions { parallel_workers: 1, ..Default::default() };
        let one = tune(&target, &workload, &base).unwrap();
        let two = tune_staged(
            &target,
            &workload,
            &[
                StagePlan { features: FeatureSet::indexes_only(), storage_bytes: None },
                StagePlan { features: FeatureSet::all(), storage_bytes: None },
            ],
            &base,
        )
        .unwrap();
        assert!(two.whatif_calls > one.whatif_calls / 2);
        assert!(two.tuning_work_units > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_panics() {
        let (server, workload) = setup();
        let target = TuningTarget::Single(&server);
        let _ = tune_staged(&target, &workload, &[], &TuningOptions::default());
    }
}
