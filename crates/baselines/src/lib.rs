//! Baselines DTA is compared against in the paper's evaluation.
//!
//! * [`itw`] — the Index Tuning Wizard for SQL Server 2000 (§7.6): the
//!   previous-generation tool DTA builds on. It tunes indexes and
//!   materialized views only, has no workload compression, no
//!   column-group restriction, no reduced statistics creation, and a
//!   plain greedy search — which is exactly why Figure 5 shows DTA
//!   dramatically faster on large workloads while Figure 4 shows
//!   comparable (slightly worse) quality.
//! * [`staged`] — staged feature selection (§3, Example 2): tune one
//!   feature class at a time, feeding each stage's choices into the next
//!   as a fixed user-specified configuration. The ablation shows why
//!   integrated selection matters.

pub mod itw;
pub mod staged;

pub use itw::tune_itw;
pub use staged::{tune_staged, StagePlan};
