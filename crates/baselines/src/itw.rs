//! Index Tuning Wizard (SQL Server 2000) as a baseline.

use dta_core::session::TuneError;
use dta_core::{tune, FeatureSet, TuningOptions, TuningResult};
use dta_server::TuningTarget;
use dta_workload::Workload;

/// Tuning options approximating ITW for SQL Server 2000:
///
/// * indexes + materialized views only (no partitioning — ITW predates
///   SQL Server 2005's partitioning support);
/// * no workload compression: every statement is tuned;
/// * no column-group restriction: all column-groups considered;
/// * plain greedy per-query search (Greedy(1, k));
/// * naive statistics creation (no §5.2 reduction).
pub fn itw_options() -> TuningOptions {
    TuningOptions {
        features: FeatureSet::indexes_and_views(),
        compress: false,
        reduce_statistics: false,
        colgroup_cost_threshold: 0.0,
        greedy_m: 1,
        ..Default::default()
    }
}

/// Run the ITW baseline.
pub fn tune_itw(
    target: &TuningTarget<'_>,
    workload: &Workload,
    storage_bytes: Option<u64>,
) -> Result<TuningResult, TuneError> {
    let options = TuningOptions { storage_bytes, ..itw_options() };
    tune(target, workload, &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_physical::PhysicalStructure;
    use dta_server::Server;
    use dta_sql::parse_statement;
    use dta_workload::WorkloadItem;

    fn setup() -> (Server, Workload) {
        let mut server = Server::new("s");
        let mut db = Database::new("d");
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::new("k", ColumnType::BigInt),
                    Column::new("a", ColumnType::Int),
                    Column::new("d", ColumnType::Int),
                    Column::new("pad", ColumnType::Str(60)),
                ],
            )
            .with_primary_key(&["k"]),
        )
        .unwrap();
        server.create_database(db).unwrap();
        let data = server.table_data_mut("d", "t").unwrap();
        for i in 0..30_000i64 {
            data.push_row(vec![
                Value::Int(i),
                Value::Int(i % 700),
                Value::Int(i % 11),
                Value::Str(format!("{i:060}")),
            ]);
        }
        data.set_scale(30.0);
        // a templatized workload (compressible — but ITW won't)
        let mut items = Vec::new();
        for i in 0..60 {
            items.push(WorkloadItem::new(
                "d",
                parse_statement(&format!("SELECT pad FROM t WHERE a = {}", i * 11 % 700)).unwrap(),
            ));
        }
        (server, Workload::from_items(items))
    }

    #[test]
    fn itw_improves_but_tunes_everything() {
        let (server, workload) = setup();
        let target = TuningTarget::Single(&server);
        let itw = tune_itw(&target, &workload, None).unwrap();
        assert!(itw.expected_improvement() > 0.5);
        // no compression: every statement tuned
        assert_eq!(itw.statements_tuned, workload.len());
        // no partitioning ever
        for s in itw.recommendation.iter() {
            assert!(!matches!(s, PhysicalStructure::TablePartitioning { .. }));
            if let PhysicalStructure::Index(ix) = s {
                assert!(ix.partitioning.is_none());
            }
        }
    }

    #[test]
    fn dta_is_faster_on_templatized_workloads() {
        let (server, workload) = setup();
        let target = TuningTarget::Single(&server);
        server.reset_overhead();
        let itw = tune_itw(&target, &workload, None).unwrap();
        let itw_work = itw.tuning_work_units;
        let dta = dta_core::tune(
            &target,
            &workload,
            &dta_core::TuningOptions { parallel_workers: 1, ..Default::default() },
        )
        .unwrap();
        assert!(
            dta.tuning_work_units < itw_work * 0.5,
            "DTA {} !< 0.5 x ITW {}",
            dta.tuning_work_units,
            itw_work
        );
        // quality comparable (DTA at least as good, within noise)
        assert!(dta.expected_improvement() >= itw.expected_improvement() - 0.05);
    }
}
