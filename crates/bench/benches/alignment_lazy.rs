//! §4 ablation: lazy vs eager alignment-candidate introduction.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::advisor::{tune, AlignmentMode, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;
use dta_bench::{alignment_ablation, pct, RunScale};

fn bench(c: &mut Criterion) {
    let r = alignment_ablation(RunScale::quick());
    println!(
        "--- §4 ablation (quick): lazy pool {} / {:.0} units vs eager pool {} / {:.0} units; quality {:.1}% vs {:.1}% ---",
        r.lazy_pool,
        r.lazy_work_units,
        r.eager_pool,
        r.eager_work_units,
        pct(r.lazy_quality),
        pct(r.eager_quality)
    );

    let server = tpch::build_server(tpch::TpchScale::tiny(), 42);
    let workload = tpch::workload();
    let mut g = c.benchmark_group("alignment");
    g.sample_size(10);
    for (label, mode) in [("lazy", AlignmentMode::Lazy), ("eager", AlignmentMode::Eager)] {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let target = TuningTarget::Single(&server);
                tune(&target, &workload, &TuningOptions { alignment: mode, ..Default::default() })
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
