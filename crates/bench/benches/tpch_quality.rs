//! §7.2: TPC-H estimated vs actual improvement. Prints the regenerated
//! numbers once, then times a single TPC-H tuning pass.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;
use dta_bench::{pct, tpch_quality, RunScale};

fn bench(c: &mut Criterion) {
    let r = tpch_quality(RunScale::quick());
    println!(
        "--- §7.2 (quick): expected {:>5.1}% (paper 88%)  actual {:>5.1}% (paper 83%) ---",
        pct(r.expected_improvement),
        pct(r.actual_improvement)
    );

    let server = tpch::build_server(tpch::TpchScale::tiny(), 42);
    let workload = tpch::workload();
    let mut g = c.benchmark_group("tpch");
    g.sample_size(10);
    g.bench_function("tune_22_queries", |bench| {
        bench.iter(|| {
            let target = TuningTarget::Single(&server);
            tune(&target, &workload, &TuningOptions::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
