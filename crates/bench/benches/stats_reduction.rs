//! §7.5: reduced statistics creation. Prints the regenerated rows once,
//! then times the greedy H-List/D-List covering on a large request set.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::stats::{reduce_statistics, StatKey, StatisticsManager};
use dta_bench::{pct, stats_reduction, RunScale};

fn bench(c: &mut Criterion) {
    println!("--- §7.5 (quick scale) ---");
    for r in stats_reduction(RunScale::quick()) {
        println!(
            "{:<7} count -{:>3.0}% (paper -{:>3.0}%)  time -{:>3.0}% (paper -{:>3.0}%)  Δqual {:>4.2}%",
            r.name,
            pct(r.count_reduction()),
            pct(r.paper_count_reduction),
            pct(r.time_reduction()),
            pct(r.paper_time_reduction),
            pct(r.quality_delta)
        );
    }

    // a realistic request set: all prefixes/permutation-pairs over 8
    // columns of 20 tables
    let cols = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let mut required = Vec::new();
    for t in 0..20 {
        let table = format!("t{t}");
        for i in 0..cols.len() {
            required.push(StatKey::new("db", &table, &[cols[i]]));
            for j in 0..cols.len() {
                if i != j {
                    required.push(StatKey::new("db", &table, &[cols[i], cols[j]]));
                }
            }
        }
    }
    let mut g = c.benchmark_group("stats_reduction");
    g.bench_function("greedy_cover_1280_keys", |bench| {
        bench.iter(|| reduce_statistics(&required, &StatisticsManager::new()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
