//! Table 2: DTA vs hand-tuned quality on the customer workloads.
//! Prints the regenerated table once, then times tuning of the smallest
//! customer workload (CUST4).

use criterion::{criterion_group, criterion_main, Criterion};
use dta::advisor::{tune, TuningOptions};
use dta::prelude::*;
use dta::workload::cust::{build, CustId};
use dta_bench::{pct, table2, RunScale};

fn bench(c: &mut Criterion) {
    println!("--- Table 2 (quick scale) ---");
    for r in table2(RunScale::quick()) {
        println!(
            "{:<7} hand {:>5.1}% (paper {:>5.1}%)  DTA {:>5.1}% (paper {:>5.1}%)",
            r.name,
            pct(r.quality_hand),
            pct(r.paper_quality_hand),
            pct(r.quality_dta),
            pct(r.paper_quality_dta)
        );
    }

    let b = build(CustId::Cust4, 0.02, 42);
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("tune_cust4", |bench| {
        bench.iter(|| {
            let target = TuningTarget::Single(&b.server);
            tune(&target, &b.workload, &TuningOptions::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
