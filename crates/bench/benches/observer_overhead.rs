//! Observer overhead on the enumeration hot path: the same Greedy(m,k)
//! search driven through `enumerate_observed` with the zero-cost
//! `NoopObserver` versus a live `RecordingObserver`.
//!
//! The noop observer is a unit struct whose trait methods are empty
//! defaults — the compiler sees static no-ops behind a vtable, so the
//! cost per evaluation must be noise against a what-if call, same
//! acceptance bar as `budget_overhead`: <2%. Spans are entered only at
//! serial coordination points (twice per greedy run), so even the
//! recording observer's mutex is far off the hot path; the bench prints
//! both ratios and asserts the recommendation is byte-identical under
//! either observer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta::advisor::candidates::select_candidates;
use dta::advisor::colgroups::interesting_column_groups;
use dta::advisor::cost::CostEvaluator;
use dta::advisor::enumeration::enumerate_observed;
use dta::advisor::merging::merge_candidates;
use dta::advisor::{RecordingObserver, SessionControl, SessionObserver, TuningOptions};
use dta::prelude::*;
use dta::stats::StatKey;
use std::collections::BTreeSet;

fn make_server() -> Server {
    let mut server = Server::new("bench");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("m", ColumnType::Int),
                Column::new("val", ColumnType::Float),
                Column::new("pad", ColumnType::Str(60)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "dim",
            vec![Column::new("dk", ColumnType::Int), Column::new("dname", ColumnType::Str(20))],
        )
        .with_primary_key(&["dk"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    {
        let t = server.table_data_mut("d", "fact").unwrap();
        for i in 0..30_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 1500),
                Value::Int(i % 700),
                Value::Int(i % 25),
                Value::Int(i % 12),
                Value::Float((i % 997) as f64),
                Value::Str(format!("{:=<60}", i)),
            ]);
        }
        t.set_scale(20.0);
    }
    {
        let t = server.table_data_mut("d", "dim").unwrap();
        for i in 0..1500i64 {
            t.push_row(vec![Value::Int(i), Value::Str(format!("dim{i}"))]);
        }
    }
    server
}

fn make_workload() -> Workload {
    let mut items = Vec::new();
    let mut sel = |sql: String| items.push(WorkloadItem::new("d", parse_statement(&sql).unwrap()));
    for i in 0..10 {
        sel(format!("SELECT pad FROM fact WHERE a = {}", i * 13 % 1500));
        sel(format!("SELECT val FROM fact WHERE b = {}", i * 7 % 700));
    }
    for i in 0..6 {
        sel(format!("SELECT g, COUNT(*), SUM(val) FROM fact WHERE m = {} GROUP BY g", i % 12));
        sel(format!("SELECT a, SUM(val) FROM fact WHERE g = {} GROUP BY a", i % 25));
    }
    for i in 0..4 {
        sel(format!("SELECT dname FROM fact, dim WHERE fact.a = dim.dk AND fact.k = {}", i * 500));
        sel(format!("SELECT val FROM fact WHERE a = {} AND b = {}", i * 11 % 1500, i * 5 % 700));
    }
    Workload::from_items(items)
}

fn bench(c: &mut Criterion) {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = make_workload();
    let items = &workload.items;
    let base = server.raw_configuration();
    let options = TuningOptions { parallel_workers: 1, compress: false, ..Default::default() };

    // build the candidate pool once (selection is not what's measured)
    let pre_eval = CostEvaluator::new(&target, items);
    let pre_costs: Vec<f64> =
        (0..items.len()).map(|i| pre_eval.item_cost(i, &base).unwrap()).collect();
    let groups = interesting_column_groups(
        target.catalog(),
        items,
        &pre_costs,
        options.colgroup_cost_threshold,
    );
    let mut required: Vec<StatKey> = Vec::new();
    let mut table_keys: BTreeSet<(String, String)> = BTreeSet::new();
    for item in items.iter() {
        for t in item.statement.referenced_tables() {
            table_keys.insert((item.database.clone(), t.to_string()));
        }
    }
    for (db, table) in &table_keys {
        for group in groups.for_table(db, table) {
            let cols: Vec<String> = group.iter().cloned().collect();
            required.push(StatKey { database: db.clone(), table: table.clone(), columns: cols });
        }
    }
    target.ensure_statistics(&required, options.reduce_statistics);
    let sel_eval = CostEvaluator::new(&target, items);
    let mut pool =
        select_candidates(&sel_eval, &base, &groups, &options, &SessionControl::unlimited());
    merge_candidates(&mut pool);

    let run = |obs: &dyn SessionObserver| {
        // cold cache + fresh control each run so both observers do the
        // same work over the same counter set
        let control = SessionControl::unlimited();
        obs.attach_counters(control.counters());
        let eval = CostEvaluator::with_counters(
            &target,
            items,
            std::sync::Arc::clone(control.counters()),
        );
        enumerate_observed(&eval, &base, &pool.candidates, &server, &options, &control, None, obs)
            .result
    };

    // the observers must be byte-identical in everything but timing
    let noop = run(&dta::advisor::NoopObserver);
    let recording = RecordingObserver::new();
    let recorded = run(&recording);
    assert_eq!(
        format!("{:.6} {}", noop.cost, noop.configuration),
        format!("{:.6} {}", recorded.cost, recorded.configuration),
        "observer changed the recommendation"
    );
    assert_eq!(noop.evaluations, recorded.evaluations);
    let summary = recording.summary().expect("recording observer yields a summary");
    assert!(
        summary.spans.iter().any(|s| s.path == "greedyPhase1"),
        "phase spans recorded: {summary:?}"
    );

    // direct wall-clock ratio over interleaved runs (interleaving cancels
    // drift; criterion's per-group stats follow below)
    let rounds = 6;
    let mut t_noop = std::time::Duration::ZERO;
    let mut t_recording = std::time::Duration::ZERO;
    for _ in 0..rounds {
        let s = std::time::Instant::now();
        black_box(run(&dta::advisor::NoopObserver));
        t_noop += s.elapsed();
        let s = std::time::Instant::now();
        black_box(run(&RecordingObserver::new()));
        t_recording += s.elapsed();
    }
    let overhead = (t_recording.as_secs_f64() / t_noop.as_secs_f64() - 1.0) * 100.0;
    println!(
        "--- observer overhead over {} candidates, {} evaluations: {:+.2}% \
         (noop {:?}, recording {:?}; acceptance bar <2%) ---",
        pool.candidates.len(),
        noop.evaluations,
        overhead,
        t_noop / rounds,
        t_recording / rounds,
    );

    let mut g = c.benchmark_group("observer_overhead");
    g.sample_size(10);
    g.bench_function("observer=noop", |bench| {
        bench.iter(|| black_box(run(&dta::advisor::NoopObserver)))
    });
    g.bench_function("observer=recording", |bench| {
        bench.iter(|| black_box(run(&RecordingObserver::new())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
