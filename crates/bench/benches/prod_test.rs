//! Figure 3: production-server overhead with and without a test server.
//! Prints the regenerated bars once, then times the metadata+statistics
//! import that makes the scenario possible.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::prelude::*;
use dta::workload::tpch;
use dta_bench::{figure3, pct, RunScale};

fn bench(c: &mut Criterion) {
    println!("--- Figure 3 (quick scale) ---");
    for r in figure3(RunScale::quick()) {
        println!(
            "{:<10} reduction {:>4.0}% (paper {:>4.0}%)",
            r.label,
            pct(r.reduction),
            pct(r.paper_reduction)
        );
    }

    let production = tpch::build_server(tpch::TpchScale::tiny(), 42);
    let mut g = c.benchmark_group("prod_test");
    g.sample_size(10);
    g.bench_function("prepare_test_server", |bench| {
        bench.iter(|| {
            let mut test = Server::new("test");
            prepare_test_server(&production, &mut test).unwrap();
            test
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
