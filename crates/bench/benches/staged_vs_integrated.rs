//! §3 Example 2 ablation: integrated vs staged feature selection.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::advisor::{tune, FeatureSet, TuningOptions};
use dta::prelude::*;
use dta::workload::tpch;
use dta_bench::{pct, staged_vs_integrated, RunScale};

fn bench(c: &mut Criterion) {
    let r = staged_vs_integrated(RunScale::quick());
    println!(
        "--- §3 ablation (quick): integrated {:>5.1}% vs staged {:>5.1}% ---",
        pct(r.integrated_quality),
        pct(r.staged_quality)
    );

    let server = tpch::build_server(tpch::TpchScale::tiny(), 42);
    let workload = tpch::workload();
    let mut g = c.benchmark_group("staged");
    g.sample_size(10);
    g.bench_function("integrated_tpch", |bench| {
        bench.iter(|| {
            let target = TuningTarget::Single(&server);
            tune(
                &target,
                &workload,
                &TuningOptions {
                    features: FeatureSet { indexes: true, views: false, partitioning: true },
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
