//! Parallel enumeration: wall-clock and what-if call counts at 1, 2 and
//! 4 workers over the same candidate pool.
//!
//! The pool is built once (selection phase); each sample then runs
//! enumeration from a cold cost cache so every worker count performs the
//! same search. Results are byte-identical across worker counts by
//! construction — the bench asserts it — so the only thing that varies
//! is wall-clock. Speedup requires actual cores; on a single-core host
//! the worker counts tie (thread overhead aside).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta::advisor::candidates::select_candidates;
use dta::advisor::colgroups::interesting_column_groups;
use dta::advisor::cost::CostEvaluator;
use dta::advisor::enumeration::enumerate;
use dta::advisor::merging::merge_candidates;
use dta::advisor::TuningOptions;
use dta::prelude::*;
use dta::stats::StatKey;
use std::collections::BTreeSet;

fn make_server() -> Server {
    let mut server = Server::new("bench");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("m", ColumnType::Int),
                Column::new("val", ColumnType::Float),
                Column::new("pad", ColumnType::Str(60)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "dim",
            vec![Column::new("dk", ColumnType::Int), Column::new("dname", ColumnType::Str(20))],
        )
        .with_primary_key(&["dk"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "events",
            vec![
                Column::new("eid", ColumnType::BigInt),
                Column::new("etype", ColumnType::Int),
                Column::new("eday", ColumnType::Int),
                Column::new("amount", ColumnType::Float),
            ],
        )
        .with_primary_key(&["eid"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    {
        let t = server.table_data_mut("d", "fact").unwrap();
        for i in 0..30_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 1500),
                Value::Int(i % 700),
                Value::Int(i % 25),
                Value::Int(i % 12),
                Value::Float((i % 997) as f64),
                Value::Str(format!("{:=<60}", i)),
            ]);
        }
        t.set_scale(20.0);
    }
    {
        let t = server.table_data_mut("d", "dim").unwrap();
        for i in 0..1500i64 {
            t.push_row(vec![Value::Int(i), Value::Str(format!("dim{i}"))]);
        }
    }
    {
        let t = server.table_data_mut("d", "events").unwrap();
        for i in 0..20_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 40),
                Value::Int(i % 365),
                Value::Float((i % 113) as f64),
            ]);
        }
        t.set_scale(10.0);
    }
    server
}

fn make_workload() -> Workload {
    let mut items = Vec::new();
    let mut sel = |sql: String| items.push(WorkloadItem::new("d", parse_statement(&sql).unwrap()));
    for i in 0..12 {
        sel(format!("SELECT pad FROM fact WHERE a = {}", i * 13 % 1500));
        sel(format!("SELECT val FROM fact WHERE b = {}", i * 7 % 700));
    }
    for i in 0..8 {
        sel(format!("SELECT g, COUNT(*), SUM(val) FROM fact WHERE m = {} GROUP BY g", i % 12));
        sel(format!(
            "SELECT etype, SUM(amount) FROM events WHERE eday < {} GROUP BY etype",
            30 + i
        ));
    }
    for i in 0..6 {
        sel(format!("SELECT dname FROM fact, dim WHERE fact.a = dim.dk AND fact.k = {}", i * 500));
        sel(format!("SELECT amount FROM events WHERE etype = {} ORDER BY eday", i % 40));
    }
    // diverse shapes so per-query winners differ (wider candidate pool)
    for i in 0..6 {
        sel(format!("SELECT val FROM fact WHERE a = {} AND b = {}", i * 11 % 1500, i * 5 % 700));
        sel(format!("SELECT pad FROM fact WHERE g = {} AND m = {}", i % 25, i % 12));
        sel(format!("SELECT k FROM fact WHERE b = {} ORDER BY a", i * 31 % 700));
        sel(format!("SELECT a, SUM(val) FROM fact WHERE g = {} GROUP BY a", i % 25));
        sel(format!("SELECT m, COUNT(*) FROM fact WHERE b < {} GROUP BY m", 50 + i * 10));
        sel(format!("SELECT eid FROM events WHERE eday = {} AND etype = {}", i * 30, i % 40));
        sel(format!("SELECT eday, MIN(amount) FROM events WHERE etype = {} GROUP BY eday", i % 40));
        sel(format!("SELECT b, MAX(val) FROM fact WHERE m = {} GROUP BY b", i % 12));
    }
    Workload::from_items(items)
}

fn bench(c: &mut Criterion) {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = make_workload();
    let items = &workload.items;
    let base = server.raw_configuration();
    let options = TuningOptions { parallel_workers: 1, compress: false, ..Default::default() };

    // build the candidate pool once (selection is not what's measured)
    let pre_eval = CostEvaluator::new(&target, items);
    let pre_costs: Vec<f64> =
        (0..items.len()).map(|i| pre_eval.item_cost(i, &base).unwrap()).collect();
    let groups = interesting_column_groups(
        target.catalog(),
        items,
        &pre_costs,
        options.colgroup_cost_threshold,
    );
    let mut required: Vec<StatKey> = Vec::new();
    let mut table_keys: BTreeSet<(String, String)> = BTreeSet::new();
    for item in items.iter() {
        for t in item.statement.referenced_tables() {
            table_keys.insert((item.database.clone(), t.to_string()));
        }
    }
    for (db, table) in &table_keys {
        for group in groups.for_table(db, table) {
            let cols: Vec<String> = group.iter().cloned().collect();
            required.push(StatKey { database: db.clone(), table: table.clone(), columns: cols });
        }
    }
    target.ensure_statistics(&required, options.reduce_statistics);
    let sel_eval = CostEvaluator::new(&target, items);
    let mut pool = select_candidates(&sel_eval, &base, &groups, &options, &(|| false));
    merge_candidates(&mut pool);
    assert!(
        pool.candidates.len() >= 20,
        "pool too small for a meaningful bench: {}",
        pool.candidates.len()
    );

    // reference run per worker count: what-if calls + identical output
    let mut reference: Option<String> = None;
    for workers in [1usize, 2, 4] {
        let opts = TuningOptions { parallel_workers: workers, ..options.clone() };
        let eval = CostEvaluator::new(&target, items);
        let r = enumerate(&eval, &base, &pool.candidates, &server, &opts, &(|| false));
        println!(
            "--- enumeration over {} candidates, workers={}: {} what-if calls, {} evaluations ---",
            pool.candidates.len(),
            workers,
            eval.whatif_calls(),
            r.evaluations
        );
        let rendered = format!("{:.6} {}", r.cost, r.configuration);
        match &reference {
            None => reference = Some(rendered),
            Some(expect) => assert_eq!(expect, &rendered, "workers={workers} diverged"),
        }
    }

    let mut g = c.benchmark_group("parallel_enumeration");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        let opts = TuningOptions { parallel_workers: workers, ..options.clone() };
        g.bench_function(&format!("workers={workers}"), |bench| {
            bench.iter(|| {
                // cold cache each sample so every run does the same work
                let eval = CostEvaluator::new(&target, items);
                black_box(enumerate(&eval, &base, &pool.candidates, &server, &opts, &(|| false)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
