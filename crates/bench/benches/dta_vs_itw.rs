//! Figures 4 & 5: DTA vs the SQL Server 2000 Index Tuning Wizard.
//! Prints the regenerated comparison once, then times both tools on a
//! small PSOFT workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::advisor::{tune, TuningOptions};
use dta::baselines::tune_itw;
use dta::prelude::*;
use dta::workload::psoft;
use dta_bench::{dta_vs_itw, pct, RunScale};

fn bench(c: &mut Criterion) {
    println!("--- Figures 4 & 5 (quick scale) ---");
    for r in dta_vs_itw(RunScale::quick()) {
        println!(
            "{:<7} quality DTA {:>5.1}% vs ITW {:>5.1}%;  DTA time = {:>4.0}% of ITW",
            r.name,
            pct(r.dta_quality),
            pct(r.itw_quality),
            pct(r.dta_time_fraction())
        );
    }

    let b = psoft::build(0.05, 42);
    let mut g = c.benchmark_group("dta_vs_itw");
    g.sample_size(10);
    g.bench_function("dta_psoft300", |bench| {
        bench.iter(|| {
            let target = TuningTarget::Single(&b.server);
            tune(&target, &b.workload, &TuningOptions::default()).unwrap()
        })
    });
    g.bench_function("itw_psoft300", |bench| {
        bench.iter(|| {
            let target = TuningTarget::Single(&b.server);
            tune_itw(&target, &b.workload, None).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
