//! Table 3: workload compression. Prints the regenerated table once,
//! then times the compression algorithm itself on a SYNT1 workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dta::prelude::*;
use dta::workload::synt1;
use dta_bench::{pct, table3, RunScale};

fn bench(c: &mut Criterion) {
    println!("--- Table 3 (quick scale) ---");
    for r in table3(RunScale::quick()) {
        println!(
            "{:<7} loss {:>4.1}% (paper {:>4.1}%)  speedup {:>5.1}x (paper {:>5.1}x)",
            r.name,
            pct(r.quality_loss),
            pct(r.paper_quality_loss),
            r.speedup,
            r.paper_speedup
        );
    }

    let b = synt1::build(0.5, 7); // 4000 statements
    let mut g = c.benchmark_group("compression");
    g.bench_function("compress_4000_stmts", |bench| {
        bench.iter(|| compress(&b.workload, CompressionOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
