//! Experiment implementations behind every table and figure of §7.
//!
//! Each function regenerates one experiment and returns structured rows;
//! the `report` binary pretty-prints them next to the paper's published
//! numbers, and the Criterion benches in `benches/` time the interesting
//! code paths. Absolute values live in simulated work units — the
//! comparison with the paper is about *shape* (who wins, by what rough
//! factor), per DESIGN.md.

pub mod experiments;
pub mod snapshot;

pub use experiments::*;

/// Percentage helper.
pub fn pct(x: f64) -> f64 {
    (x * 100.0 * 10.0).round() / 10.0
}
