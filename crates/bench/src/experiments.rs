//! The §7 experiments.

use dta::advisor::{tune, workload_cost, AlignmentMode, FeatureSet, TuningOptions};
use dta::baselines::{tune_itw, tune_staged, StagePlan};
use dta::prelude::*;
use dta::workload::cust::{build as build_cust, CustId};
use dta::workload::{psoft, synt1, tpch};

/// Fraction of the paper's event counts to generate for the customer /
/// PSOFT / SYNT1 workloads. 1.0 reproduces full scale; smaller runs are
/// proportionally faster with the same shapes.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    pub events_fraction: f64,
    pub tpch_sf: f64,
}

impl RunScale {
    /// Quick: minutes, shapes intact.
    pub fn quick() -> Self {
        Self { events_fraction: 0.02, tpch_sf: 0.002 }
    }

    /// Default report scale.
    pub fn standard() -> Self {
        Self { events_fraction: 0.05, tpch_sf: 0.005 }
    }
}

/// Quality of a configuration relative to raw: `(C_raw − C_cfg) / C_raw`.
pub fn quality(
    target: &TuningTarget<'_>,
    workload: &Workload,
    raw: &Configuration,
    cfg: &Configuration,
) -> f64 {
    let c_raw = workload_cost(target, workload, raw).expect("raw cost");
    let c_cfg = workload_cost(target, workload, cfg).expect("cfg cost");
    if c_raw <= 0.0 {
        return 0.0;
    }
    1.0 - c_cfg / c_raw
}

// ---- Table 1 -------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub name: &'static str,
    pub size_gb: f64,
    pub databases: usize,
    pub tables: usize,
    pub paper_size_gb: f64,
    pub paper_databases: usize,
    pub paper_tables: usize,
}

/// Regenerate Table 1: the customer database profiles.
pub fn table1(scale: RunScale) -> Vec<Table1Row> {
    CustId::all()
        .into_iter()
        .map(|id| {
            let b = build_cust(id, scale.events_fraction.min(0.01), 42);
            let (paper_gb, paper_dbs, paper_tables) = id.paper_profile();
            Table1Row {
                name: id.name(),
                size_gb: b.server.total_data_bytes() as f64 / (1u64 << 30) as f64,
                databases: b.databases.len(),
                tables: b.server.catalog().total_table_count(),
                paper_size_gb: paper_gb,
                paper_databases: paper_dbs,
                paper_tables,
            }
        })
        .collect()
}

// ---- Table 2 -------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub name: &'static str,
    pub quality_hand: f64,
    pub quality_dta: f64,
    pub events_tuned: f64,
    pub tuning_work_units: f64,
    pub paper_quality_hand: f64,
    pub paper_quality_dta: f64,
}

/// Regenerate Table 2: DTA vs hand-tuned design on CUST1–4.
pub fn table2(scale: RunScale) -> Vec<Table2Row> {
    let paper = [(0.82, 0.87), (0.06, 0.41), (-0.05, 0.0), (0.0, 0.50)];
    CustId::all()
        .into_iter()
        .zip(paper)
        .map(|(id, (ph, pd))| {
            let b = build_cust(id, scale.events_fraction, 42);
            let target = TuningTarget::Single(&b.server);
            let raw = b.server.raw_configuration();
            let hand = b.hand_tuned.clone().expect("customer benchmarks have hand tuning");
            let result = tune(&target, &b.workload, &TuningOptions::default())
                .expect("customer workload tunes");
            Table2Row {
                name: id.name(),
                quality_hand: quality(&target, &b.workload, &raw, &hand),
                quality_dta: quality(&target, &b.workload, &raw, &result.recommendation),
                events_tuned: b.workload.total_events(),
                tuning_work_units: result.tuning_work_units,
                paper_quality_hand: ph,
                paper_quality_dta: pd,
            }
        })
        .collect()
}

// ---- §7.2 TPC-H ------------------------------------------------------------

/// The §7.2 result.
#[derive(Debug, Clone)]
pub struct TpchQuality {
    pub expected_improvement: f64,
    pub actual_improvement: f64,
    pub storage_bound_bytes: u64,
    pub storage_used_bytes: u64,
    /// Paper: 88% expected, 83% actual.
    pub paper_expected: f64,
    pub paper_actual: f64,
}

/// Regenerate §7.2: estimated vs actual improvement on TPC-H with a 3×
/// storage bound.
pub fn tpch_quality(scale: RunScale) -> TpchQuality {
    let server = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 10.0), 42);
    let workload = tpch::workload();
    let target = TuningTarget::Single(&server);
    let storage = server.total_data_bytes() * 3;
    let result = tune(
        &target,
        &workload,
        &TuningOptions { storage_bytes: Some(storage), ..Default::default() },
    )
    .expect("TPC-H tunes");

    let mut raw_work = 0.0;
    let mut tuned_work = 0.0;
    server.deploy(server.raw_configuration());
    for item in &workload.items {
        raw_work +=
            server.execute(&item.database, &item.statement).expect("raw run").work.work_units();
    }
    server.deploy(result.recommendation.clone());
    for item in &workload.items {
        tuned_work +=
            server.execute(&item.database, &item.statement).expect("tuned run").work.work_units();
    }
    TpchQuality {
        expected_improvement: result.expected_improvement(),
        actual_improvement: 1.0 - tuned_work / raw_work,
        storage_bound_bytes: storage,
        storage_used_bytes: result.storage_bytes,
        paper_expected: 0.88,
        paper_actual: 0.83,
    }
}

// ---- Figure 3 -------------------------------------------------------------

/// One bar of Figure 3.
#[derive(Debug, Clone)]
pub struct Figure3Row {
    pub label: &'static str,
    pub direct_overhead: f64,
    pub prodtest_overhead: f64,
    pub reduction: f64,
    pub paper_reduction: f64,
}

/// Regenerate Figure 3: reduction in production-server overhead when a
/// test server is exploited, for Q1/all-22 × indexes-only/all-features.
pub fn figure3(scale: RunScale) -> Vec<Figure3Row> {
    let full = tpch::workload();
    let q1 = Workload::from_items(vec![full.items[0].clone()]);
    let cases: [(&'static str, &Workload, FeatureSet, f64); 4] = [
        ("TPCHQ1-I", &q1, FeatureSet::indexes_only(), 0.60),
        ("TPCHQ1-A", &q1, FeatureSet::indexes_and_views(), 0.70),
        ("TPCH22-I", &full, FeatureSet::indexes_only(), 0.85),
        ("TPCH22-A", &full, FeatureSet::indexes_and_views(), 0.90),
    ];
    cases
        .into_iter()
        .map(|(label, workload, features, paper)| {
            let options = TuningOptions { features, parallel_workers: 1, ..Default::default() };

            // direct: everything on the production server
            let production = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
            production.reset_overhead();
            tune(&TuningTarget::Single(&production), workload, &options).expect("tunes");
            let direct = production.overhead_units();

            // via test server: production pays only for statistics
            let production = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
            let mut test = Server::new("test");
            prepare_test_server(&production, &mut test).expect("prep");
            production.reset_overhead();
            test.reset_overhead();
            tune(
                &TuningTarget::ProdTest { production: &production, test: &test },
                workload,
                &options,
            )
            .expect("tunes");
            let prodtest = production.overhead_units();

            Figure3Row {
                label,
                direct_overhead: direct,
                prodtest_overhead: prodtest,
                reduction: 1.0 - prodtest / direct.max(1e-9),
                paper_reduction: paper,
            }
        })
        .collect()
}

// ---- Table 3 -------------------------------------------------------------

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub name: &'static str,
    pub quality_loss: f64,
    pub speedup: f64,
    pub statements_full: usize,
    pub statements_compressed: usize,
    pub paper_quality_loss: f64,
    pub paper_speedup: f64,
}

fn compression_case(
    name: &'static str,
    server: &Server,
    workload: &Workload,
    paper_loss: f64,
    paper_speedup: f64,
) -> Table3Row {
    let target = TuningTarget::Single(server);
    let raw = server.raw_configuration();

    server.reset_overhead();
    let with = tune(&target, workload, &TuningOptions { compress: true, ..Default::default() })
        .expect("tunes");
    let with_units = with.tuning_work_units;

    server.reset_overhead();
    let without = tune(&target, workload, &TuningOptions { compress: false, ..Default::default() })
        .expect("tunes");
    let without_units = without.tuning_work_units;

    let q_with = quality(&target, workload, &raw, &with.recommendation);
    let q_without = quality(&target, workload, &raw, &without.recommendation);
    Table3Row {
        name,
        quality_loss: (q_without - q_with).max(0.0),
        speedup: without_units / with_units.max(1e-9),
        statements_full: without.statements_tuned,
        statements_compressed: with.statements_tuned,
        paper_quality_loss: paper_loss,
        paper_speedup,
    }
}

/// Regenerate Table 3: workload compression on TPCH22, PSOFT, SYNT1.
pub fn table3(scale: RunScale) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    {
        let server = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
        rows.push(compression_case("TPCH22", &server, &tpch::workload(), 0.01, 1.0));
    }
    {
        let b = psoft::build(scale.events_fraction * 10.0, 42);
        rows.push(compression_case("PSOFT", &b.server, &b.workload, 0.005, 5.8));
    }
    {
        let b = synt1::build(scale.events_fraction * 10.0, 42);
        rows.push(compression_case("SYNT1", &b.server, &b.workload, 0.01, 43.0));
    }
    rows
}

// ---- §7.5 reduced statistics creation ---------------------------------------

/// One row of the §7.5 experiment.
#[derive(Debug, Clone)]
pub struct StatsReductionRow {
    pub name: &'static str,
    pub created_naive: usize,
    pub created_reduced: usize,
    pub time_naive: f64,
    pub time_reduced: f64,
    pub quality_delta: f64,
    pub paper_count_reduction: f64,
    pub paper_time_reduction: f64,
}

impl StatsReductionRow {
    pub fn count_reduction(&self) -> f64 {
        1.0 - self.created_reduced as f64 / self.created_naive.max(1) as f64
    }

    pub fn time_reduction(&self) -> f64 {
        1.0 - self.time_reduced / self.time_naive.max(1e-9)
    }
}

fn stats_case<F>(
    name: &'static str,
    build: F,
    workload: &Workload,
    paper_count: f64,
    paper_time: f64,
) -> StatsReductionRow
where
    F: Fn() -> Server,
{
    let run = |reduce: bool| {
        let server = build();
        let target = TuningTarget::Single(&server);
        let result = tune(
            &target,
            workload,
            &TuningOptions { reduce_statistics: reduce, ..Default::default() },
        )
        .expect("tunes");
        let raw = server.raw_configuration();
        let q = quality(&target, workload, &raw, &result.recommendation);
        (result.stats_created, result.stats_work_units, q)
    };
    let (created_naive, time_naive, q_naive) = run(false);
    let (created_reduced, time_reduced, q_reduced) = run(true);
    StatsReductionRow {
        name,
        created_naive,
        created_reduced,
        time_naive,
        time_reduced,
        quality_delta: (q_naive - q_reduced).abs(),
        paper_count_reduction: paper_count,
        paper_time_reduction: paper_time,
    }
}

/// Regenerate §7.5: reduced statistics creation on TPC-H and PSOFT.
pub fn stats_reduction(scale: RunScale) -> Vec<StatsReductionRow> {
    let tpch_workload = tpch::workload();
    let psoft_bench = psoft::build(scale.events_fraction * 4.0, 42);
    let psoft_workload = psoft_bench.workload.clone();
    vec![
        stats_case(
            "TPC-H",
            || tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 10.0), 42),
            &tpch_workload,
            0.55,
            0.62,
        ),
        stats_case(
            "PSOFT",
            || psoft::build(scale.events_fraction * 4.0, 42).server,
            &psoft_workload,
            0.24,
            0.31,
        ),
    ]
}

// ---- Figures 4 & 5 ----------------------------------------------------------

/// One bar pair of Figures 4 and 5.
#[derive(Debug, Clone)]
pub struct ItwComparisonRow {
    pub name: &'static str,
    pub dta_quality: f64,
    pub itw_quality: f64,
    pub dta_work_units: f64,
    pub itw_work_units: f64,
}

impl ItwComparisonRow {
    /// Figure 5's y-axis: DTA running time as a fraction of ITW's.
    pub fn dta_time_fraction(&self) -> f64 {
        self.dta_work_units / self.itw_work_units.max(1e-9)
    }
}

/// Regenerate Figures 4 and 5: DTA vs ITW on TPCH22, PSOFT, SYNT1
/// (indexes + views only, for fairness — ITW cannot partition).
pub fn dta_vs_itw(scale: RunScale) -> Vec<ItwComparisonRow> {
    let mut rows = Vec::new();
    let mut run = |name: &'static str, server: &Server, workload: &Workload| {
        let target = TuningTarget::Single(server);
        let raw = server.raw_configuration();
        server.reset_overhead();
        let dta_result = tune(
            &target,
            workload,
            &TuningOptions { features: FeatureSet::indexes_and_views(), ..Default::default() },
        )
        .expect("DTA tunes");
        let itw_result = tune_itw(&target, workload, None).expect("ITW tunes");
        rows.push(ItwComparisonRow {
            name,
            dta_quality: quality(&target, workload, &raw, &dta_result.recommendation),
            itw_quality: quality(&target, workload, &raw, &itw_result.recommendation),
            dta_work_units: dta_result.tuning_work_units,
            itw_work_units: itw_result.tuning_work_units,
        });
    };
    {
        let server = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
        run("TPCH22", &server, &tpch::workload());
    }
    {
        let b = psoft::build(scale.events_fraction * 10.0, 42);
        run("PSOFT", &b.server, &b.workload);
    }
    {
        let b = synt1::build(scale.events_fraction * 10.0, 42);
        run("SYNT1", &b.server, &b.workload);
    }
    rows
}

// ---- §3 staged-vs-integrated ablation ---------------------------------------

/// Outcome of the staged-vs-integrated ablation.
#[derive(Debug, Clone)]
pub struct StagedAblation {
    pub integrated_quality: f64,
    pub staged_quality: f64,
}

/// Regenerate the Example-2 ablation on TPC-H (indexes + partitioning).
pub fn staged_vs_integrated(scale: RunScale) -> StagedAblation {
    let server = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
    let workload = tpch::workload();
    let target = TuningTarget::Single(&server);
    let raw = server.raw_configuration();
    let base = TuningOptions {
        features: FeatureSet { indexes: true, views: false, partitioning: true },
        ..Default::default()
    };
    let integrated = tune(&target, &workload, &base).expect("integrated tunes");
    let staged = tune_staged(
        &target,
        &workload,
        &[
            StagePlan { features: FeatureSet::indexes_only(), storage_bytes: None },
            StagePlan {
                features: FeatureSet { indexes: false, views: false, partitioning: true },
                storage_bytes: None,
            },
        ],
        &base,
    )
    .expect("staged tunes");
    StagedAblation {
        integrated_quality: quality(&target, &workload, &raw, &integrated.recommendation),
        staged_quality: quality(&target, &workload, &raw, &staged.recommendation),
    }
}

// ---- §4 lazy-vs-eager alignment ablation -------------------------------------

/// Outcome of the alignment ablation.
#[derive(Debug, Clone)]
pub struct AlignmentAblation {
    pub lazy_pool: usize,
    pub eager_pool: usize,
    pub lazy_work_units: f64,
    pub eager_work_units: f64,
    pub lazy_quality: f64,
    pub eager_quality: f64,
}

/// Regenerate the §4 ablation: lazy vs eager introduction of aligned
/// candidates during enumeration.
pub fn alignment_ablation(scale: RunScale) -> AlignmentAblation {
    let workload = tpch::workload();
    let run = |mode: AlignmentMode| {
        let server = tpch::build_server(tpch::TpchScale::new(scale.tpch_sf, 1.0), 42);
        let target = TuningTarget::Single(&server);
        let raw = server.raw_configuration();
        server.reset_overhead();
        let result =
            tune(&target, &workload, &TuningOptions { alignment: mode, ..Default::default() })
                .expect("tunes");
        assert!(result.recommendation.is_aligned());
        (
            result.pool_size,
            result.tuning_work_units,
            quality(&target, &workload, &raw, &result.recommendation),
        )
    };
    let (lazy_pool, lazy_units, lazy_q) = run(AlignmentMode::Lazy);
    let (eager_pool, eager_units, eager_q) = run(AlignmentMode::Eager);
    AlignmentAblation {
        lazy_pool,
        eager_pool,
        lazy_work_units: lazy_units,
        eager_work_units: eager_units,
        lazy_quality: lazy_q,
        eager_quality: eager_q,
    }
}
