//! The perf-trajectory snapshot behind `dta-bench-snap`: run the seed
//! workloads under a recording observer and freeze the session's shape
//! (stage timings, what-if volume, cache hit rates, pool sizes) as a
//! stable-schema JSON document (`dta-bench/v1`), committed at the repo
//! root as `BENCH_pr<N>.json` so the trajectory across PRs is diffable.
//!
//! Wall-clock fields (`wall_nanos`) vary run to run and machine to
//! machine — they are trajectory data, not assertions. Every other
//! field is deterministic for a given seed workload, so an unexpected
//! diff in a counter is a real behavior change.

use dta::advisor::obs::Counter;
use dta::advisor::{tune_with_observer, RecordingObserver, TuningOptions};
use dta::prelude::*;
use dta::workload::{psoft, synt1, tpch};

/// The seed workloads a snapshot covers, in report order.
pub const SNAP_WORKLOADS: &[&str] = &["tpch", "psoft", "synt1"];

/// One per-stage row of a workload snapshot.
#[derive(Debug, Clone)]
pub struct StageSnap {
    /// Hierarchical span path (e.g. `"enumeration/greedyPhase1"`).
    pub path: String,
    pub enters: u64,
    /// Report-only wall time; varies run to run.
    pub wall_nanos: u128,
    pub whatif_calls: u64,
    pub work_units: u64,
}

/// One workload's frozen session shape.
#[derive(Debug, Clone)]
pub struct WorkloadSnap {
    pub name: String,
    pub whatif_calls: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub peak_pool_size: u64,
    pub evaluations: usize,
    pub base_cost: f64,
    pub recommended_cost: f64,
    pub stages: Vec<StageSnap>,
}

/// Build and tune one seed workload (smoke scale) under a recording
/// observer. Panics on an unknown name — callers pick from
/// [`SNAP_WORKLOADS`].
pub fn run_workload(name: &str) -> WorkloadSnap {
    // smoke scale mirrors RunScale::quick(): shapes intact, seconds not
    // minutes, and deterministic for seed 42. SYNT1 is the exception —
    // a full tune at 0.02 hits the seed-slow merging blowup (pool grows
    // ~14x, see CHANGES.md PR 1), so it runs at the 24-statement smoke
    // size the itw_vs_dta smoke test uses
    let (server, workload) = match name {
        "tpch" => (tpch::build_server(tpch::TpchScale::new(0.002, 1.0), 42), tpch::workload()),
        "psoft" => {
            let b = psoft::build(0.02, 42);
            (b.server, b.workload)
        }
        "synt1" => {
            let b = synt1::build(0.006, 42);
            (b.server, b.workload)
        }
        other => panic!("unknown snapshot workload '{other}'"),
    };
    let target = TuningTarget::Single(&server);
    let obs = RecordingObserver::new();
    let result = tune_with_observer(&target, &workload, &TuningOptions::default(), &obs)
        .expect("seed workload tunes");
    let summary = result.observer.clone().expect("recording observer yields a summary");
    WorkloadSnap {
        name: name.to_string(),
        whatif_calls: summary.counter(Counter::WhatIfCalls),
        cache_hits: summary.counter(Counter::CacheHits),
        cache_misses: summary.counter(Counter::CacheMisses),
        cache_hit_rate: summary.cache_hit_rate(),
        peak_pool_size: summary.counter(Counter::PeakPoolSize),
        evaluations: result.evaluations,
        base_cost: result.base_cost,
        recommended_cost: result.recommended_cost,
        stages: summary
            .spans
            .iter()
            .map(|s| StageSnap {
                path: s.path.clone(),
                enters: s.enters,
                wall_nanos: s.wall_nanos,
                whatif_calls: s.whatif_calls,
                work_units: s.work_units,
            })
            .collect(),
    }
}

/// Render the snapshot document (`dta-bench/v1`).
pub fn snapshot_json(pr: u32, workloads: &[WorkloadSnap]) -> String {
    use dta::advisor::obs::json_escape;
    let mut out = format!("{{\"schema\":\"dta-bench/v1\",\"pr\":{pr},\"workloads\":[");
    for (i, w) in workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"whatif_calls\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"cache_hit_rate\":{:.6},\"peak_pool_size\":{},\"evaluations\":{},\
             \"base_cost\":{:.6},\"recommended_cost\":{:.6},\"stages\":[",
            json_escape(&w.name),
            w.whatif_calls,
            w.cache_hits,
            w.cache_misses,
            w.cache_hit_rate,
            w.peak_pool_size,
            w.evaluations,
            w.base_cost,
            w.recommended_cost,
        ));
        for (j, s) in w.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"enters\":{},\"wall_nanos\":{},\"whatif_calls\":{},\
                 \"work_units\":{}}}",
                json_escape(&s.path),
                s.enters,
                s.wall_nanos,
                s.whatif_calls,
                s.work_units,
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

// ---- schema validation -----------------------------------------------------
//
// A hand-rolled JSON reader (no dependencies, like everything else in
// tree): enough of RFC 8259 to parse what the emitter above writes and
// reject malformed or schema-violating documents in CI.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (duplicates rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected value at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // multi-byte UTF-8 sequences pass through unchanged
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + len.min(b.len() - *pos)])
                    .map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key '{key}'"));
        }
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Validate a snapshot document against the `dta-bench/v1` schema. CI
/// fails the bench-snapshot job on any `Err`.
pub fn validate_snapshot(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == "dta-bench/v1" => {}
        other => return Err(format!("schema must be \"dta-bench/v1\", got {other:?}")),
    }
    match doc.get("pr") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {}
        other => return Err(format!("pr must be a non-negative integer, got {other:?}")),
    }
    let Some(Json::Arr(workloads)) = doc.get("workloads") else {
        return Err("workloads must be an array".to_string());
    };
    if workloads.is_empty() {
        return Err("workloads must be non-empty".to_string());
    }
    let uint = |w: &Json, key: &str| -> Result<f64, String> {
        match w.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n),
            other => Err(format!("{key} must be a non-negative integer, got {other:?}")),
        }
    };
    let num = |w: &Json, key: &str| -> Result<f64, String> {
        match w.get(key) {
            Some(Json::Num(n)) if n.is_finite() => Ok(*n),
            other => Err(format!("{key} must be a finite number, got {other:?}")),
        }
    };
    for w in workloads {
        match w.get("name") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            other => return Err(format!("workload name must be non-empty, got {other:?}")),
        }
        let calls = uint(w, "whatif_calls")?;
        let hits = uint(w, "cache_hits")?;
        let misses = uint(w, "cache_misses")?;
        uint(w, "peak_pool_size")?;
        uint(w, "evaluations")?;
        num(w, "base_cost")?;
        num(w, "recommended_cost")?;
        let rate = num(w, "cache_hit_rate")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("cache_hit_rate out of [0,1]: {rate}"));
        }
        if misses > calls {
            return Err(format!("cache_misses {misses} exceed whatif_calls {calls}"));
        }
        let _ = hits;
        let Some(Json::Arr(stages)) = w.get("stages") else {
            return Err("stages must be an array".to_string());
        };
        for s in stages {
            match s.get("path") {
                Some(Json::Str(p)) if !p.is_empty() => {}
                other => return Err(format!("stage path must be non-empty, got {other:?}")),
            }
            uint(s, "enters")?;
            uint(s, "wall_nanos")?;
            uint(s, "whatif_calls")?;
            uint(s, "work_units")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let workloads = vec![WorkloadSnap {
            name: "toy".into(),
            whatif_calls: 10,
            cache_hits: 90,
            cache_misses: 10,
            cache_hit_rate: 0.9,
            peak_pool_size: 7,
            evaluations: 42,
            base_cost: 100.5,
            recommended_cost: 40.25,
            stages: vec![StageSnap {
                path: "enumeration/greedyPhase1".into(),
                enters: 1,
                wall_nanos: 123456,
                whatif_calls: 8,
                work_units: 30,
            }],
        }];
        snapshot_json(6, &workloads)
    }

    #[test]
    fn emitted_snapshot_validates() {
        let json = sample();
        validate_snapshot(&json).unwrap();
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("pr"), Some(&Json::Num(6.0)));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a":[1,-2.5e1,"x\"\\\nA"],"b":{"c":null,"d":true}}"#)
            .unwrap();
        let Some(Json::Arr(items)) = doc.get("a") else { panic!("{doc:?}") };
        assert_eq!(items[1], Json::Num(-25.0));
        assert_eq!(items[2], Json::Str("x\"\\\nA".into()));
        assert_eq!(doc.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
    }

    #[test]
    fn validator_rejects_schema_violations() {
        assert!(validate_snapshot("{").is_err(), "malformed document");
        assert!(validate_snapshot("{}").is_err(), "missing schema tag");
        assert!(
            validate_snapshot(r#"{"schema":"dta-bench/v1","pr":6,"workloads":[]}"#).is_err(),
            "empty workload list"
        );
        let bad_rate = sample().replace("\"cache_hit_rate\":0.900000", "\"cache_hit_rate\":1.5");
        assert!(validate_snapshot(&bad_rate).is_err(), "hit rate out of range");
        let trailing = format!("{} ", sample()) + "x";
        assert!(validate_snapshot(&trailing).is_err(), "trailing garbage");
        let dup = r#"{"schema":"dta-bench/v1","schema":"dta-bench/v1"}"#;
        assert!(validate_snapshot(dup).is_err(), "duplicate keys");
    }
}
