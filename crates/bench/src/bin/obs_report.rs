//! `dta-obs-report` — run one seed workload under a recording observer
//! and dump the session trace (stage spans, counters, per-shard cache
//! statistics, event log).
//!
//! ```text
//! dta-obs-report                  # human-readable trace for tpch
//! dta-obs-report --workload psoft # pick a seed workload
//! dta-obs-report --json           # stable-schema JSON (dta-obs/v1)
//! ```

use dta_bench::snapshot::SNAP_WORKLOADS;
use dta::advisor::{tune_with_observer, RecordingObserver, TuningOptions};
use dta::prelude::*;
use dta::workload::{psoft, synt1, tpch};

fn usage() -> ! {
    eprintln!("usage: dta-obs-report [--workload tpch|psoft|synt1] [--json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload_name = "tpch".to_string();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workload_name = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            _ => usage(),
        }
        i += 1;
    }
    if !SNAP_WORKLOADS.contains(&workload_name.as_str()) {
        usage();
    }

    let (server, workload) = match workload_name.as_str() {
        "tpch" => (tpch::build_server(tpch::TpchScale::new(0.002, 1.0), 42), tpch::workload()),
        "psoft" => {
            let b = psoft::build(0.02, 42);
            (b.server, b.workload)
        }
        _ => {
            // smoke size — full-scale SYNT1 tuning is seed-slow (PR 1)
            let b = synt1::build(0.006, 42);
            (b.server, b.workload)
        }
    };
    let target = TuningTarget::Single(&server);
    let obs = RecordingObserver::new();
    let result = tune_with_observer(&target, &workload, &TuningOptions::default(), &obs)
        .expect("seed workload tunes");
    let summary = result.observer.as_ref().expect("recording observer yields a summary");
    if json {
        println!("{}", summary.to_json());
    } else {
        println!("session trace: {workload_name}");
        print!("{summary}");
        println!(
            "recommendation: cost {:.1} -> {:.1} ({:.1}% improvement)",
            result.base_cost,
            result.recommended_cost,
            result.expected_improvement() * 100.0,
        );
    }
}
