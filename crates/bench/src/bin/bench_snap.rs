//! `dta-bench-snap` — freeze the seed workloads' session shape as a
//! `BENCH_pr<N>.json` perf-trajectory snapshot (schema `dta-bench/v1`).
//!
//! ```text
//! dta-bench-snap --pr 6 --out BENCH_pr6.json   # run + write + validate
//! dta-bench-snap --validate BENCH_pr6.json     # schema-check an existing file
//! ```
//!
//! Counters in the snapshot are deterministic (same seed workloads ⇒
//! same numbers); only `wall_nanos` varies between machines. CI runs the
//! emit mode on every PR and fails if the document does not validate.

use dta_bench::snapshot::{run_workload, snapshot_json, validate_snapshot, SNAP_WORKLOADS};

fn usage() -> ! {
    eprintln!("usage: dta-bench-snap [--pr N] [--out FILE] | --validate FILE");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr: u32 = 6;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pr" => {
                i += 1;
                pr = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--validate" => {
                i += 1;
                validate = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dta-bench-snap: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match validate_snapshot(&text) {
            Ok(()) => {
                println!("{path}: valid dta-bench/v1 snapshot");
            }
            Err(e) => {
                eprintln!("{path}: INVALID snapshot: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut snaps = Vec::new();
    for name in SNAP_WORKLOADS {
        eprintln!("dta-bench-snap: tuning {name} …");
        let snap = run_workload(name);
        eprintln!(
            "dta-bench-snap:   {} what-if calls, {:.1}% cache hits, pool {} ({} evaluations)",
            snap.whatif_calls,
            snap.cache_hit_rate * 100.0,
            snap.peak_pool_size,
            snap.evaluations,
        );
        snaps.push(snap);
    }
    let json = snapshot_json(pr, &snaps);
    validate_snapshot(&json).expect("emitted snapshot validates against its own schema");
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("snapshot file writes");
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
