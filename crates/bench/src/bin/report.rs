//! `report` — regenerate every table and figure of the paper's §7.
//!
//! Usage:
//!   report [--quick] [all|table1|table2|tpch|figure3|table3|stats|itw|staged|alignment]
//!
//! Prints each experiment with the paper's published numbers alongside
//! the reproduction's measurements (simulated work units; shapes are the
//! comparison, per DESIGN.md).

use dta_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { RunScale::quick() } else { RunScale::standard() };
    let which: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    println!(
        "=== DTA reproduction report (events x{}, TPC-H SF {}) ===",
        scale.events_fraction, scale.tpch_sf
    );

    if want("table1") {
        println!("\n--- Table 1: customer databases (ours vs paper) ---");
        println!(
            "{:<7} {:>9} {:>9} | {:>6} {:>6} | {:>7} {:>7}",
            "name", "size GB", "paper GB", "#DBs", "paper", "#tables", "paper"
        );
        for r in table1(scale) {
            println!(
                "{:<7} {:>9.1} {:>9.1} | {:>6} {:>6} | {:>7} {:>7}",
                r.name,
                r.size_gb,
                r.paper_size_gb,
                r.databases,
                r.paper_databases,
                r.tables,
                r.paper_tables
            );
        }
    }

    if want("table2") {
        println!("\n--- Table 2: quality of DTA vs hand-tuned design ---");
        println!(
            "{:<7} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>12}",
            "name", "hand %", "paper %", "DTA %", "paper %", "#events", "tuning units"
        );
        for r in table2(scale) {
            println!(
                "{:<7} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>10.0} {:>12.0}",
                r.name,
                pct(r.quality_hand),
                pct(r.paper_quality_hand),
                pct(r.quality_dta),
                pct(r.paper_quality_dta),
                r.events_tuned,
                r.tuning_work_units
            );
        }
    }

    if want("tpch") {
        println!("\n--- §7.2: TPC-H estimated vs actual improvement (3x storage) ---");
        let r = tpch_quality(scale);
        println!(
            "expected: {:>5.1}% (paper {:>4.1}%)   actual: {:>5.1}% (paper {:>4.1}%)",
            pct(r.expected_improvement),
            pct(r.paper_expected),
            pct(r.actual_improvement),
            pct(r.paper_actual)
        );
        println!(
            "storage: used {:.1} MB of {:.1} MB bound",
            r.storage_used_bytes as f64 / (1 << 20) as f64,
            r.storage_bound_bytes as f64 / (1 << 20) as f64
        );
    }

    if want("figure3") {
        println!("\n--- Figure 3: reduction in production-server overhead ---");
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>10}",
            "workload", "direct", "via test", "reduction", "paper"
        );
        for r in figure3(scale) {
            println!(
                "{:<10} {:>12.0} {:>12.0} {:>11.0}% {:>9.0}%",
                r.label,
                r.direct_overhead,
                r.prodtest_overhead,
                pct(r.reduction),
                pct(r.paper_reduction)
            );
        }
    }

    if want("table3") {
        println!("\n--- Table 3: workload compression ---");
        println!(
            "{:<7} {:>12} {:>12} | {:>10} {:>10} | {:>9} {:>9}",
            "name", "stmts full", "compressed", "qual loss", "paper", "speedup", "paper"
        );
        for r in table3(scale) {
            println!(
                "{:<7} {:>12} {:>12} | {:>9.1}% {:>9.1}% | {:>8.1}x {:>8.1}x",
                r.name,
                r.statements_full,
                r.statements_compressed,
                pct(r.quality_loss),
                pct(r.paper_quality_loss),
                r.speedup,
                r.paper_speedup
            );
        }
    }

    if want("stats") {
        println!("\n--- §7.5: reduced statistics creation ---");
        println!(
            "{:<7} {:>8} {:>8} {:>11} {:>8} | {:>10} {:>8} | {:>7}",
            "name", "naive#", "reduced#", "count red.", "paper", "time red.", "paper", "Δqual"
        );
        for r in stats_reduction(scale) {
            println!(
                "{:<7} {:>8} {:>8} {:>10.0}% {:>7.0}% | {:>9.0}% {:>7.0}% | {:>6.2}%",
                r.name,
                r.created_naive,
                r.created_reduced,
                pct(r.count_reduction()),
                pct(r.paper_count_reduction),
                pct(r.time_reduction()),
                pct(r.paper_time_reduction),
                pct(r.quality_delta)
            );
        }
    }

    if want("itw") {
        println!("\n--- Figures 4 & 5: DTA vs Index Tuning Wizard (SS2K) ---");
        println!(
            "{:<7} {:>10} {:>10} | {:>12} {:>12} {:>14}",
            "name", "DTA qual", "ITW qual", "DTA units", "ITW units", "DTA time frac"
        );
        for r in dta_vs_itw(scale) {
            println!(
                "{:<7} {:>9.1}% {:>9.1}% | {:>12.0} {:>12.0} {:>13.0}%",
                r.name,
                pct(r.dta_quality),
                pct(r.itw_quality),
                r.dta_work_units,
                r.itw_work_units,
                pct(r.dta_time_fraction())
            );
        }
        println!(
            "(paper: quality comparable with DTA slightly better; DTA far faster on PSOFT/SYNT1)"
        );
    }

    if want("staged") {
        println!("\n--- §3 ablation: integrated vs staged feature selection ---");
        let r = staged_vs_integrated(scale);
        println!(
            "integrated quality: {:.1}%   staged (indexes then partitioning): {:.1}%",
            pct(r.integrated_quality),
            pct(r.staged_quality)
        );
    }

    if want("alignment") {
        println!("\n--- §4 ablation: lazy vs eager alignment candidates ---");
        let r = alignment_ablation(scale);
        println!(
            "lazy : pool {:>5}, {:>10.0} units, quality {:>5.1}%",
            r.lazy_pool,
            r.lazy_work_units,
            pct(r.lazy_quality)
        );
        println!(
            "eager: pool {:>5}, {:>10.0} units, quality {:>5.1}%",
            r.eager_pool,
            r.eager_work_units,
            pct(r.eager_quality)
        );
    }

    println!("\ndone.");
}
