//! Column-group restriction (§2.2).
//!
//! The space of indexes/partitionings explodes with the number of
//! column-groups that are in principle relevant. This pre-processing step
//! mines *interesting* column-groups bottom-up in the style of frequent
//! itemsets [5]: a group is interesting only if the statements it is
//! relevant to account for at least a fraction of the total workload
//! cost, and (for multi-column groups) all of its subsets are interesting
//! too. Candidate generation then only considers interesting groups.

use dta_catalog::Catalog;
use dta_optimizer::query::{bind, BoundStatement};
use dta_workload::WorkloadItem;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum column-group size considered (index keys beyond 3 columns
/// rarely pay for themselves and blow up the space).
pub const MAX_GROUP_SIZE: usize = 3;

/// The interesting column-groups of a workload.
#[derive(Debug, Clone, Default)]
pub struct ColumnGroups {
    /// `(database, table) → interesting groups`.
    groups: BTreeMap<(String, String), Vec<BTreeSet<String>>>,
}

impl ColumnGroups {
    /// Is `set` an interesting group on this table?
    pub fn is_interesting(&self, database: &str, table: &str, set: &BTreeSet<String>) -> bool {
        self.groups
            .get(&(database.to_string(), table.to_string()))
            .is_some_and(|gs| gs.contains(set))
    }

    /// All interesting groups on a table.
    pub fn for_table(&self, database: &str, table: &str) -> &[BTreeSet<String>] {
        self.groups
            .get(&(database.to_string(), table.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of groups.
    pub fn len(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// True if no groups survived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interesting single columns of a table.
    pub fn single_columns(&self, database: &str, table: &str) -> Vec<String> {
        self.for_table(database, table)
            .iter()
            .filter(|g| g.len() == 1)
            .map(|g| g.iter().next().expect("singleton").clone())
            .collect()
    }
}

/// The per-table columns a statement makes index-relevant.
fn relevant_columns(
    catalog: &Catalog,
    item: &WorkloadItem,
) -> BTreeMap<(String, String), BTreeSet<String>> {
    let mut out: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let Ok(bound) = bind(catalog, &item.database, &item.statement) else {
        return out;
    };
    match bound {
        BoundStatement::Select(s) => {
            let note = |binding: &str, column: &str, out: &mut BTreeMap<_, BTreeSet<String>>| {
                if let Some(table) = s.table_of(binding) {
                    out.entry((item.database.clone(), table.to_string()))
                        .or_default()
                        .insert(column.to_string());
                }
            };
            for sarg in &s.sargs {
                note(&sarg.column.binding, &sarg.column.column, &mut out);
            }
            for j in &s.joins {
                note(&j.left.binding, &j.left.column, &mut out);
                note(&j.right.binding, &j.right.column, &mut out);
            }
            for g in &s.group_by {
                note(&g.binding, &g.column, &mut out);
            }
            for (o, _) in &s.order_by {
                note(&o.binding, &o.column, &mut out);
            }
        }
        BoundStatement::Dml(dml) => {
            use dta_optimizer::query::BoundDml;
            match dml {
                BoundDml::Update { database, table, filter, .. }
                | BoundDml::Delete { database, table, filter } => {
                    let entry = out.entry((database, table)).or_default();
                    for s in &filter.sargs {
                        entry.insert(s.column.column.clone());
                    }
                }
                BoundDml::Insert { .. } => {}
            }
        }
    }
    out
}

/// Mine the interesting column-groups of a workload.
///
/// `costs[i]` is the current (base-configuration) cost of item `i`;
/// groups relevant to statements whose summed weighted cost is below
/// `threshold × total` are pruned.
pub fn interesting_column_groups(
    catalog: &Catalog,
    items: &[WorkloadItem],
    costs: &[f64],
    threshold: f64,
) -> ColumnGroups {
    assert_eq!(items.len(), costs.len());
    let total: f64 = items.iter().zip(costs).map(|(i, c)| i.weight * c).sum();
    let min_cost = total * threshold.clamp(0.0, 1.0);

    // per-item relevant columns per table
    let per_item: Vec<BTreeMap<(String, String), BTreeSet<String>>> =
        items.iter().map(|i| relevant_columns(catalog, i)).collect();

    // level 1: single columns with enough cost behind them
    let mut group_cost: BTreeMap<(String, String, Vec<String>), f64> = BTreeMap::new();
    for (i, tables) in per_item.iter().enumerate() {
        let w = items[i].weight * costs[i];
        for ((db, table), cols) in tables {
            for c in cols {
                *group_cost.entry((db.clone(), table.clone(), vec![c.clone()])).or_default() += w;
            }
        }
    }
    let mut interesting: BTreeMap<(String, String), Vec<BTreeSet<String>>> = BTreeMap::new();
    let mut frontier: Vec<(String, String, BTreeSet<String>)> = Vec::new();
    for ((db, table, cols), cost) in &group_cost {
        if *cost >= min_cost {
            let set: BTreeSet<String> = cols.iter().cloned().collect();
            interesting.entry((db.clone(), table.clone())).or_default().push(set.clone());
            frontier.push((db.clone(), table.clone(), set));
        }
    }

    // levels 2..=MAX_GROUP_SIZE: extend groups by one interesting column,
    // keeping only extensions with enough cost support
    for _level in 2..=MAX_GROUP_SIZE {
        let mut next_cost: BTreeMap<(String, String, Vec<String>), f64> = BTreeMap::new();
        for (i, tables) in per_item.iter().enumerate() {
            let w = items[i].weight * costs[i];
            for ((db, table), cols) in tables {
                // extensions of frontier groups contained in this item
                for (fdb, ftable, fset) in &frontier {
                    if fdb != db || ftable != table || !fset.is_subset(cols) {
                        continue;
                    }
                    for c in cols {
                        if fset.contains(c) {
                            continue;
                        }
                        let mut ext: Vec<String> = fset.iter().cloned().collect();
                        ext.push(c.clone());
                        ext.sort();
                        *next_cost.entry((db.clone(), table.clone(), ext)).or_default() += w;
                    }
                }
            }
        }
        let mut new_frontier = Vec::new();
        for ((db, table, cols), cost) in next_cost {
            // extensions are generated once per (parent, new column); the
            // same set can arrive via different parents — dedup
            let set: BTreeSet<String> = cols.into_iter().collect();
            if cost >= min_cost * set.len() as f64 / 2.0 {
                let entry = interesting.entry((db.clone(), table.clone())).or_default();
                if !entry.contains(&set) {
                    entry.push(set.clone());
                    new_frontier.push((db, table, set));
                }
            }
        }
        if new_frontier.is_empty() {
            break;
        }
        frontier = new_frontier;
    }

    ColumnGroups { groups: interesting }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table};
    use dta_sql::parse_statement;
    use dta_workload::WorkloadItem;

    fn catalog() -> Catalog {
        let mut db = Database::new("d");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("rare", ColumnType::Int),
            ],
        ))
        .expect("fresh table");
        let mut cat = Catalog::new();
        cat.add_database(db).expect("fresh database");
        cat
    }

    fn item(sql: &str, weight: f64) -> WorkloadItem {
        WorkloadItem::weighted("d", parse_statement(sql).expect("valid SQL"), weight)
    }

    #[test]
    fn frequent_groups_survive_rare_pruned() {
        let cat = catalog();
        let items = vec![
            item("SELECT c FROM t WHERE a = 1 AND b = 2", 100.0),
            item("SELECT c FROM t WHERE a = 3", 100.0),
            item("SELECT c FROM t WHERE rare = 9", 1.0),
        ];
        let costs = vec![10.0, 10.0, 10.0];
        let groups = interesting_column_groups(&cat, &items, &costs, 0.05);
        let a: BTreeSet<String> = ["a".to_string()].into();
        let ab: BTreeSet<String> = ["a".to_string(), "b".to_string()].into();
        let rare: BTreeSet<String> = ["rare".to_string()].into();
        assert!(groups.is_interesting("d", "t", &a));
        assert!(groups.is_interesting("d", "t", &ab));
        assert!(!groups.is_interesting("d", "t", &rare), "rare column pruned");
    }

    #[test]
    fn group_by_and_join_columns_count() {
        let mut cat = catalog();
        let mut db2 = Database::new("d2");
        db2.add_table(Table::new(
            "u",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
        ))
        .expect("fresh table");
        // second table in same db instead
        let _ = db2;
        let mut db = Database::new("dd");
        db.add_table(Table::new(
            "t",
            vec![Column::new("a", ColumnType::Int), Column::new("k", ColumnType::Int)],
        ))
        .expect("fresh table");
        db.add_table(Table::new(
            "u",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
        ))
        .expect("fresh table");
        cat.add_database(db).expect("fresh database");
        let items = vec![WorkloadItem::new(
            "dd",
            parse_statement("SELECT v FROM t, u WHERE t.k = u.k GROUP BY v").expect("valid SQL"),
        )];
        let groups = interesting_column_groups(&cat, &items, &[10.0], 0.01);
        let k: BTreeSet<String> = ["k".to_string()].into();
        let v: BTreeSet<String> = ["v".to_string()].into();
        assert!(groups.is_interesting("dd", "t", &k));
        assert!(groups.is_interesting("dd", "u", &k));
        assert!(groups.is_interesting("dd", "u", &v));
    }

    #[test]
    fn dml_filter_columns_count() {
        let cat = catalog();
        let items = vec![item("UPDATE t SET c = 1 WHERE b = 2", 50.0)];
        let groups = interesting_column_groups(&cat, &items, &[5.0], 0.01);
        let b: BTreeSet<String> = ["b".to_string()].into();
        assert!(groups.is_interesting("d", "t", &b));
        // assignment targets are not index-relevant
        let c: BTreeSet<String> = ["c".to_string()].into();
        assert!(!groups.is_interesting("d", "t", &c));
    }

    #[test]
    fn empty_workload() {
        let cat = catalog();
        let groups = interesting_column_groups(&cat, &[], &[], 0.1);
        assert!(groups.is_empty());
    }

    #[test]
    fn single_columns_listing() {
        let cat = catalog();
        let items = vec![item("SELECT c FROM t WHERE a = 1 AND b < 5", 10.0)];
        let groups = interesting_column_groups(&cat, &items, &[10.0], 0.01);
        let mut singles = groups.single_columns("d", "t");
        singles.sort();
        assert_eq!(singles, vec!["a", "b"]);
    }
}
