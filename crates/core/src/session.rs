//! The tuning session: Figure 1's pipeline end to end.

use crate::candidates::select_candidates;
use crate::colgroups::interesting_column_groups;
use crate::cost::CostEvaluator;
use crate::enumeration::enumerate;
use crate::merging::merge_candidates;
use crate::options::TuningOptions;
use crate::report::{EvaluationReport, StatementReport, TuningResult};
use dta_physical::Configuration;
use dta_server::{ServerError, TuningTarget};
use dta_stats::StatKey;
use dta_workload::{compress, Workload};
use std::collections::BTreeSet;

/// Errors from a tuning session.
#[derive(Debug)]
pub enum TuneError {
    /// The user-specified configuration is not valid (§6.2).
    InvalidUserConfiguration(Vec<dta_physical::ValidityError>),
    /// A server interaction failed.
    Server(ServerError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::InvalidUserConfiguration(errs) => {
                write!(f, "invalid user-specified configuration: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            TuneError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<ServerError> for TuneError {
    fn from(e: ServerError) -> Self {
        TuneError::Server(e)
    }
}

/// Convenience: weighted workload cost under a configuration.
pub fn workload_cost(
    target: &TuningTarget<'_>,
    workload: &Workload,
    config: &Configuration,
) -> Result<f64, ServerError> {
    let eval = CostEvaluator::new(target, &workload.items);
    eval.workload_cost(config)
}

/// Run a full tuning session.
pub fn tune(
    target: &TuningTarget<'_>,
    workload: &Workload,
    options: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    let whatif_server = target.whatif_server();
    let tuning_start_units = whatif_server.overhead_units();

    // base configuration: constraint-enforcing indexes + the (validated)
    // user-specified configuration
    let mut base = whatif_server.raw_configuration();
    if let Some(user) = &options.user_specified {
        let errors = user.validate(target.catalog());
        if !errors.is_empty() {
            return Err(TuneError::InvalidUserConfiguration(errors));
        }
        base = base.union(user);
    }

    // §5.1 workload compression
    let (tuned_workload, _partitions) = if options.compress {
        let out = compress(workload, options.compression);
        (out.compressed, out.partitions)
    } else {
        (workload.clone(), workload.len())
    };
    let items = &tuned_workload.items;

    // ONE shared, thread-safe evaluator serves the whole session:
    // pre-cost estimation, candidate selection, and enumeration all hit
    // the same cache, and its miss counter is the session's what-if tally
    let eval = CostEvaluator::new(target, items);

    // preliminary base costs (pre-statistics) for column-group weighting
    let mut pre_costs = Vec::with_capacity(items.len());
    for i in 0..items.len() {
        pre_costs.push(eval.item_cost(i, &base).map_err(TuneError::Server)?);
    }

    // §2.2 column-group restriction
    let groups = interesting_column_groups(
        target.catalog(),
        items,
        &pre_costs,
        options.colgroup_cost_threshold,
    );

    // §5.2 statistics for the interesting groups (histograms come from
    // singleton groups; densities from the multi-column ones)
    let mut required: Vec<StatKey> = Vec::new();
    let mut table_keys: BTreeSet<(String, String)> = BTreeSet::new();
    for item in items.iter() {
        for t in item.statement.referenced_tables() {
            table_keys.insert((item.database.clone(), t.to_string()));
        }
    }
    for (db, table) in &table_keys {
        for group in groups.for_table(db, table) {
            let cols: Vec<String> = group.iter().cloned().collect();
            required.push(StatKey { database: db.clone(), table: table.clone(), columns: cols });
        }
    }
    let stats_report = target.ensure_statistics(&required, options.reduce_statistics);
    if stats_report.created > 0 {
        // new statistics change what-if estimates; pre-statistics cached
        // costs are stale and must not leak into the search
        eval.invalidate();
    }

    // time-bound tuning: stop when the what-if server has spent the budget
    let budget = options.time_budget_units;
    let stop = move || match budget {
        Some(b) => whatif_server.overhead_units() - tuning_start_units >= b,
        None => false,
    };

    // §2.2 candidate selection (per query, possibly parallel)
    let mut pool = select_candidates(&eval, &base, &groups, options, &stop);

    // §2.2 merging
    merge_candidates(&mut pool);
    let candidates_selected = pool.candidates.len();

    // §2.2/§4 enumeration — shares the selection phase's cache
    let base_cost = eval.workload_cost(&base).map_err(TuneError::Server)?;
    let enumeration = enumerate(&eval, &base, &pool.candidates, whatif_server, options, &stop);

    let storage_bytes = enumeration
        .configuration
        .total_bytes(whatif_server)
        .saturating_sub(base.total_bytes(whatif_server));

    Ok(TuningResult {
        recommendation: enumeration.configuration,
        base_cost,
        recommended_cost: enumeration.cost.min(base_cost),
        statements_tuned: items.len(),
        total_statements: workload.len(),
        total_events: workload.total_events(),
        whatif_calls: eval.whatif_calls(),
        evaluations: pool.evaluations + enumeration.evaluations,
        candidates_generated: pool.generated,
        candidates_selected,
        pool_size: enumeration.pool_size,
        lazy_variants: enumeration.lazy_variants,
        stats_requested: stats_report.requested,
        stats_created: stats_report.created,
        stats_work_units: stats_report.work_units,
        tuning_work_units: whatif_server.overhead_units() - tuning_start_units,
        storage_bytes,
    })
}

/// §6.3 exploratory analysis: evaluate a user-proposed configuration for
/// a workload against the current one, without any search.
///
/// Prices through a [`CostEvaluator`], so a statement whose referenced
/// tables the two configurations cover identically (e.g. the proposal
/// adds nothing relevant to it) is costed once, not twice — the raw
/// two-calls-per-statement path this replaces had no such reuse.
pub fn evaluate_configuration(
    target: &TuningTarget<'_>,
    workload: &Workload,
    current: &Configuration,
    proposed: &Configuration,
) -> Result<EvaluationReport, ServerError> {
    let eval = CostEvaluator::new(target, &workload.items);
    let mut statements = Vec::with_capacity(workload.len());
    let mut current_total = 0.0;
    let mut proposed_total = 0.0;
    for (i, item) in workload.items.iter().enumerate() {
        let (current_cost, _) = eval.item_report(i, current)?;
        let (proposed_cost, used_structures) = eval.item_report(i, proposed)?;
        current_total += item.weight * current_cost;
        proposed_total += item.weight * proposed_cost;
        statements.push(StatementReport {
            database: item.database.clone(),
            sql: item.statement.to_string(),
            weight: item.weight,
            current_cost,
            proposed_cost,
            used_structures,
        });
    }
    Ok(EvaluationReport { statements, current_total, proposed_total })
}
