//! The tuning session: Figure 1's pipeline end to end, wrapped in the
//! robustness layer (DESIGN.md §9) — deterministic work budgets,
//! cooperative cancellation, fault retry/degradation, and
//! checkpoint/resume.

use crate::candidates::{assemble_pool, select_candidates_resumable, ItemSelection};
use crate::checkpoint::{SessionCheckpoint, StatsProgress};
use crate::colgroups::interesting_column_groups;
use crate::control::{Completion, SessionControl, Stage, StopReason};
use crate::cost::CostEvaluator;
use crate::enumeration::{enumerate_observed, EnumerationResult, EnumerationResume};
use crate::merging::merge_candidates;
use crate::obs::{Counter, SessionObserver, Span, SpanName, NOOP};
use crate::options::TuningOptions;
use crate::report::{EvaluationReport, StatementReport, TuningResult};
use dta_physical::Configuration;
use dta_server::{ServerError, TuningTarget};
use dta_stats::StatKey;
use dta_workload::{compress, Workload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Errors from a tuning session.
#[derive(Debug)]
pub enum TuneError {
    /// The user-specified configuration is not valid (§6.2).
    InvalidUserConfiguration(Vec<dta_physical::ValidityError>),
    /// A server interaction failed.
    Server(ServerError),
    /// A resume was handed a structurally inconsistent checkpoint.
    InvalidCheckpoint(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::InvalidUserConfiguration(errs) => {
                write!(f, "invalid user-specified configuration: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            TuneError::Server(e) => write!(f, "server error: {e}"),
            TuneError::InvalidCheckpoint(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Server(e) => Some(e),
            TuneError::InvalidUserConfiguration(_) | TuneError::InvalidCheckpoint(_) => None,
        }
    }
}

impl From<ServerError> for TuneError {
    fn from(e: ServerError) -> Self {
        TuneError::Server(e)
    }
}

/// Convenience: weighted workload cost under a configuration.
pub fn workload_cost(
    target: &TuningTarget<'_>,
    workload: &Workload,
    config: &Configuration,
) -> Result<f64, ServerError> {
    let eval = CostEvaluator::new(target, &workload.items);
    eval.workload_cost(config)
}

/// Run a full tuning session.
///
/// When `options.work_budget_units` is set, the session stops once the
/// budget is consumed and returns its best-so-far recommendation plus a
/// [`SessionCheckpoint`] (anytime tuning); pass that checkpoint to
/// [`tune_resume`] to continue. The budget is deterministic: the same
/// budget cuts the search at the same point on every run and at any
/// `parallel_workers` setting.
pub fn tune(
    target: &TuningTarget<'_>,
    workload: &Workload,
    options: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    tune_with_observer(target, workload, options, &NOOP)
}

/// [`tune`] with a trace sink (DESIGN.md §10): `obs` receives stage
/// spans, events, and per-shard cache statistics, and its
/// [`SessionObserver::summary`] lands in [`TuningResult::observer`].
/// The recommendation is byte-identical to an unobserved run — the
/// observer only reads the deterministic counters; wall-clock time
/// never flows back into the search.
pub fn tune_with_observer(
    target: &TuningTarget<'_>,
    workload: &Workload,
    options: &TuningOptions,
    obs: &dyn SessionObserver,
) -> Result<TuningResult, TuneError> {
    let control = match options.work_budget_units {
        Some(units) => SessionControl::with_budget(units),
        None => SessionControl::unlimited(),
    };
    tune_session(target, workload, options, &control, obs)
}

/// Run a tuning session under an externally owned [`SessionControl`] —
/// the caller keeps the [`crate::CancelHandle`] and can cancel the
/// session from another thread. The control's own budget is used;
/// `options.work_budget_units` is only consulted by [`tune`].
pub fn tune_with_control(
    target: &TuningTarget<'_>,
    workload: &Workload,
    options: &TuningOptions,
    control: &SessionControl,
) -> Result<TuningResult, TuneError> {
    tune_session(target, workload, options, control, &NOOP)
}

/// Shared front door: §5.1 workload compression, then the pipeline.
fn tune_session(
    target: &TuningTarget<'_>,
    workload: &Workload,
    options: &TuningOptions,
    control: &SessionControl,
    obs: &dyn SessionObserver,
) -> Result<TuningResult, TuneError> {
    let (tuned_workload, _partitions) = if options.compress {
        let out = compress(workload, options.compression);
        (out.compressed, out.partitions)
    } else {
        (workload.clone(), workload.len())
    };
    run_session(
        target,
        options,
        control,
        &tuned_workload,
        workload.len(),
        workload.total_events(),
        None,
        obs,
    )
}

/// Continue a budget-exhausted session from its checkpoint, with
/// `extra_budget` fresh work units (`None` = run to convergence).
///
/// The resumed session prices through the checkpoint's warmed cache and
/// replays no completed work, and — against the same tuning target — its
/// final recommendation *and report* are byte-identical to what an
/// uninterrupted run with a sufficient budget would have produced.
pub fn tune_resume(
    target: &TuningTarget<'_>,
    checkpoint: &SessionCheckpoint,
    extra_budget: Option<u64>,
) -> Result<TuningResult, TuneError> {
    checkpoint.validate().map_err(TuneError::InvalidCheckpoint)?;
    let control = SessionControl::resumed(checkpoint.consumed_units, extra_budget);
    run_session(
        target,
        &checkpoint.options,
        &control,
        &checkpoint.workload,
        checkpoint.total_statements,
        checkpoint.total_events,
        Some(checkpoint),
        &NOOP,
    )
}

/// The pipeline proper, shared by fresh and resumed sessions.
///
/// Budget discipline: pre-costing charges one unit per statement,
/// candidate selection charges per block (see
/// [`crate::candidates::SELECTION_BLOCK`]), enumeration charges one unit
/// per evaluation in granted prefixes; column groups, statistics, and
/// merging are poll-only stages. All charging happens at serial
/// coordination points, so a budget cuts at the same place at any worker
/// count. On exhaustion, the checkpoint is captured *before* the
/// epilogue prices the best-so-far report, keeping report-only work out
/// of the resumed session's ledger.
#[allow(clippy::too_many_arguments)]
fn run_session(
    target: &TuningTarget<'_>,
    options: &TuningOptions,
    control: &SessionControl,
    tuned_workload: &Workload,
    total_statements: usize,
    total_events: f64,
    resume: Option<&SessionCheckpoint>,
    obs: &dyn SessionObserver,
) -> Result<TuningResult, TuneError> {
    obs.attach_counters(control.counters());
    let whatif_server = target.whatif_server();
    let overhead_start = whatif_server.overhead_units();
    let prior_work_units = resume.map_or(0.0, |c| c.tuning_work_units);
    let prior_restarts = resume.map_or(0, |c| c.worker_restarts);

    // base configuration: constraint-enforcing indexes + the (validated)
    // user-specified configuration
    let mut base = whatif_server.raw_configuration();
    if let Some(user) = &options.user_specified {
        let errors = user.validate(target.catalog());
        if !errors.is_empty() {
            return Err(TuneError::InvalidUserConfiguration(errors));
        }
        base = base.union(user);
    }

    let items = &tuned_workload.items;

    // ONE shared, thread-safe evaluator serves the whole session:
    // pre-cost estimation, candidate selection, and enumeration all hit
    // the same cache, and its miss counter is the session's what-if
    // tally; it shares the control's counter set so observer telemetry
    // has a single source of truth
    let eval = CostEvaluator::with_counters(target, items, Arc::clone(control.counters()));
    if let Some(cp) = resume {
        eval.import_cache(&cp.cache, cp.whatif_calls);
        eval.restore_fault_state(cp.whatif_retries, cp.retry_backoff_units, &cp.degraded);
    }

    // progress state, seeded from the checkpoint on resume
    let mut pre_costs: Vec<f64> = resume.map_or_else(Vec::new, |c| c.pre_costs.clone());
    let mut stats_progress: Option<StatsProgress> = resume.and_then(|c| c.stats);
    let resume_selections: Vec<ItemSelection> =
        resume.and_then(|c| c.selections.clone()).unwrap_or_default();
    let resume_enumeration: Option<EnumerationResume> = resume.and_then(|c| c.enumeration.clone());

    let mut selections: Option<Vec<ItemSelection>> = None;
    let mut candidates_selected = 0usize;
    let mut enum_result: Option<EnumerationResult> = None;
    let mut enum_cursor: Option<EnumerationResume> = None;

    let cut: Option<(StopReason, Stage)> = 'pipeline: {
        // preliminary base costs (pre-statistics) for column-group
        // weighting — one budget unit per statement
        let pre_span = Span::enter(obs, SpanName::PreCosting);
        while pre_costs.len() < items.len() {
            if let Some(reason) = control.stop() {
                break 'pipeline Some((reason, Stage::PreCosting));
            }
            let i = pre_costs.len();
            // panic isolation, pre-costing edition: a panicking what-if
            // call (fault injection, a poisoned optimizer) is caught,
            // reported as a worker restart, and re-issued until it comes
            // back clean — the same rescue the parallel stages get
            let cost = crate::control::isolated(control, || eval.item_cost(i, &base))
                .unwrap_or_else(|| {
                    Err(ServerError::Fault {
                        kind: dta_server::FaultKind::Permanent,
                        what: "pre-costing what-if panicked twice".into(),
                    })
                });
            pre_costs.push(cost.map_err(TuneError::Server)?);
            control.charge(1);
        }
        // the pre-statistics base costs double as the per-item fallbacks
        // a permanent fault degrades a statement to
        eval.set_fallbacks(pre_costs.clone());
        drop(pre_span);

        // §2.2 column-group restriction (pure computation; poll-only)
        if let Some(reason) = control.stop() {
            break 'pipeline Some((reason, Stage::ColumnGroups));
        }
        let cg_span = Span::enter(obs, SpanName::ColumnGroups);
        let groups = interesting_column_groups(
            target.catalog(),
            items,
            &pre_costs,
            options.colgroup_cost_threshold,
        );
        drop(cg_span);

        // §5.2 statistics for the interesting groups (histograms come
        // from singleton groups; densities from the multi-column ones).
        // A resumed session whose checkpoint passed this stage reuses
        // the stored numbers: the statistics already exist on the target
        // and the imported cache is post-statistics.
        if stats_progress.is_none() {
            if let Some(reason) = control.stop() {
                break 'pipeline Some((reason, Stage::Statistics));
            }
            let _stats_span = Span::enter(obs, SpanName::Statistics);
            let mut required: Vec<StatKey> = Vec::new();
            let mut table_keys: BTreeSet<(String, String)> = BTreeSet::new();
            for item in items.iter() {
                for t in item.statement.referenced_tables() {
                    table_keys.insert((item.database.clone(), t.to_string()));
                }
            }
            for (db, table) in &table_keys {
                for group in groups.for_table(db, table) {
                    let cols: Vec<String> = group.iter().cloned().collect();
                    required.push(StatKey {
                        database: db.clone(),
                        table: table.clone(),
                        columns: cols,
                    });
                }
            }
            let report = target.ensure_statistics(&required, options.reduce_statistics);
            if report.created > 0 {
                // new statistics change what-if estimates; pre-statistics
                // cached costs are stale and must not leak into the search
                eval.invalidate();
            }
            stats_progress = Some(StatsProgress {
                requested: report.requested,
                created: report.created,
                work_units: report.work_units,
                failed: report.failed,
                retries: report.retries,
                backoff_units: report.backoff_units,
            });
            obs.event(
                "stats",
                &format!(
                    "requested={} created={} failed={} retries={}",
                    report.requested, report.created, report.failed, report.retries
                ),
            );
        }

        // §2.2 candidate selection (per query, block-budgeted, possibly
        // parallel within each block)
        let sel_span = Span::enter(obs, SpanName::CandidateSelection);
        let run =
            select_candidates_resumable(&eval, &base, &groups, options, control, resume_selections);
        let interrupted = run.interrupted;
        selections = Some(run.selections);
        if let Some(reason) = interrupted {
            break 'pipeline Some((reason, Stage::CandidateSelection));
        }
        drop(sel_span);
        let mut pool = assemble_pool(selections.as_deref().unwrap_or(&[]));
        control.counters().raise(Counter::PeakPoolSize, pool.candidates.len() as u64);

        // §2.2 merging (pure; poll-only)
        if let Some(reason) = control.stop() {
            break 'pipeline Some((reason, Stage::Merging));
        }
        let merge_span = Span::enter(obs, SpanName::Merging);
        merge_candidates(&mut pool);
        candidates_selected = pool.candidates.len();
        drop(merge_span);
        obs.event("pool", &format!("generated={} merged={candidates_selected}", pool.generated));

        // §2.2/§4 enumeration — shares the selection phase's cache and
        // charges one budget unit per configuration evaluation
        let enum_span = Span::enter(obs, SpanName::Enumeration);
        let erun = enumerate_observed(
            &eval,
            &base,
            &pool.candidates,
            whatif_server,
            options,
            control,
            resume_enumeration,
            obs,
        );
        enum_result = Some(erun.result);
        if let Some((reason, cursor)) = erun.interrupted {
            enum_cursor = Some(cursor);
            break 'pipeline Some((reason, Stage::Enumeration));
        }
        drop(enum_span);
        None
    };

    // A budget-exhausted session checkpoints *before* the epilogue below
    // prices the report, so no report-only cache entries or tallies leak
    // into the resumed ledger.
    let checkpoint = match cut {
        Some((StopReason::BudgetExhausted, stage)) => Some(Box::new(SessionCheckpoint {
            options: options.clone(),
            workload: tuned_workload.clone(),
            total_statements,
            total_events,
            stage,
            consumed_units: control.consumed(),
            tuning_work_units: prior_work_units + (whatif_server.overhead_units() - overhead_start),
            pre_costs: pre_costs.clone(),
            stats: stats_progress,
            selections: selections.clone(),
            enumeration: enum_cursor.clone(),
            cache: eval.export_cache(),
            whatif_calls: eval.whatif_calls(),
            worker_restarts: prior_restarts + control.worker_restarts(),
            whatif_retries: eval.retries(),
            retry_backoff_units: eval.backoff_units(),
            degraded: eval.degraded_items(),
        })),
        _ => None,
    };
    let completion = match cut {
        None => Completion::Complete,
        Some((StopReason::BudgetExhausted, stage)) => Completion::BudgetExhausted { stage },
        Some((StopReason::Cancelled, stage)) => Completion::Cancelled { stage },
    };

    // Epilogue: price the best-so-far recommendation. Anytime guarantee:
    // whatever the cut, the recommendation is a valid configuration, it
    // respects the storage bound and alignment (enumeration enforces
    // both; earlier cuts return the base configuration), and it is never
    // worse than the raw configuration.
    let epilogue_span = Span::enter(obs, SpanName::Epilogue);
    let base_cost = crate::control::isolated(control, || eval.workload_cost(&base))
        .unwrap_or_else(|| {
            Err(ServerError::Fault {
                kind: dta_server::FaultKind::Permanent,
                what: "base-configuration pricing panicked twice".into(),
            })
        })
        .map_err(TuneError::Server)?;
    let (recommendation, recommended_cost, pool_size, lazy_variants, enum_evaluations) =
        match enum_result {
            Some(r) => (r.configuration, r.cost, r.pool_size, r.lazy_variants, r.evaluations),
            None => (base.clone(), base_cost, 0, 0, 0),
        };

    let storage_bytes =
        recommendation.total_bytes(whatif_server).saturating_sub(base.total_bytes(whatif_server));

    let partial_pool = assemble_pool(selections.as_deref().unwrap_or(&[]));
    if candidates_selected == 0 {
        // merging never ran (the cut hit at or before it); report the
        // unmerged tally of the partial pool
        candidates_selected = partial_pool.candidates.len();
    }
    let stats = stats_progress.unwrap_or_default();
    let degraded_statements: Vec<String> =
        eval.degraded_items().iter().map(|&i| items[i].statement.to_string()).collect();

    // deterministic candidate telemetry, tallied once at this serial
    // coordination point (generated/pruned match the report fields)
    let counters = control.counters();
    counters.add(Counter::CandidatesGenerated, partial_pool.generated as u64);
    counters.add(
        Counter::CandidatesPruned,
        partial_pool.generated.saturating_sub(candidates_selected) as u64,
    );
    counters.raise(Counter::PeakPoolSize, pool_size as u64);
    drop(epilogue_span);
    obs.event("completion", &completion.to_string());
    obs.record_cache_shards(&eval.cache_stats());

    Ok(TuningResult {
        recommendation,
        base_cost,
        recommended_cost: recommended_cost.min(base_cost),
        statements_tuned: items.len(),
        total_statements,
        total_events,
        whatif_calls: eval.whatif_calls(),
        evaluations: partial_pool.evaluations + enum_evaluations,
        candidates_generated: partial_pool.generated,
        candidates_selected,
        pool_size,
        lazy_variants,
        stats_requested: stats.requested,
        stats_created: stats.created,
        stats_work_units: stats.work_units,
        tuning_work_units: prior_work_units + (whatif_server.overhead_units() - overhead_start),
        storage_bytes,
        completion,
        worker_restarts: prior_restarts + control.worker_restarts(),
        whatif_retries: eval.retries() + stats.retries,
        retry_backoff_units: eval.backoff_units() + stats.backoff_units,
        degraded_statements,
        checkpoint,
        observer: obs.summary(),
    })
}

/// §6.3 exploratory analysis: evaluate a user-proposed configuration for
/// a workload against the current one, without any search.
///
/// Prices through a [`CostEvaluator`], so a statement whose referenced
/// tables the two configurations cover identically (e.g. the proposal
/// adds nothing relevant to it) is costed once, not twice — the raw
/// two-calls-per-statement path this replaces had no such reuse.
pub fn evaluate_configuration(
    target: &TuningTarget<'_>,
    workload: &Workload,
    current: &Configuration,
    proposed: &Configuration,
) -> Result<EvaluationReport, ServerError> {
    let eval = CostEvaluator::new(target, &workload.items);
    let mut statements = Vec::with_capacity(workload.len());
    let mut current_total = 0.0;
    let mut proposed_total = 0.0;
    for (i, item) in workload.items.iter().enumerate() {
        let (current_cost, _) = eval.item_report(i, current)?;
        let (proposed_cost, used_structures) = eval.item_report(i, proposed)?;
        current_total += item.weight * current_cost;
        proposed_total += item.weight * proposed_cost;
        statements.push(StatementReport {
            database: item.database.clone(),
            sql: item.statement.to_string(),
            weight: item.weight,
            current_cost,
            proposed_cost,
            used_structures,
            whatif_calls: 0,
            retries: 0,
            degraded: false,
        });
    }
    // per-statement what-if accounting: shards map one-to-one onto
    // statements, so shard i's tally is statement i's retry history
    let shard_stats = eval.cache_stats();
    let degraded = eval.degraded_items();
    for (i, report) in statements.iter_mut().enumerate() {
        report.whatif_calls = shard_stats[i].calls as usize;
        report.retries = shard_stats[i].retries as usize;
        report.degraded = degraded.binary_search(&i).is_ok();
    }
    Ok(EvaluationReport { statements, current_total, proposed_total })
}
