//! Merging (§2.2): derive structures that serve *multiple* queries from
//! the per-query candidates.
//!
//! Candidate selection optimizes one query at a time, so under a storage
//! bound or an update-heavy workload its output is over-specialized.
//! Merging adds:
//!
//! * **index merging** [8] — two indexes on the same table combine into
//!   one whose keys are the first's keys followed by the second's
//!   unclaimed keys, with the union of included columns;
//! * **view merging** [3] — views over the same join graph combine by
//!   unioning group-by columns and aggregates;
//! * **partitioned merging** [4] — merged structures inherit each
//!   parent's partitioning as variants, which is what makes merging
//!   "a lot harder with the inclusion of partitioning".

use crate::candidates::CandidatePool;
use dta_physical::{Index, IndexKind, MaterializedView, PhysicalStructure};

/// Cap on merged-index key+include width (columns) to avoid degenerate
/// kitchen-sink indexes.
pub const MAX_MERGED_COLUMNS: usize = 10;

/// Merge two non-clustered indexes on the same table.
pub fn merge_indexes(a: &Index, b: &Index) -> Option<Index> {
    if a.database != b.database || a.table != b.table {
        return None;
    }
    if a.kind != IndexKind::NonClustered || b.kind != IndexKind::NonClustered {
        return None;
    }
    // keys: a's keys, then b's keys not already present
    let mut keys: Vec<String> = a.key_columns.clone();
    for k in &b.key_columns {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    // includes: union of both includes minus keys
    let mut includes: Vec<String> = Vec::new();
    for c in a.included_columns.iter().chain(b.included_columns.iter()) {
        if !keys.contains(c) && !includes.contains(c) {
            includes.push(c.clone());
        }
    }
    if keys.len() + includes.len() > MAX_MERGED_COLUMNS {
        return None;
    }
    let merged = Index {
        database: a.database.clone(),
        table: a.table.clone(),
        kind: IndexKind::NonClustered,
        key_columns: keys,
        included_columns: includes,
        partitioning: None,
        enforces_constraint: false,
    };
    if merged == *a || merged == *b {
        return None; // nothing new
    }
    Some(merged)
}

/// Merge two views over the same join graph.
pub fn merge_views(a: &MaterializedView, b: &MaterializedView) -> Option<MaterializedView> {
    if a.database != b.database || a.tables != b.tables || a.join_pairs != b.join_pairs {
        return None;
    }
    if !a.is_grouped() || !b.is_grouped() {
        return None; // join-view merging adds no value over the wider one
    }
    let mut merged = a.clone();
    merged.group_by.extend(b.group_by.iter().cloned());
    merged.aggregates.extend(b.aggregates.iter().cloned());
    merged.partitioning = None;
    merged.normalize();
    if merged.group_by.len() > 8 {
        return None;
    }
    if merged == *a || merged == *b {
        return None;
    }
    Some(merged)
}

/// Augment a candidate pool with merged structures (one round of pairwise
/// merging, as in the paper's Merging step). Returns how many structures
/// were added.
pub fn merge_candidates(pool: &mut CandidatePool) -> usize {
    let structures = pool.structures();
    let mut added = 0;

    // indexes grouped by (db, table)
    for i in 0..structures.len() {
        for j in (i + 1)..structures.len() {
            match (&structures[i], &structures[j]) {
                (PhysicalStructure::Index(a), PhysicalStructure::Index(b)) => {
                    if let Some(m) = merge_indexes(a, b) {
                        let s = PhysicalStructure::Index(m);
                        if !pool.structures().contains(&s) {
                            pool.add(s.clone(), 0.0);
                            added += 1;
                            // partitioned variants from either parent
                            for parent in [a, b] {
                                if let Some(p) = &parent.partitioning {
                                    if let PhysicalStructure::Index(m) = &s {
                                        let v = PhysicalStructure::Index(
                                            m.clone().partitioned(p.clone()),
                                        );
                                        if !pool.structures().contains(&v) {
                                            pool.add(v, 0.0);
                                            added += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                (PhysicalStructure::View(a), PhysicalStructure::View(b)) => {
                    if let Some(m) = merge_views(a, b) {
                        let s = PhysicalStructure::View(m);
                        if !pool.structures().contains(&s) {
                            pool.add(s, 0.0);
                            added += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_physical::{JoinPair, QualifiedColumn, RangePartitioning, ViewAggregate};
    use dta_sql::AggFunc;

    #[test]
    fn index_merge_combines_keys_and_includes() {
        let a = Index::non_clustered("db", "t", &["a"], &["x"]);
        let b = Index::non_clustered("db", "t", &["b", "a"], &["y"]);
        let m = merge_indexes(&a, &b).unwrap();
        assert_eq!(m.key_columns, vec!["a", "b"]);
        let mut incl = m.included_columns.clone();
        incl.sort();
        assert_eq!(incl, vec!["x", "y"]);
    }

    #[test]
    fn index_merge_refuses_cross_table_and_clustered() {
        let a = Index::non_clustered("db", "t", &["a"], &[]);
        let b = Index::non_clustered("db", "u", &["a"], &[]);
        assert!(merge_indexes(&a, &b).is_none());
        let c = Index::clustered("db", "t", &["a"]);
        assert!(merge_indexes(&a, &c).is_none());
    }

    #[test]
    fn index_merge_refuses_no_op() {
        let a = Index::non_clustered("db", "t", &["a", "b"], &[]);
        let b = Index::non_clustered("db", "t", &["a"], &[]);
        // merging b into a yields a again
        assert!(merge_indexes(&a, &b).is_none());
    }

    #[test]
    fn index_merge_respects_width_cap() {
        let a = Index::non_clustered("db", "t", &["a", "b", "c"], &["i1", "i2", "i3"]);
        let b = Index::non_clustered("db", "t", &["d", "e"], &["i4", "i5", "i6"]);
        assert!(merge_indexes(&a, &b).is_none());
    }

    fn view(groups: &[(&str, &str)], aggs: &[AggFunc]) -> MaterializedView {
        MaterializedView::grouped(
            "db",
            &["l", "o"],
            vec![JoinPair::new(QualifiedColumn::new("l", "lk"), QualifiedColumn::new("o", "ok"))],
            groups.iter().map(|(t, c)| QualifiedColumn::new(t, c)).collect(),
            aggs.iter()
                .map(|f| ViewAggregate::column(*f, QualifiedColumn::new("l", "price")))
                .collect(),
        )
    }

    #[test]
    fn view_merge_unions_grouping() {
        let a = view(&[("o", "date")], &[AggFunc::Sum]);
        let b = view(&[("o", "status")], &[AggFunc::Min]);
        let m = merge_views(&a, &b).unwrap();
        assert_eq!(m.group_by.len(), 2);
        assert_eq!(m.aggregates.len(), 2);
    }

    #[test]
    fn view_merge_requires_same_join_graph() {
        let a = view(&[("o", "date")], &[AggFunc::Sum]);
        let mut b = view(&[("o", "status")], &[AggFunc::Sum]);
        b.join_pairs.clear();
        assert!(merge_views(&a, &b).is_none());
    }

    #[test]
    fn pool_merging_adds_and_tracks_partitioned_variants() {
        let mut pool = CandidatePool::default();
        let p = RangePartitioning::new("a", vec![dta_catalog::Value::Int(10)]);
        pool.add(
            PhysicalStructure::Index(
                Index::non_clustered("db", "t", &["a"], &[]).partitioned(p.clone()),
            ),
            5.0,
        );
        pool.add(PhysicalStructure::Index(Index::non_clustered("db", "t", &["b"], &[])), 3.0);
        let added = merge_candidates(&mut pool);
        assert!(added >= 2, "merged + partitioned variant, got {added}");
        let names: Vec<String> = pool.structures().iter().map(|s| s.name()).collect();
        assert!(names.iter().any(|n| n.contains("a_b") || n.contains("b_a")), "{names:?}");
        // one of the merged variants is partitioned on a
        assert!(
            pool.structures().iter().any(|s| matches!(s, PhysicalStructure::Index(ix)
            if ix.key_columns.len() == 2 && ix.partitioning.is_some())),
            "{names:?}"
        );
    }
}
