//! Greedy(m, k) — the search scheme used by both Candidate Selection and
//! Enumeration (§2.2, citing [8]).
//!
//! Greedy(m, k) first finds the *optimal* subset of up to `m` structures
//! by exhaustive enumeration, then extends it greedily one structure at a
//! time up to `k` total. The guarantee: optimal for answer sizes ≤ m, and
//! in practice very close to optimal beyond because the seed avoids the
//! classic greedy trap of a locally-good-but-globally-poor first pick.

/// Evaluate a subset. `None` means the subset is infeasible (e.g. over
/// the storage bound); otherwise the value is a cost (lower = better).
pub type EvalFn<'e, S> = dyn FnMut(&[&S]) -> Option<f64> + 'e;

/// Result of a Greedy(m, k) run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome<S> {
    /// Chosen structures, in pick order.
    pub chosen: Vec<S>,
    /// Cost of the chosen set (the empty set's cost if nothing helps).
    pub cost: f64,
    /// Number of evaluations performed.
    pub evaluations: usize,
}

/// Run Greedy(m, k) over `candidates`.
///
/// `base_cost` is the cost of the empty selection; a subset is only ever
/// adopted if it strictly improves on the incumbent. `stop` is polled
/// between evaluations for time-bound tuning.
pub fn greedy_mk<S: Clone>(
    candidates: &[S],
    base_cost: f64,
    m: usize,
    k: usize,
    eval: &mut EvalFn<'_, S>,
    stop: &mut dyn FnMut() -> bool,
) -> GreedyOutcome<S> {
    let mut evaluations = 0usize;
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_cost = base_cost;

    // Phase 1: exhaustive over subsets of size 1..=m.
    let m = m.min(candidates.len());
    let mut stack: Vec<Vec<usize>> = (0..candidates.len()).map(|i| vec![i]).collect();
    while let Some(set) = stack.pop() {
        if stop() {
            return GreedyOutcome {
                chosen: best_set.iter().map(|&i| candidates[i].clone()).collect(),
                cost: best_cost,
                evaluations,
            };
        }
        let refs: Vec<&S> = set.iter().map(|&i| &candidates[i]).collect();
        evaluations += 1;
        if let Some(cost) = eval(&refs) {
            if cost < best_cost {
                best_cost = cost;
                best_set = set.clone();
            }
        }
        if set.len() < m {
            let last = *set.last().expect("non-empty subset");
            for next in (last + 1)..candidates.len() {
                let mut bigger = set.clone();
                bigger.push(next);
                stack.push(bigger);
            }
        }
    }

    // Phase 2: greedy extension up to k.
    while best_set.len() < k.max(m) {
        if stop() {
            break;
        }
        let mut round_best: Option<(usize, f64)> = None;
        for i in 0..candidates.len() {
            if best_set.contains(&i) {
                continue;
            }
            if stop() {
                break;
            }
            let mut set = best_set.clone();
            set.push(i);
            let refs: Vec<&S> = set.iter().map(|&j| &candidates[j]).collect();
            evaluations += 1;
            if let Some(cost) = eval(&refs) {
                if cost < round_best.map_or(best_cost, |(_, c)| c) {
                    round_best = Some((i, cost));
                }
            }
        }
        match round_best {
            Some((i, cost)) => {
                best_set.push(i);
                best_cost = cost;
            }
            None => break, // no further improvement
        }
    }

    GreedyOutcome {
        chosen: best_set.iter().map(|&i| candidates[i].clone()).collect(),
        cost: best_cost,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_stop() -> impl FnMut() -> bool {
        || false
    }

    #[test]
    fn finds_optimal_pair_that_greedy_misses() {
        // classic trap: {a} is the best singleton, but {b, c} together are
        // far better and exclude a. Greedy(1, k) would seed with `a`;
        // Greedy(2, k) finds {b, c} exhaustively.
        let candidates = ["a", "b", "c"];
        let cost = |set: &[&&str]| {
            let mut names: Vec<&str> = set.iter().map(|s| **s).collect();
            names.sort_unstable();
            Some(match names.as_slice() {
                [] => 100.0,
                ["a"] => 50.0,
                ["b"] | ["c"] => 80.0,
                ["b", "c"] => 10.0,
                // sets containing `a` alongside others stay mediocre
                _ => 49.0,
            })
        };

        let g1 = greedy_mk(&candidates, 100.0, 1, 3, &mut { cost }, &mut no_stop());
        let g2 = greedy_mk(&candidates, 100.0, 2, 3, &mut { cost }, &mut no_stop());
        assert!(g1.cost > g2.cost, "g1={} g2={}", g1.cost, g2.cost);
        assert_eq!(g2.cost, 10.0);
        let mut chosen = g2.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec!["b", "c"]);
    }

    #[test]
    fn greedy_extension_beyond_m() {
        // additive benefits: every item shaves 10 off
        let candidates: Vec<usize> = (0..6).collect();
        let mut eval = |set: &[&usize]| Some(100.0 - 10.0 * set.len() as f64);
        let g = greedy_mk(&candidates, 100.0, 2, 4, &mut eval, &mut no_stop());
        assert_eq!(g.chosen.len(), 4);
        assert_eq!(g.cost, 60.0);
    }

    #[test]
    fn stops_when_no_improvement() {
        let candidates = ["x", "y"];
        let mut eval = |set: &[&&str]| {
            if set.len() == 1 && **set[0] == *"x" {
                Some(90.0)
            } else {
                Some(95.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 1, 5, &mut eval, &mut no_stop());
        assert_eq!(g.chosen, vec!["x"]);
        assert_eq!(g.cost, 90.0);
    }

    #[test]
    fn infeasible_subsets_skipped() {
        // "y" is infeasible (over storage); the best feasible is "x"
        let candidates = ["x", "y"];
        let mut eval = |set: &[&&str]| {
            if set.iter().any(|s| ***s == *"y") {
                None
            } else {
                Some(50.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 2, 2, &mut eval, &mut no_stop());
        assert_eq!(g.chosen, vec!["x"]);
    }

    #[test]
    fn empty_candidates() {
        let candidates: Vec<&str> = vec![];
        let mut eval = |_: &[&&str]| Some(1.0);
        let g = greedy_mk(&candidates, 100.0, 2, 4, &mut eval, &mut no_stop());
        assert!(g.chosen.is_empty());
        assert_eq!(g.cost, 100.0);
        assert_eq!(g.evaluations, 0);
    }

    #[test]
    fn stop_cuts_search_short() {
        let candidates: Vec<usize> = (0..100).collect();
        let mut calls = 0;
        let mut eval = |_: &[&usize]| {
            calls += 1;
            Some(100.0)
        };
        let mut n = 0;
        let mut stop = move || {
            n += 1;
            n > 5
        };
        let g = greedy_mk(&candidates, 100.0, 2, 4, &mut eval, &mut stop);
        assert!(g.evaluations <= 6);
    }

    #[test]
    fn never_adopts_non_improving_set() {
        let candidates = ["a"];
        let mut eval = |_: &[&&str]| Some(100.0); // equal, not better
        let g = greedy_mk(&candidates, 100.0, 1, 1, &mut eval, &mut no_stop());
        assert!(g.chosen.is_empty());
    }
}
