//! Greedy(m, k) — the search scheme used by both Candidate Selection and
//! Enumeration (§2.2, citing [8]).
//!
//! Greedy(m, k) first finds the *optimal* subset of up to `m` structures
//! by exhaustive enumeration, then extends it greedily one structure at a
//! time up to `k` total. The guarantee: optimal for answer sizes ≤ m, and
//! in practice very close to optimal beyond because the seed avoids the
//! classic greedy trap of a locally-good-but-globally-poor first pick.
//!
//! Both phases are embarrassingly parallel — Phase 1's subsets are
//! independent, and within one Phase-2 round every extension of the
//! incumbent is independent — so both fan out across `workers` threads.
//! Determinism is preserved by construction: work is generated in one
//! canonical order (subsets size-ascending then lexicographic; round
//! extensions by candidate index) and the winner of each reduction is the
//! minimum by `(cost, position)`, so the earliest-generated entrant wins
//! cost ties exactly as a serial left-to-right scan would. Parallel and
//! serial runs therefore return bit-identical outcomes.

use crate::det;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluate a subset. `None` means the subset is infeasible (e.g. over
/// the storage bound); otherwise the value is a cost (lower = better).
///
/// `Sync` because evaluations fan out across worker threads.
pub type EvalFn<'e, S> = dyn Fn(&[&S]) -> Option<f64> + Sync + 'e;

/// Polled between evaluations for time-bound tuning.
pub type StopFn<'e> = dyn Fn() -> bool + Sync + 'e;

/// Result of a Greedy(m, k) run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome<S> {
    /// Chosen structures, in pick order.
    pub chosen: Vec<S>,
    /// Cost of the chosen set (the empty set's cost if nothing helps).
    pub cost: f64,
    /// Number of evaluations performed.
    pub evaluations: usize,
}

/// Find the minimum of `f` over `0..n` by `(cost, position)`.
///
/// Positions where `f` returns `None` (infeasible) are skipped. `stop`
/// is polled before each evaluation; on a stop, remaining positions are
/// abandoned (each worker stops where it is). Position tie-breaking makes
/// the reduction independent of thread count and interleaving: the result
/// for a completed run is identical for any `workers`.
fn par_min(
    n: usize,
    workers: usize,
    evaluations: &AtomicUsize,
    stop: &StopFn<'_>,
    f: &(dyn Fn(usize) -> Option<f64> + Sync),
) -> Option<(usize, f64)> {
    let scan = |positions: &mut dyn Iterator<Item = usize>| -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for pos in positions {
            if stop() {
                break;
            }
            // dta-lint: allow(R6): monotonic telemetry counter; the value is
            // only read after every worker has joined, so no ordering is
            // needed for correctness.
            evaluations.fetch_add(1, Ordering::Relaxed);
            if let Some(cost) = f(pos) {
                best = det::min_by_cost_position((pos, cost), best);
            }
        }
        best
    };
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return scan(&mut (0..n));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || scan(&mut ((w..n).step_by(workers)))))
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for h in handles {
            if let Some(local) = h.join().expect("greedy worker panicked") {
                best = det::min_by_cost_position(local, best);
            }
        }
        best
    })
}

/// All index subsets of `0..n` with size 1..=m, size-ascending and
/// lexicographic within each size — the canonical evaluation order.
fn subsets_up_to(n: usize, m: usize) -> Vec<Vec<usize>> {
    fn extend(n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        let start = cur.last().map_or(0, |&l| l + 1);
        for i in start..n {
            cur.push(i);
            extend(n, size, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    for size in 1..=m.min(n) {
        extend(n, size, &mut Vec::new(), &mut out);
    }
    out
}

/// Run Greedy(m, k) over `candidates`, fanning evaluations out over
/// `workers` threads (1 = fully serial, same result either way).
///
/// `base_cost` is the cost of the empty selection; a subset is only ever
/// adopted if it strictly improves on the incumbent. `stop` is polled
/// between evaluations for time-bound tuning.
pub fn greedy_mk<S: Clone + Sync>(
    candidates: &[S],
    base_cost: f64,
    m: usize,
    k: usize,
    workers: usize,
    eval: &EvalFn<'_, S>,
    stop: &StopFn<'_>,
) -> GreedyOutcome<S> {
    let evaluations = AtomicUsize::new(0);
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_cost = base_cost;
    let outcome = |best_set: &[usize], best_cost: f64| GreedyOutcome {
        chosen: best_set.iter().map(|&i| candidates[i].clone()).collect(),
        cost: best_cost,
        // dta-lint: allow(R6): read after par_min joined every worker;
        // the counter is telemetry, not synchronization.
        evaluations: evaluations.load(Ordering::Relaxed),
    };

    // Phase 1: exhaustive over subsets of size 1..=m.
    let subsets = subsets_up_to(candidates.len(), m);
    let eval_subset = |pos: usize| -> Option<f64> {
        let refs: Vec<&S> = subsets[pos].iter().map(|&i| &candidates[i]).collect();
        eval(&refs)
    };
    if let Some((pos, cost)) = par_min(subsets.len(), workers, &evaluations, stop, &eval_subset) {
        if det::improves(cost, best_cost) {
            best_cost = cost;
            best_set = subsets[pos].clone();
        }
    }
    if stop() {
        return outcome(&best_set, best_cost);
    }

    // Phase 2: greedy extension up to k, one winner per round.
    while best_set.len() < k.max(m) {
        if stop() {
            break;
        }
        let remaining: Vec<usize> =
            (0..candidates.len()).filter(|i| !best_set.contains(i)).collect();
        if remaining.is_empty() {
            break;
        }
        let incumbent = &best_set;
        let eval_extension = |pos: usize| -> Option<f64> {
            let mut set = incumbent.clone();
            set.push(remaining[pos]);
            let refs: Vec<&S> = set.iter().map(|&j| &candidates[j]).collect();
            eval(&refs)
        };
        match par_min(remaining.len(), workers, &evaluations, stop, &eval_extension) {
            Some((pos, cost)) if det::improves(cost, best_cost) => {
                best_set.push(remaining[pos]);
                best_cost = cost;
            }
            _ => break, // no further improvement
        }
    }

    outcome(&best_set, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_stop() -> impl Fn() -> bool + Sync {
        || false
    }

    #[test]
    fn canonical_subset_order() {
        assert_eq!(
            subsets_up_to(3, 2),
            vec![vec![0], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2],]
        );
        assert!(subsets_up_to(0, 2).is_empty());
        assert_eq!(subsets_up_to(2, 5).len(), 3, "m is clamped to n");
    }

    #[test]
    fn finds_optimal_pair_that_greedy_misses() {
        // classic trap: {a} is the best singleton, but {b, c} together are
        // far better and exclude a. Greedy(1, k) would seed with `a`;
        // Greedy(2, k) finds {b, c} exhaustively.
        let candidates = ["a", "b", "c"];
        let cost = |set: &[&&str]| {
            let mut names: Vec<&str> = set.iter().map(|s| **s).collect();
            names.sort_unstable();
            Some(match names.as_slice() {
                [] => 100.0,
                ["a"] => 50.0,
                ["b"] | ["c"] => 80.0,
                ["b", "c"] => 10.0,
                // sets containing `a` alongside others stay mediocre
                _ => 49.0,
            })
        };

        let g1 = greedy_mk(&candidates, 100.0, 1, 3, 1, &cost, &no_stop());
        let g2 = greedy_mk(&candidates, 100.0, 2, 3, 1, &cost, &no_stop());
        assert!(g1.cost > g2.cost, "g1={} g2={}", g1.cost, g2.cost);
        assert_eq!(g2.cost, 10.0);
        let mut chosen = g2.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec!["b", "c"]);
    }

    #[test]
    fn greedy_extension_beyond_m() {
        // additive benefits: every item shaves 10 off
        let candidates: Vec<usize> = (0..6).collect();
        let eval = |set: &[&usize]| Some(100.0 - 10.0 * set.len() as f64);
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &no_stop());
        assert_eq!(g.chosen.len(), 4);
        assert_eq!(g.cost, 60.0);
    }

    #[test]
    fn stops_when_no_improvement() {
        let candidates = ["x", "y"];
        let eval = |set: &[&&str]| {
            if set.len() == 1 && **set[0] == *"x" {
                Some(90.0)
            } else {
                Some(95.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 1, 5, 1, &eval, &no_stop());
        assert_eq!(g.chosen, vec!["x"]);
        assert_eq!(g.cost, 90.0);
    }

    #[test]
    fn infeasible_subsets_skipped() {
        // "y" is infeasible (over storage); the best feasible is "x"
        let candidates = ["x", "y"];
        let eval = |set: &[&&str]| {
            if set.iter().any(|s| ***s == *"y") {
                None
            } else {
                Some(50.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 2, 2, 1, &eval, &no_stop());
        assert_eq!(g.chosen, vec!["x"]);
    }

    #[test]
    fn empty_candidates() {
        let candidates: Vec<&str> = vec![];
        let eval = |_: &[&&str]| Some(1.0);
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &no_stop());
        assert!(g.chosen.is_empty());
        assert_eq!(g.cost, 100.0);
        assert_eq!(g.evaluations, 0);
    }

    #[test]
    fn stop_cuts_search_short() {
        let candidates: Vec<usize> = (0..100).collect();
        let eval = |_: &[&usize]| Some(100.0);
        let n = AtomicUsize::new(0);
        let stop = || n.fetch_add(1, Ordering::Relaxed) + 1 > 5;
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &stop);
        assert!(g.evaluations <= 6, "evaluations={}", g.evaluations);
    }

    #[test]
    fn never_adopts_non_improving_set() {
        let candidates = ["a"];
        let eval = |_: &[&&str]| Some(100.0); // equal, not better
        let g = greedy_mk(&candidates, 100.0, 1, 1, 1, &eval, &no_stop());
        assert!(g.chosen.is_empty());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // a lumpy deterministic cost surface with deliberate ties: subsets
        // {1} and {2} tie, and several pairs tie — position tie-breaking
        // must pick the same winner at any worker count
        let candidates: Vec<usize> = (0..12).collect();
        let eval = |set: &[&usize]| {
            let s: usize = set.iter().map(|&&i| i).sum();
            let n = set.len();
            Some(1000.0 - (17 * s % 101) as f64 - 31.0 * n as f64)
        };
        let serial = greedy_mk(&candidates, 1000.0, 2, 6, 1, &eval, &no_stop());
        for workers in [2, 4, 7] {
            let parallel = greedy_mk(&candidates, 1000.0, 2, 6, workers, &eval, &no_stop());
            assert_eq!(serial.chosen, parallel.chosen, "workers={workers}");
            assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits(), "workers={workers}");
            assert_eq!(serial.evaluations, parallel.evaluations, "workers={workers}");
        }
    }
}
