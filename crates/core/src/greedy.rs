//! Greedy(m, k) — the search scheme used by both Candidate Selection and
//! Enumeration (§2.2, citing [8]).
//!
//! Greedy(m, k) first finds the *optimal* subset of up to `m` structures
//! by exhaustive enumeration, then extends it greedily one structure at a
//! time up to `k` total. The guarantee: optimal for answer sizes ≤ m, and
//! in practice very close to optimal beyond because the seed avoids the
//! classic greedy trap of a locally-good-but-globally-poor first pick.
//!
//! Both phases are embarrassingly parallel — Phase 1's subsets are
//! independent, and within one Phase-2 round every extension of the
//! incumbent is independent — so both fan out across `workers` threads.
//! Determinism is preserved by construction: work is generated in one
//! canonical order (subsets size-ascending then lexicographic; round
//! extensions by candidate index) and the winner of each reduction is the
//! minimum by `(cost, position)`, so the earliest-generated entrant wins
//! cost ties exactly as a serial left-to-right scan would. Parallel and
//! serial runs therefore return bit-identical outcomes.
//!
//! Two robustness layers sit on top (anytime tuning):
//!
//! * **Panic isolation** — every evaluation runs under `catch_unwind`
//!   (on the serial path too) and is retried until it comes back clean,
//!   up to a fixed bound; transient panics fire once per call site, and
//!   a workload-level evaluation crosses one site per statement, so each
//!   retry clears at least one site and the evaluation converges to the
//!   cost the clean schedule would have seen — the recommendation is
//!   byte-identical with and without the mid-run rescue. A permanently
//!   poisonous evaluation exhausts the bound and is skipped as
//!   infeasible instead of killing the session.
//! * **Deterministic budgets** — [`greedy_mk_resumable`] charges the
//!   session's [`SessionControl`] one unit per evaluation, granted in
//!   canonical-prefix batches at serial coordination points. Exhaustion
//!   returns the best-so-far outcome plus a [`GreedySnapshot`] cursor
//!   from which a later call continues to the byte-identical final
//!   answer.

use crate::control::{SessionControl, StopReason};
use crate::det;
use crate::obs::{SessionObserver, Span, SpanName, NOOP};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluate a subset. `None` means the subset is infeasible (e.g. over
/// the storage bound); otherwise the value is a cost (lower = better).
///
/// `Sync` because evaluations fan out across worker threads.
pub type EvalFn<'e, S> = dyn Fn(&[&S]) -> Option<f64> + Sync + 'e;

/// Polled between evaluations for cancellation.
pub type StopFn<'e> = dyn Fn() -> bool + Sync + 'e;

/// Result of a Greedy(m, k) run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome<S> {
    /// Chosen structures, in pick order.
    pub chosen: Vec<S>,
    /// Cost of the chosen set (the empty set's cost if nothing helps).
    pub cost: f64,
    /// Number of evaluations performed.
    pub evaluations: usize,
    /// Parallel workers that panicked and had their slice re-run
    /// serially (0 in a healthy run).
    pub worker_restarts: usize,
}

/// Find the minimum of `f` over `0..n` by `(cost, position)`; returns the
/// winner plus the number of evaluations performed.
///
/// Positions where `f` returns `None` (infeasible) are skipped. `stop`
/// is polled before each evaluation; on a stop, remaining positions are
/// abandoned (each worker stops where it is). Position tie-breaking makes
/// the reduction independent of thread count and interleaving: the result
/// for a completed run is identical for any `workers`.
///
/// Every evaluation is individually isolated: each panic at a position
/// is noted in `restarts` and the position retried, up to
/// [`crate::control::MAX_PANIC_RETRIES`] times. A *transient* panic
/// (fault injection, a recovering server — once per call site) then
/// yields the cost the clean schedule would have seen, so the reduction
/// — and hence the recommendation — is byte-identical with and without
/// the mid-run rescue; only a position that never comes back clean
/// degrades to "infeasible". The guard is identical on the serial and
/// parallel paths, so no panic escapes at any worker count.
fn par_min(
    n: usize,
    workers: usize,
    stop: &StopFn<'_>,
    restarts: &AtomicUsize,
    f: &(dyn Fn(usize) -> Option<f64> + Sync),
) -> (Option<(usize, f64)>, usize) {
    let scan = |positions: &mut dyn Iterator<Item = usize>| -> (Option<(usize, f64)>, usize) {
        let mut best: Option<(usize, f64)> = None;
        let mut count = 0usize;
        for pos in positions {
            if stop() {
                break;
            }
            count += 1;
            let outcome = crate::control::isolated_with(
                &|| {
                    restarts.fetch_add(1, Ordering::SeqCst);
                },
                || f(pos),
            );
            if let Some(Some(cost)) = outcome {
                best = det::min_by_cost_position((pos, cost), best);
            }
        }
        (best, count)
    };
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return scan(&mut (0..n));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| scan(&mut ((w..n).step_by(workers)))))
                })
            })
            .collect();
        let mut best: Option<(usize, f64)> = None;
        let mut count = 0usize;
        for (w, h) in handles.into_iter().enumerate() {
            let (local, local_count) = match h.join() {
                Ok(Ok(result)) => result,
                // out-of-band: per-position guards make a worker-level
                // panic (iterator machinery, thread spawn) vanishingly
                // rare, but if it happens the slice is redone serially
                _ => {
                    restarts.fetch_add(1, Ordering::SeqCst);
                    scan(&mut ((w..n).step_by(workers)))
                }
            };
            count += local_count;
            if let Some(local) = local {
                best = det::min_by_cost_position(local, best);
            }
        }
        (best, count)
    })
}

/// All index subsets of `0..n` with size 1..=m, size-ascending and
/// lexicographic within each size — the canonical evaluation order.
fn subsets_up_to(n: usize, m: usize) -> Vec<Vec<usize>> {
    fn extend(n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        let start = cur.last().map_or(0, |&l| l + 1);
        for i in start..n {
            cur.push(i);
            extend(n, size, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    for size in 1..=m.min(n) {
        extend(n, size, &mut Vec::new(), &mut out);
    }
    out
}

/// Run Greedy(m, k) over `candidates`, fanning evaluations out over
/// `workers` threads (1 = fully serial, same result either way).
///
/// `base_cost` is the cost of the empty selection; a subset is only ever
/// adopted if it strictly improves on the incumbent. `stop` is polled
/// between evaluations for cancellation.
pub fn greedy_mk<S: Clone + Sync>(
    candidates: &[S],
    base_cost: f64,
    m: usize,
    k: usize,
    workers: usize,
    eval: &EvalFn<'_, S>,
    stop: &StopFn<'_>,
) -> GreedyOutcome<S> {
    let restarts = AtomicUsize::new(0);
    let mut evaluations = 0usize;
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_cost = base_cost;

    // Phase 1: exhaustive over subsets of size 1..=m.
    let subsets = subsets_up_to(candidates.len(), m);
    let eval_subset = |pos: usize| -> Option<f64> {
        let refs: Vec<&S> = subsets[pos].iter().map(|&i| &candidates[i]).collect();
        eval(&refs)
    };
    let (winner, count) = par_min(subsets.len(), workers, stop, &restarts, &eval_subset);
    evaluations += count;
    if let Some((pos, cost)) = winner {
        if det::improves(cost, best_cost) {
            best_cost = cost;
            best_set = subsets[pos].clone();
        }
    }

    // Phase 2: greedy extension up to k, one winner per round.
    while !stop() && best_set.len() < k.max(m) {
        let remaining: Vec<usize> =
            (0..candidates.len()).filter(|i| !best_set.contains(i)).collect();
        if remaining.is_empty() {
            break;
        }
        let incumbent = &best_set;
        let eval_extension = |pos: usize| -> Option<f64> {
            let mut set = incumbent.clone();
            set.push(remaining[pos]);
            let refs: Vec<&S> = set.iter().map(|&j| &candidates[j]).collect();
            eval(&refs)
        };
        let (winner, count) = par_min(remaining.len(), workers, stop, &restarts, &eval_extension);
        evaluations += count;
        match winner {
            Some((pos, cost)) if det::improves(cost, best_cost) => {
                best_set.push(remaining[pos]);
                best_cost = cost;
            }
            _ => break, // no further improvement
        }
    }

    GreedyOutcome {
        chosen: best_set.iter().map(|&i| candidates[i].clone()).collect(),
        cost: best_cost,
        evaluations,
        worker_restarts: restarts.load(Ordering::SeqCst),
    }
}

/// Where an interrupted Greedy(m, k) run stopped, in canonical-order
/// coordinates that a resumed run can re-derive.
#[derive(Debug, Clone, PartialEq)]
pub enum GreedyCursor {
    /// Mid Phase 1: `next` indexes the canonical subset list;
    /// `round_best` is the `(position, cost)` front over subsets
    /// `0..next` (not yet adopted — adoption happens when the phase
    /// completes).
    Phase1 {
        /// Next canonical subset position to evaluate.
        next: usize,
        /// Best `(position, cost)` seen so far in the phase.
        round_best: Option<(usize, f64)>,
    },
    /// Mid a Phase-2 round: `next` indexes the round's `remaining` list
    /// (recomputed deterministically from the adopted set on resume).
    Phase2 {
        /// Next position in the round's `remaining` list.
        next: usize,
        /// Best `(position, cost)` seen so far in the round.
        round_best: Option<(usize, f64)>,
    },
}

/// Complete state of an interrupted Greedy(m, k) run: the adopted
/// incumbent plus the in-flight round's cursor. Resuming from this with
/// the same candidates and evaluator reproduces the uninterrupted run's
/// answer bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedySnapshot {
    /// Adopted candidate indexes, in pick order.
    pub best_set: Vec<usize>,
    /// Cost of the adopted set.
    pub best_cost: f64,
    /// Evaluations performed so far (across all prior runs).
    pub evaluations: usize,
    /// Where the in-flight round stopped.
    pub cursor: GreedyCursor,
}

impl GreedySnapshot {
    /// The state of a run that has not started yet.
    pub fn fresh(base_cost: f64) -> Self {
        GreedySnapshot {
            best_set: Vec::new(),
            best_cost: base_cost,
            evaluations: 0,
            cursor: GreedyCursor::Phase1 { next: 0, round_best: None },
        }
    }
}

/// Outcome of a budget-aware Greedy(m, k) run: the (possibly best-so-far)
/// outcome, plus — when interrupted — the reason and a resume snapshot.
#[derive(Debug, Clone)]
pub struct GreedyRun<S> {
    /// Best selection found, whether or not the run completed.
    pub outcome: GreedyOutcome<S>,
    /// `Some` when the run stopped early (budget or cancellation).
    pub interrupted: Option<(StopReason, GreedySnapshot)>,
}

/// Budget-aware, resumable Greedy(m, k).
///
/// Each evaluation costs one unit of `control`'s budget. Units are
/// granted in canonical-prefix batches from this (serial) coordination
/// point, so a given budget always cuts the scan at the same position
/// regardless of worker count. On exhaustion or cancellation the run
/// returns its best-so-far outcome — if the in-flight round's front
/// already improves on the incumbent it is included, since it is a valid
/// selection — plus a [`GreedySnapshot`]; passing that snapshot back as
/// `resume` (with more budget) continues the scan exactly where it
/// stopped and yields the byte-identical uninterrupted answer.
#[allow(clippy::too_many_arguments)] // the session's full budget context
pub fn greedy_mk_resumable<S: Clone + Sync>(
    candidates: &[S],
    base_cost: f64,
    m: usize,
    k: usize,
    workers: usize,
    eval: &EvalFn<'_, S>,
    control: &SessionControl,
    resume: Option<GreedySnapshot>,
) -> GreedyRun<S> {
    greedy_mk_observed(candidates, base_cost, m, k, workers, eval, control, resume, &NOOP)
}

/// [`greedy_mk_resumable`] with an attached [`SessionObserver`]: the two
/// phases are wrapped in `greedyPhase1` / `greedyPhase2` spans so a
/// recording observer can attribute wall time and evaluation deltas to
/// each. The spans are pure instrumentation — the search, budget ledger,
/// and returned outcome are byte-identical to the unobserved call.
#[allow(clippy::too_many_arguments)] // the session's full budget context
pub fn greedy_mk_observed<S: Clone + Sync>(
    candidates: &[S],
    base_cost: f64,
    m: usize,
    k: usize,
    workers: usize,
    eval: &EvalFn<'_, S>,
    control: &SessionControl,
    resume: Option<GreedySnapshot>,
    obs: &dyn SessionObserver,
) -> GreedyRun<S> {
    let restarts = AtomicUsize::new(0);
    let cancel_stop = || control.is_cancelled();
    let mut snap = resume.unwrap_or_else(|| GreedySnapshot::fresh(base_cost));

    // Scan positions `next..n` of the current round in granted batches.
    // Returns the completed round's front, or `Err(reason)` leaving the
    // cursor fields updated for the snapshot.
    let run_round = |next: &mut usize,
                     round_best: &mut Option<(usize, f64)>,
                     n: usize,
                     evaluations: &mut usize,
                     f: &(dyn Fn(usize) -> Option<f64> + Sync)|
     -> Result<(), StopReason> {
        while *next < n {
            let remaining = n - *next;
            let granted = control.grant(remaining as u64) as usize;
            if granted == 0 {
                return Err(control.stop().map_or(StopReason::BudgetExhausted, |r| r));
            }
            let offset = *next;
            let shifted = |p: usize| f(offset + p);
            let (batch_best, _) = par_min(granted, workers, &cancel_stop, &restarts, &shifted);
            // evaluations are accounted as the granted batch size — the
            // deterministic figure — rather than the raced per-thread
            // tally (they only differ under cancellation)
            *evaluations += granted;
            if let Some((pos, cost)) = batch_best {
                *round_best = det::min_by_cost_position((pos + offset, cost), *round_best);
            }
            *next += granted;
            if control.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        Ok(())
    };

    let interrupted = 'search: {
        // Phase 1: exhaustive over subsets of size 1..=m.
        if let GreedyCursor::Phase1 { mut next, mut round_best } = snap.cursor.clone() {
            let _p1_span = Span::enter(obs, SpanName::GreedyPhase1);
            let subsets = subsets_up_to(candidates.len(), m);
            let eval_subset = |pos: usize| -> Option<f64> {
                let refs: Vec<&S> = subsets[pos].iter().map(|&i| &candidates[i]).collect();
                eval(&refs)
            };
            let round = run_round(
                &mut next,
                &mut round_best,
                subsets.len(),
                &mut snap.evaluations,
                &eval_subset,
            );
            if let Err(reason) = round {
                snap.cursor = GreedyCursor::Phase1 { next, round_best };
                break 'search Some(reason);
            }
            if let Some((pos, cost)) = round_best {
                if det::improves(cost, snap.best_cost) {
                    snap.best_cost = cost;
                    snap.best_set = subsets[pos].clone();
                }
            }
            snap.cursor = GreedyCursor::Phase2 { next: 0, round_best: None };
        }

        // Phase 2: greedy extension up to k, one winner per round.
        let _p2_span = Span::enter(obs, SpanName::GreedyPhase2);
        loop {
            if snap.best_set.len() >= k.max(m) {
                break 'search None;
            }
            let remaining: Vec<usize> =
                (0..candidates.len()).filter(|i| !snap.best_set.contains(i)).collect();
            if remaining.is_empty() {
                break 'search None;
            }
            let (mut next, mut round_best) = match snap.cursor {
                GreedyCursor::Phase2 { next, round_best } => (next, round_best),
                // unreachable by construction; treat as a fresh round
                GreedyCursor::Phase1 { .. } => (0, None),
            };
            let incumbent = snap.best_set.clone();
            let eval_extension = |pos: usize| -> Option<f64> {
                let mut set = incumbent.clone();
                set.push(remaining[pos]);
                let refs: Vec<&S> = set.iter().map(|&j| &candidates[j]).collect();
                eval(&refs)
            };
            let round = run_round(
                &mut next,
                &mut round_best,
                remaining.len(),
                &mut snap.evaluations,
                &eval_extension,
            );
            if let Err(reason) = round {
                snap.cursor = GreedyCursor::Phase2 { next, round_best };
                break 'search Some(reason);
            }
            match round_best {
                Some((pos, cost)) if det::improves(cost, snap.best_cost) => {
                    snap.best_set.push(remaining[pos]);
                    snap.best_cost = cost;
                    snap.cursor = GreedyCursor::Phase2 { next: 0, round_best: None };
                }
                _ => break 'search None, // no further improvement
            }
        }
    };

    // Best-so-far: on interruption, an in-flight round's front that
    // already improves on the incumbent is a valid selection — include
    // it in the outcome (the snapshot keeps the raw incumbent so resume
    // replays the round unchanged).
    let (mut out_set, mut out_cost) = (snap.best_set.clone(), snap.best_cost);
    if interrupted.is_some() {
        match snap.cursor {
            GreedyCursor::Phase1 { round_best: Some((pos, cost)), .. }
                if det::improves(cost, out_cost) =>
            {
                out_set = subsets_up_to(candidates.len(), m)[pos].clone();
                out_cost = cost;
            }
            GreedyCursor::Phase2 { round_best: Some((pos, cost)), .. }
                if det::improves(cost, out_cost) =>
            {
                let remaining: Vec<usize> =
                    (0..candidates.len()).filter(|i| !out_set.contains(i)).collect();
                out_set.push(remaining[pos]);
                out_cost = cost;
            }
            _ => {}
        }
    }

    for _ in 0..restarts.load(Ordering::SeqCst) {
        control.note_worker_restart();
    }
    GreedyRun {
        outcome: GreedyOutcome {
            chosen: out_set.iter().map(|&i| candidates[i].clone()).collect(),
            cost: out_cost,
            evaluations: snap.evaluations,
            worker_restarts: restarts.load(Ordering::SeqCst),
        },
        interrupted: interrupted.map(|reason| (reason, snap)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_stop() -> impl Fn() -> bool + Sync {
        || false
    }

    #[test]
    fn canonical_subset_order() {
        assert_eq!(
            subsets_up_to(3, 2),
            vec![vec![0], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2],]
        );
        assert!(subsets_up_to(0, 2).is_empty());
        assert_eq!(subsets_up_to(2, 5).len(), 3, "m is clamped to n");
    }

    #[test]
    fn finds_optimal_pair_that_greedy_misses() {
        // classic trap: {a} is the best singleton, but {b, c} together are
        // far better and exclude a. Greedy(1, k) would seed with `a`;
        // Greedy(2, k) finds {b, c} exhaustively.
        let candidates = ["a", "b", "c"];
        let cost = |set: &[&&str]| {
            let mut names: Vec<&str> = set.iter().map(|s| **s).collect();
            names.sort_unstable();
            Some(match names.as_slice() {
                [] => 100.0,
                ["a"] => 50.0,
                ["b"] | ["c"] => 80.0,
                ["b", "c"] => 10.0,
                // sets containing `a` alongside others stay mediocre
                _ => 49.0,
            })
        };

        let g1 = greedy_mk(&candidates, 100.0, 1, 3, 1, &cost, &no_stop());
        let g2 = greedy_mk(&candidates, 100.0, 2, 3, 1, &cost, &no_stop());
        assert!(g1.cost > g2.cost, "g1={} g2={}", g1.cost, g2.cost);
        assert_eq!(g2.cost, 10.0);
        let mut chosen = g2.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec!["b", "c"]);
    }

    #[test]
    fn greedy_extension_beyond_m() {
        // additive benefits: every item shaves 10 off
        let candidates: Vec<usize> = (0..6).collect();
        let eval = |set: &[&usize]| Some(100.0 - 10.0 * set.len() as f64);
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &no_stop());
        assert_eq!(g.chosen.len(), 4);
        assert_eq!(g.cost, 60.0);
    }

    #[test]
    fn stops_when_no_improvement() {
        let candidates = ["x", "y"];
        let eval = |set: &[&&str]| {
            if set.len() == 1 && **set[0] == *"x" {
                Some(90.0)
            } else {
                Some(95.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 1, 5, 1, &eval, &no_stop());
        assert_eq!(g.chosen, vec!["x"]);
        assert_eq!(g.cost, 90.0);
    }

    #[test]
    fn infeasible_subsets_skipped() {
        // "y" is infeasible (over storage); the best feasible is "x"
        let candidates = ["x", "y"];
        let eval = |set: &[&&str]| {
            if set.iter().any(|s| ***s == *"y") {
                None
            } else {
                Some(50.0)
            }
        };
        let g = greedy_mk(&candidates, 100.0, 2, 2, 1, &eval, &no_stop());
        assert_eq!(g.chosen, vec!["x"]);
    }

    #[test]
    fn empty_candidates() {
        let candidates: Vec<&str> = vec![];
        let eval = |_: &[&&str]| Some(1.0);
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &no_stop());
        assert!(g.chosen.is_empty());
        assert_eq!(g.cost, 100.0);
        assert_eq!(g.evaluations, 0);
    }

    #[test]
    fn stop_cuts_search_short() {
        let candidates: Vec<usize> = (0..100).collect();
        let eval = |_: &[&usize]| Some(100.0);
        let n = AtomicUsize::new(0);
        let stop = || n.fetch_add(1, Ordering::Relaxed) + 1 > 5;
        let g = greedy_mk(&candidates, 100.0, 2, 4, 1, &eval, &stop);
        assert!(g.evaluations <= 6, "evaluations={}", g.evaluations);
    }

    #[test]
    fn never_adopts_non_improving_set() {
        let candidates = ["a"];
        let eval = |_: &[&&str]| Some(100.0); // equal, not better
        let g = greedy_mk(&candidates, 100.0, 1, 1, 1, &eval, &no_stop());
        assert!(g.chosen.is_empty());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // a lumpy deterministic cost surface with deliberate ties: subsets
        // {1} and {2} tie, and several pairs tie — position tie-breaking
        // must pick the same winner at any worker count
        let candidates: Vec<usize> = (0..12).collect();
        let eval = |set: &[&usize]| {
            let s: usize = set.iter().map(|&&i| i).sum();
            let n = set.len();
            Some(1000.0 - (17 * s % 101) as f64 - 31.0 * n as f64)
        };
        let serial = greedy_mk(&candidates, 1000.0, 2, 6, 1, &eval, &no_stop());
        for workers in [2, 4, 7] {
            let parallel = greedy_mk(&candidates, 1000.0, 2, 6, workers, &eval, &no_stop());
            assert_eq!(serial.chosen, parallel.chosen, "workers={workers}");
            assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits(), "workers={workers}");
            assert_eq!(serial.evaluations, parallel.evaluations, "workers={workers}");
        }
    }

    #[test]
    fn panicking_position_degrades_to_infeasible() {
        // position-dependent deterministic panic: the set containing
        // candidate 5 blows up. With panic isolation the result must be
        // byte-identical to the same surface with 5 marked infeasible.
        let candidates: Vec<usize> = (0..12).collect();
        let poisoned = |set: &[&usize]| {
            if set.iter().any(|&&i| i == 5) {
                panic!("deterministic poison");
            }
            let s: usize = set.iter().map(|&&i| i).sum();
            Some(1000.0 - (13 * s % 97) as f64 - 20.0 * set.len() as f64)
        };
        let infeasible = |set: &[&usize]| {
            if set.iter().any(|&&i| i == 5) {
                return None;
            }
            let s: usize = set.iter().map(|&&i| i).sum();
            Some(1000.0 - (13 * s % 97) as f64 - 20.0 * set.len() as f64)
        };
        let clean = greedy_mk(&candidates, 1000.0, 2, 5, 1, &infeasible, &no_stop());
        for workers in [2, 4] {
            // silence the default panic hook for the deliberate panics
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let g = greedy_mk(&candidates, 1000.0, 2, 5, workers, &poisoned, &no_stop());
            std::panic::set_hook(prev);
            assert!(g.worker_restarts > 0, "workers={workers}: no restart recorded");
            assert_eq!(clean.chosen, g.chosen, "workers={workers}");
            assert_eq!(clean.cost.to_bits(), g.cost.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn resumable_matches_plain_greedy_when_unbudgeted() {
        let candidates: Vec<usize> = (0..10).collect();
        let eval = |set: &[&usize]| {
            let s: usize = set.iter().map(|&&i| i).sum();
            Some(500.0 - (11 * s % 53) as f64 - 9.0 * set.len() as f64)
        };
        let plain = greedy_mk(&candidates, 500.0, 2, 5, 1, &eval, &no_stop());
        let control = SessionControl::unlimited();
        let run = greedy_mk_resumable(&candidates, 500.0, 2, 5, 1, &eval, &control, None);
        assert!(run.interrupted.is_none());
        assert_eq!(plain.chosen, run.outcome.chosen);
        assert_eq!(plain.cost.to_bits(), run.outcome.cost.to_bits());
        assert_eq!(plain.evaluations, run.outcome.evaluations);
        assert_eq!(control.consumed() as usize, run.outcome.evaluations);
    }

    #[test]
    fn budget_interrupt_then_resume_is_byte_identical() {
        let candidates: Vec<usize> = (0..10).collect();
        let eval = |set: &[&usize]| {
            let s: usize = set.iter().map(|&&i| i).sum();
            Some(500.0 - (11 * s % 53) as f64 - 9.0 * set.len() as f64)
        };
        let full = {
            let control = SessionControl::unlimited();
            greedy_mk_resumable(&candidates, 500.0, 2, 5, 3, &eval, &control, None)
        };
        assert!(full.interrupted.is_none());
        let total = full.outcome.evaluations as u64;

        // cut the run at every possible budget, resume with the rest, and
        // demand the byte-identical final answer at a different thread
        // count than the uninterrupted run
        for cut in 0..total {
            let c1 = SessionControl::with_budget(cut);
            let first = greedy_mk_resumable(&candidates, 500.0, 2, 5, 1, &eval, &c1, None);
            let (reason, snap) = match first.interrupted {
                Some(pair) => pair,
                None => panic!("budget {cut} of {total} should interrupt"),
            };
            assert_eq!(reason, StopReason::BudgetExhausted);
            assert_eq!(snap.evaluations as u64, cut, "exactly the budget is spent");
            let c2 = SessionControl::resumed(c1.consumed(), None);
            let second = greedy_mk_resumable(&candidates, 500.0, 2, 5, 4, &eval, &c2, Some(snap));
            assert!(second.interrupted.is_none(), "cut={cut}");
            assert_eq!(full.outcome.chosen, second.outcome.chosen, "cut={cut}");
            assert_eq!(full.outcome.cost.to_bits(), second.outcome.cost.to_bits(), "cut={cut}");
            assert_eq!(full.outcome.evaluations, second.outcome.evaluations, "cut={cut}");
        }
    }

    #[test]
    fn interrupted_outcome_is_best_so_far_and_never_worse_than_base() {
        let candidates: Vec<usize> = (0..8).collect();
        let eval = |set: &[&usize]| {
            let s: usize = set.iter().map(|&&i| i).sum();
            Some(300.0 - (7 * s % 31) as f64 - 5.0 * set.len() as f64)
        };
        let full = {
            let control = SessionControl::unlimited();
            greedy_mk_resumable(&candidates, 300.0, 2, 4, 1, &eval, &control, None)
        };
        let total = full.outcome.evaluations as u64;
        let mut last_cost = f64::INFINITY;
        for cut in 0..=total {
            let control = SessionControl::with_budget(cut);
            let run = greedy_mk_resumable(&candidates, 300.0, 2, 4, 1, &eval, &control, None);
            assert!(run.outcome.cost <= 300.0, "cut={cut}: anytime outcome worse than base");
            // same budget twice ⇒ byte-identical
            let control2 = SessionControl::with_budget(cut);
            let rerun = greedy_mk_resumable(&candidates, 300.0, 2, 4, 2, &eval, &control2, None);
            assert_eq!(run.outcome.chosen, rerun.outcome.chosen, "cut={cut}");
            assert_eq!(run.outcome.cost.to_bits(), rerun.outcome.cost.to_bits(), "cut={cut}");
            last_cost = last_cost.min(run.outcome.cost);
        }
        assert_eq!(last_cost.to_bits(), full.outcome.cost.to_bits());
    }

    #[test]
    fn cancellation_interrupts_with_reason() {
        let candidates: Vec<usize> = (0..6).collect();
        let eval = |set: &[&usize]| Some(100.0 - set.len() as f64);
        let control = SessionControl::unlimited();
        control.cancel_handle().cancel();
        let run = greedy_mk_resumable(&candidates, 100.0, 2, 4, 1, &eval, &control, None);
        match run.interrupted {
            Some((StopReason::Cancelled, _)) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(run.outcome.chosen.is_empty());
        assert_eq!(run.outcome.cost, 100.0);
    }
}
