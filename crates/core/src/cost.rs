//! Workload cost evaluation with a shared, thread-safe per-statement
//! cache.
//!
//! Every configuration DTA explores is priced as the weighted sum of
//! optimizer-estimated statement costs (§2.2). Two optimizations keep
//! the what-if call count manageable without changing any result:
//!
//! 1. **Relevance filtering** — a statement's plan can only be affected
//!    by structures on the tables it references, so the configuration is
//!    projected onto those tables before the what-if call;
//! 2. **Memoization** — the projected configuration is fingerprinted and
//!    the (statement, fingerprint) → cost mapping cached, so greedy steps
//!    that do not touch a statement's tables are free.
//!
//! The evaluator is `Send + Sync` so ONE instance (and therefore one
//! cache) serves the whole tuning session — pre-cost estimation,
//! parallel per-query candidate selection, and parallel enumeration all
//! share hits. The cache is sharded by statement index
//! (`RwLock<HashMap>` per statement), so concurrent lookups of different
//! statements never contend and lookups of the same statement contend
//! only on a reader-writer lock. Two threads racing on the same miss are
//! deduplicated through a per-shard in-flight set: exactly one issues
//! the what-if call while the others wait for the cache entry and count
//! a hit. The dedup is what makes the observability counters (what-if
//! calls, hits, misses, retries) byte-identical across worker counts —
//! each unique (statement, fingerprint) pair costs one miss and one
//! server call no matter how the scheduler interleaves the lookups.
//!
//! Fingerprints are computed without allocating: each relevant structure
//! is hashed independently and the per-structure hashes are combined
//! with order-independent arithmetic, so the hot path (a cache hit)
//! touches no heap. The projected [`Configuration`] is only materialized
//! on a miss, where the what-if call dwarfs it.
//!
//! Debug builds additionally run the sanitizer-lite checks from
//! [`crate::invariants`]: every cache hit re-derives a second,
//! independent fingerprint to detect primary-key collisions, every
//! cached cost must be finite and non-negative, weighted sums must
//! accumulate monotonically, and the shard table must stay one-to-one
//! with the workload. All of it compiles away under `--release`.

use crate::invariants;
use crate::obs::{Counter, CounterSet, ShardSnapshot};
use dta_physical::{Configuration, PhysicalStructure};
use dta_server::{FaultKind, ServerError, TuningTarget};
use dta_stats::RetryPolicy;
use dta_workload::WorkloadItem;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoized what-if result for one (statement, projected config) pair.
#[derive(Debug, Clone)]
struct CacheEntry {
    cost: f64,
    /// Names of the structures the plan uses (for §6.3 reports).
    used_structures: Vec<String>,
    /// Secondary fingerprint for debug-build collision detection
    /// ([`invariants::check_fingerprint`]); 0 in release builds.
    verify: u64,
}

/// One exported cache entry, for checkpointing a session's warmed cache
/// (resume imports these so it re-prices nothing it already priced).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheExport {
    /// Workload item index the entry belongs to.
    pub item: usize,
    /// Primary fingerprint of the projected configuration.
    pub fingerprint: u64,
    /// Cached optimizer estimate.
    pub cost: f64,
    /// Structures the cached plan uses.
    pub used_structures: Vec<String>,
    /// Secondary fingerprint (0 when the writer had invariants off).
    pub verify: u64,
}

/// Releases an in-flight fingerprint claim on drop, so an early `?`
/// return cannot leave waiters spinning on a claim nobody will finish.
struct ClaimGuard<'g> {
    set: &'g Mutex<HashSet<u64>>,
    fp: u64,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        self.set.lock().remove(&self.fp);
    }
}

/// Per-shard (= per-statement) cache statistics: hits, misses, retries,
/// and what-if calls, each a monotonic atomic tally.
#[derive(Debug, Default)]
struct ShardStat {
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
    calls: AtomicU64,
}

impl ShardStat {
    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            calls: self.calls.load(Ordering::SeqCst),
        }
    }
}

/// Caching cost evaluator over one tuning target and workload.
///
/// `Send + Sync`: share a single instance across every phase of the
/// session and across worker threads.
pub struct CostEvaluator<'a> {
    target: &'a TuningTarget<'a>,
    items: &'a [WorkloadItem],
    /// Tables each item references: (database, table) pairs.
    item_tables: Vec<Vec<(String, String)>>,
    /// One cache shard per statement.
    shards: Vec<RwLock<HashMap<u64, CacheEntry>>>,
    /// Fingerprints currently being priced, per shard. Concurrent misses
    /// on the same fingerprint dedup through this set so hit/miss/call
    /// tallies stay deterministic across worker counts.
    in_flight: Vec<Mutex<HashSet<u64>>>,
    /// Per-shard hit/miss/retry/call tallies (same index as `shards`).
    shard_stats: Vec<ShardStat>,
    /// Deterministic session counters — shared with `SessionControl`
    /// (and any observer) so what-if/retry telemetry has one source of
    /// truth; a standalone evaluator owns a private set.
    counters: Arc<CounterSet>,
    /// Bounded-retry policy for transient what-if faults.
    retry: RetryPolicy,
    /// Per-item fallback costs used when a statement degrades (its
    /// pre-statistics base cost; 0.0 until the session sets them, and
    /// 0.0 for an item whose pre-costing itself failed — constant per
    /// item either way, so degraded items cancel out of comparisons).
    fallbacks: RwLock<Vec<f64>>,
    /// Items degraded to their fallback cost by permanent faults.
    degraded: Mutex<BTreeSet<usize>>,
}

impl<'a> CostEvaluator<'a> {
    /// Build an evaluator for `items` against `target` with a private
    /// counter set.
    pub fn new(target: &'a TuningTarget<'a>, items: &'a [WorkloadItem]) -> Self {
        Self::with_counters(target, items, Arc::new(CounterSet::new()))
    }

    /// Build an evaluator that tallies into a shared [`CounterSet`]
    /// (the session's — see [`crate::SessionControl::counters`]).
    pub fn with_counters(
        target: &'a TuningTarget<'a>,
        items: &'a [WorkloadItem],
        counters: Arc<CounterSet>,
    ) -> Self {
        let item_tables = items
            .iter()
            .map(|i| {
                let mut ts: Vec<(String, String)> = i
                    .statement
                    .referenced_tables()
                    .into_iter()
                    .map(|t| (i.database.clone(), t.to_string()))
                    .collect();
                ts.sort();
                ts.dedup();
                ts
            })
            .collect();
        Self {
            target,
            items,
            item_tables,
            shards: (0..items.len()).map(|_| RwLock::new(HashMap::new())).collect(),
            in_flight: (0..items.len()).map(|_| Mutex::new(HashSet::new())).collect(),
            shard_stats: (0..items.len()).map(|_| ShardStat::default()).collect(),
            counters,
            retry: RetryPolicy::default(),
            fallbacks: RwLock::new(Vec::new()),
            degraded: Mutex::new(BTreeSet::new()),
        }
    }

    /// The workload items being priced.
    pub fn items(&self) -> &'a [WorkloadItem] {
        self.items
    }

    /// Tuning target.
    pub fn target(&self) -> &'a TuningTarget<'a> {
        self.target
    }

    /// What-if calls actually issued (cache misses).
    pub fn whatif_calls(&self) -> usize {
        self.counters.get(Counter::WhatIfCalls) as usize
    }

    /// Per-shard cache statistics, in statement order. Shards map
    /// one-to-one onto workload statements, so entry `i` is statement
    /// `i`'s hit/miss/retry/call tally.
    pub fn cache_stats(&self) -> Vec<ShardSnapshot> {
        self.shard_stats.iter().map(ShardStat::snapshot).collect()
    }

    /// Drop every cached cost (the call counter is kept).
    ///
    /// Needed when the cost model itself changes mid-session — e.g.
    /// after statistics creation, which alters what-if estimates.
    pub fn invalidate(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Whether `s` can affect item `i`'s plan.
    fn is_relevant(&self, i: usize, s: &PhysicalStructure) -> bool {
        let tables = &self.item_tables[i];
        let db = &self.items[i].database;
        match s {
            PhysicalStructure::Index(ix) => {
                tables.iter().any(|(d, t)| *d == ix.database && *t == ix.table)
            }
            PhysicalStructure::View(v) => {
                v.database == *db && v.tables.iter().any(|vt| tables.iter().any(|(_, t)| t == vt))
            }
            PhysicalStructure::TablePartitioning { database, table, .. } => {
                tables.iter().any(|(d, t)| d == database && t == table)
            }
        }
    }

    /// Structures of `config` that can affect item `i`.
    fn project(&self, i: usize, config: &Configuration) -> Configuration {
        config.iter().filter(|s| self.is_relevant(i, s)).cloned().collect()
    }

    /// Order-independent fingerprint of `config` projected onto item `i`,
    /// computed without allocating.
    fn fingerprint(&self, i: usize, config: &Configuration) -> u64 {
        let mut sum = 0u64;
        let mut xor = 0u64;
        let mut count = 0u64;
        for s in config.iter().filter(|s| self.is_relevant(i, s)) {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            let v = h.finish();
            sum = sum.wrapping_add(v);
            xor ^= v;
            count += 1;
        }
        let mut h = DefaultHasher::new();
        (sum, xor, count).hash(&mut h);
        h.finish()
    }

    /// Second, independently-combined fingerprint of the same projection
    /// (different seed, different combiners). Debug builds store it per
    /// cache entry and re-derive it on every hit: a primary-key collision
    /// — two projections sharing a [`Self::fingerprint`] — then trips
    /// [`invariants::check_fingerprint`] instead of silently pricing one
    /// configuration with another's cost.
    fn verify_fingerprint(&self, i: usize, config: &Configuration) -> u64 {
        /// Seed decorrelating this hash from the primary fingerprint's.
        const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut sum = 0u64;
        let mut prod = 1u64;
        let mut count = 0u64;
        for s in config.iter().filter(|s| self.is_relevant(i, s)) {
            let mut h = DefaultHasher::new();
            SEED.hash(&mut h);
            s.hash(&mut h);
            let v = h.finish();
            sum = sum.wrapping_add(v);
            prod = prod.wrapping_mul(v | 1);
            count += 1;
        }
        let mut h = DefaultHasher::new();
        (count, prod, sum).hash(&mut h);
        h.finish()
    }

    /// Price item `i` under `config`, returning the full cache entry.
    fn item_entry(
        &self,
        i: usize,
        config: &Configuration,
        want_structures: bool,
    ) -> Result<(f64, Vec<String>), ServerError> {
        invariants::check_shards(self.shards.len(), self.items.len(), i);
        let fp = self.fingerprint(i, config);
        if let Some(e) = self.shards[i].read().get(&fp) {
            // imported checkpoint entries may carry verify == 0 when the
            // writing build had invariants compiled out; skip the check
            if invariants::ENABLED && e.verify != 0 {
                invariants::check_fingerprint(e.verify, self.verify_fingerprint(i, config), i);
            }
            self.shard_stats[i].hits.fetch_add(1, Ordering::SeqCst);
            self.counters.add(Counter::CacheHits, 1);
            let used = if want_structures { e.used_structures.clone() } else { Vec::new() };
            return Ok((e.cost, used));
        }
        // claim-or-wait: exactly one thread computes each fingerprint.
        // Waiters count a hit once the entry lands, so the hit/miss/call
        // tallies are byte-identical no matter how lookups interleave.
        loop {
            {
                let mut claims = self.in_flight[i].lock();
                // recheck under the claim lock: the computing thread
                // inserts into the cache before releasing its claim
                if let Some(e) = self.shards[i].read().get(&fp) {
                    if invariants::ENABLED && e.verify != 0 {
                        invariants::check_fingerprint(
                            e.verify,
                            self.verify_fingerprint(i, config),
                            i,
                        );
                    }
                    self.shard_stats[i].hits.fetch_add(1, Ordering::SeqCst);
                    self.counters.add(Counter::CacheHits, 1);
                    let used =
                        if want_structures { e.used_structures.clone() } else { Vec::new() };
                    return Ok((e.cost, used));
                }
                if claims.insert(fp) {
                    break;
                }
            }
            // another thread holds the claim; let it finish
            std::thread::yield_now();
        }
        // the claim is released on every exit path below (including `?`)
        let _claim = ClaimGuard { set: &self.in_flight[i], fp };
        self.shard_stats[i].misses.fetch_add(1, Ordering::SeqCst);
        self.counters.add(Counter::CacheMisses, 1);
        if self.degraded.lock().contains(&i) {
            // a permanent fault already degraded this statement: price
            // every configuration at its constant fallback, no server call
            let cost = self.fallback_cost(i);
            let verify = if invariants::ENABLED { self.verify_fingerprint(i, config) } else { 0 };
            self.shards[i]
                .write()
                .insert(fp, CacheEntry { cost, used_structures: Vec::new(), verify });
            return Ok((cost, Vec::new()));
        }
        let relevant = self.project(i, config);
        let item = &self.items[i];
        let mut attempt: u32 = 0;
        let plan = loop {
            // one call per unique miss (plus deterministic retries): the
            // in-flight claim above serialized racing lookups away
            self.counters.add(Counter::WhatIfCalls, 1);
            self.shard_stats[i].calls.fetch_add(1, Ordering::SeqCst);
            match self.target.whatif(&item.database, &item.statement, &relevant) {
                Ok(plan) => break Some(plan),
                Err(ServerError::Fault { kind: FaultKind::Transient, .. })
                    if self.retry.allows_retry(attempt) =>
                {
                    // bounded retry with deterministic backoff accounting
                    self.counters.add(Counter::WhatIfRetries, 1);
                    self.counters.add(Counter::RetryBackoffUnits, self.retry.backoff_units(attempt));
                    self.shard_stats[i].retries.fetch_add(1, Ordering::SeqCst);
                    attempt += 1;
                }
                // permanent fault, or transient retries exhausted: degrade
                // this statement to its fallback instead of aborting
                Err(ServerError::Fault { .. }) => break None,
                Err(other) => return Err(other),
            }
        };
        let (cost, used_structures) = match plan {
            Some(plan) => {
                invariants::check_cost(plan.cost, "what-if estimate");
                (plan.cost, plan.used_structures())
            }
            None => {
                self.degraded.lock().insert(i);
                (self.fallback_cost(i), Vec::new())
            }
        };
        let used = if want_structures { used_structures.clone() } else { Vec::new() };
        let verify = if invariants::ENABLED { self.verify_fingerprint(i, config) } else { 0 };
        self.shards[i].write().insert(fp, CacheEntry { cost, used_structures, verify });
        Ok((cost, used))
    }

    /// The constant fallback cost a degraded item is priced at.
    fn fallback_cost(&self, i: usize) -> f64 {
        self.fallbacks.read().get(i).copied().unwrap_or(0.0)
    }

    /// Install per-item fallback costs (the pre-statistics base costs)
    /// used when a permanent fault degrades a statement.
    pub fn set_fallbacks(&self, costs: Vec<f64>) {
        *self.fallbacks.write() = costs;
    }

    /// Transient what-if faults absorbed by retry.
    pub fn retries(&self) -> usize {
        self.counters.get(Counter::WhatIfRetries) as usize
    }

    /// Deterministic backoff units accounted across all retries.
    pub fn backoff_units(&self) -> u64 {
        self.counters.get(Counter::RetryBackoffUnits)
    }

    /// Item indexes degraded to their fallback cost by permanent faults,
    /// in deterministic ascending order.
    pub fn degraded_items(&self) -> Vec<usize> {
        self.degraded.lock().iter().copied().collect()
    }

    /// Export the warmed cache for checkpointing, in deterministic
    /// `(item, fingerprint)` order.
    pub fn export_cache(&self) -> Vec<CacheExport> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.read();
            let mut keys: Vec<u64> = shard.keys().copied().collect();
            keys.sort_unstable();
            for fp in keys {
                if let Some(e) = shard.get(&fp) {
                    out.push(CacheExport {
                        item: i,
                        fingerprint: fp,
                        cost: e.cost,
                        used_structures: e.used_structures.clone(),
                        verify: e.verify,
                    });
                }
            }
        }
        out
    }

    /// Re-warm the cache from a checkpoint and restore the session's
    /// what-if telemetry so a resumed run's tallies continue where the
    /// interrupted run left off.
    pub fn import_cache(&self, entries: &[CacheExport], whatif_calls: usize) {
        for e in entries {
            if e.item < self.shards.len() {
                invariants::check_cost(e.cost, "imported cache entry");
                self.shards[e.item].write().insert(
                    e.fingerprint,
                    CacheEntry {
                        cost: e.cost,
                        used_structures: e.used_structures.clone(),
                        verify: e.verify,
                    },
                );
            }
        }
        self.counters.set(Counter::WhatIfCalls, whatif_calls as u64);
    }

    /// Restore fault telemetry (retry tallies and the degraded set) from
    /// a checkpoint. Per-shard hit/miss statistics start fresh — they
    /// describe this process's cache behaviour, not the session ledger.
    pub fn restore_fault_state(&self, retries: usize, backoff_units: u64, degraded: &[usize]) {
        self.counters.set(Counter::WhatIfRetries, retries as u64);
        self.counters.set(Counter::RetryBackoffUnits, backoff_units);
        let mut set = self.degraded.lock();
        for &i in degraded {
            set.insert(i);
        }
    }

    /// Estimated cost of one item under `config`.
    pub fn item_cost(&self, i: usize, config: &Configuration) -> Result<f64, ServerError> {
        self.item_entry(i, config, false).map(|(c, _)| c)
    }

    /// Cost plus the structures the plan uses (§6.3 reports).
    pub fn item_report(
        &self,
        i: usize,
        config: &Configuration,
    ) -> Result<(f64, Vec<String>), ServerError> {
        self.item_entry(i, config, true)
    }

    /// Weighted workload cost under `config`.
    ///
    /// Items are summed in workload order, so the result is bitwise
    /// identical no matter which thread asks.
    pub fn workload_cost(&self, config: &Configuration) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for i in 0..self.items.len() {
            let next = total + self.items[i].weight * self.item_cost(i, config)?;
            invariants::check_monotonic_sum(total, next, "workload_cost");
            total = next;
        }
        Ok(total)
    }

    /// Weighted cost of a subset of items (per-query candidate selection).
    pub fn subset_cost(
        &self,
        indexes: &[usize],
        config: &Configuration,
    ) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for &i in indexes {
            let next = total + self.items[i].weight * self.item_cost(i, config)?;
            invariants::check_monotonic_sum(total, next, "subset_cost");
            total = next;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_physical::Index;
    use dta_server::Server;
    use dta_sql::parse_statement;
    use dta_workload::Workload;

    fn server() -> Server {
        let mut s = Server::new("s");
        let mut db = Database::new("d");
        for name in ["t", "u"] {
            db.add_table(Table::new(
                name,
                vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Int)],
            ))
            .expect("fresh table");
        }
        s.create_database(db).expect("fresh database");
        for name in ["t", "u"] {
            let d = s.table_data_mut("d", name).expect("table exists");
            for i in 0..5000i64 {
                d.push_row(vec![Value::Int(i % 100), Value::Int(i)]);
            }
        }
        s
    }

    fn wl() -> Workload {
        Workload::from_items(vec![
            dta_workload::WorkloadItem::weighted(
                "d",
                parse_statement("SELECT b FROM t WHERE a = 5").expect("valid SQL"),
                10.0,
            ),
            dta_workload::WorkloadItem::new(
                "d",
                parse_statement("SELECT b FROM u WHERE a = 7").expect("valid SQL"),
            ),
        ])
    }

    #[test]
    fn caching_avoids_redundant_calls() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let c1 = eval.workload_cost(&empty).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2);
        let c2 = eval.workload_cost(&empty).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2, "second evaluation fully cached");
        assert_eq!(c1, c2);
    }

    #[test]
    fn shard_stats_track_hits_and_misses_per_statement() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        eval.workload_cost(&empty).expect("costing succeeds");
        eval.workload_cost(&empty).expect("costing succeeds");
        let stats = eval.cache_stats();
        assert_eq!(stats.len(), 2, "one shard per statement");
        for st in &stats {
            assert_eq!((st.misses, st.hits, st.calls, st.retries), (1, 1, 1, 0), "{stats:?}");
        }
    }

    #[test]
    fn racing_misses_dedup_to_one_call() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| eval.item_cost(0, &empty).expect("costing succeeds"));
            }
        });
        let st = &eval.cache_stats()[0];
        assert_eq!(
            (st.misses, st.hits, st.calls),
            (1, threads - 1, 1),
            "concurrent lookups of one fingerprint dedup to a single miss"
        );
    }

    #[test]
    fn irrelevant_structures_hit_cache() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        let calls = eval.whatif_calls();
        // an index on `u` cannot affect the statement on `t`
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "u",
            &["a"],
            &["b"],
        ))]);
        eval.item_cost(0, &cfg).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), calls, "projection made it a cache hit");
        eval.item_cost(1, &cfg).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), calls + 1);
    }

    #[test]
    fn weights_scale_costs() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let total = eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        let c0 = eval.item_cost(0, &Configuration::new()).expect("costing succeeds");
        let c1 = eval.item_cost(1, &Configuration::new()).expect("costing succeeds");
        assert!((total - (10.0 * c0 + c1)).abs() < 1e-9);
    }

    #[test]
    fn subset_cost_sums_selected() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let only_first = eval.subset_cost(&[0], &empty).expect("costing succeeds");
        let c0 = eval.item_cost(0, &empty).expect("costing succeeds");
        assert!((only_first - 10.0 * c0).abs() < 1e-9);
    }

    #[test]
    fn index_changes_cost() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let before = eval.item_cost(0, &Configuration::new()).expect("costing succeeds");
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "t",
            &["a"],
            &["b"],
        ))]);
        let after = eval.item_cost(0, &cfg).expect("costing succeeds");
        assert!(after < before);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let a = PhysicalStructure::Index(Index::non_clustered("d", "t", &["a"], &[]));
        let b = PhysicalStructure::Index(Index::non_clustered("d", "t", &["b"], &[]));
        let ab = Configuration::from_structures([a.clone(), b.clone()]);
        let ba = Configuration::from_structures([b.clone(), a.clone()]);
        assert_eq!(eval.fingerprint(0, &ab), eval.fingerprint(0, &ba));
        let only_a = Configuration::from_structures([a]);
        assert_ne!(eval.fingerprint(0, &ab), eval.fingerprint(0, &only_a));
    }

    #[test]
    fn invalidate_clears_cached_costs() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2);
        eval.invalidate();
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 4, "cache was dropped, calls re-issued");
    }

    #[test]
    fn item_report_returns_used_structures() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let ix = Index::non_clustered("d", "t", &["a"], &["b"]);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(ix.clone())]);
        let (_, used) = eval.item_report(0, &cfg).expect("costing succeeds");
        assert!(used.contains(&ix.name()), "{used:?}");
        // and the cached path returns them too
        let (_, used_again) = eval.item_report(0, &cfg).expect("costing succeeds");
        assert_eq!(used, used_again);
    }

    #[test]
    fn evaluator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostEvaluator<'static>>();
        assert_send_sync::<TuningTarget<'static>>();
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "t",
            &["a"],
            &["b"],
        ))]);
        let serial = eval.workload_cost(&cfg).expect("costing succeeds");
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| eval.workload_cost(&cfg).expect("costing succeeds")))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker joins")).collect()
        });
        for r in results {
            assert_eq!(r.to_bits(), serial.to_bits());
        }
    }
}
