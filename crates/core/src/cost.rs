//! Workload cost evaluation with per-statement caching.
//!
//! Every configuration DTA explores is priced as the weighted sum of
//! optimizer-estimated statement costs (§2.2). Two optimizations keep
//! the what-if call count manageable without changing any result:
//!
//! 1. **Relevance filtering** — a statement's plan can only be affected
//!    by structures on the tables it references, so the configuration is
//!    projected onto those tables before the what-if call;
//! 2. **Memoization** — the projected configuration is fingerprinted and
//!    the (statement, fingerprint) → cost mapping cached, so greedy steps
//!    that do not touch a statement's tables are free.

use dta_physical::{Configuration, PhysicalStructure};
use dta_server::{ServerError, TuningTarget};
use dta_workload::WorkloadItem;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Caching cost evaluator over one tuning target and workload.
pub struct CostEvaluator<'a> {
    target: &'a TuningTarget<'a>,
    items: &'a [WorkloadItem],
    /// Tables each item references: (database, table) pairs.
    item_tables: Vec<Vec<(String, String)>>,
    cache: RefCell<Vec<HashMap<u64, f64>>>,
    whatif_calls: Cell<usize>,
}

impl<'a> CostEvaluator<'a> {
    /// Build an evaluator for `items` against `target`.
    pub fn new(target: &'a TuningTarget<'a>, items: &'a [WorkloadItem]) -> Self {
        let item_tables = items
            .iter()
            .map(|i| {
                let mut ts: Vec<(String, String)> = i
                    .statement
                    .referenced_tables()
                    .into_iter()
                    .map(|t| (i.database.clone(), t.to_string()))
                    .collect();
                ts.sort();
                ts.dedup();
                ts
            })
            .collect();
        Self {
            target,
            items,
            item_tables,
            cache: RefCell::new(vec![HashMap::new(); items.len()]),
            whatif_calls: Cell::new(0),
        }
    }

    /// The workload items being priced.
    pub fn items(&self) -> &'a [WorkloadItem] {
        self.items
    }

    /// Tuning target.
    pub fn target(&self) -> &'a TuningTarget<'a> {
        self.target
    }

    /// What-if calls actually issued (cache misses).
    pub fn whatif_calls(&self) -> usize {
        self.whatif_calls.get()
    }

    /// Structures of `config` that can affect item `i`.
    fn relevant(&self, i: usize, config: &Configuration) -> Configuration {
        let tables = &self.item_tables[i];
        let db = &self.items[i].database;
        config
            .iter()
            .filter(|s| match s {
                PhysicalStructure::Index(ix) => tables
                    .iter()
                    .any(|(d, t)| *d == ix.database && *t == ix.table),
                PhysicalStructure::View(v) => {
                    v.database == *db && v.tables.iter().any(|vt| tables.iter().any(|(_, t)| t == vt))
                }
                PhysicalStructure::TablePartitioning { database, table, .. } => {
                    tables.iter().any(|(d, t)| d == database && t == table)
                }
            })
            .cloned()
            .collect()
    }

    fn fingerprint(config: &Configuration) -> u64 {
        let mut names: Vec<String> = config.iter().map(|s| s.name()).collect();
        names.sort();
        let mut h = DefaultHasher::new();
        names.hash(&mut h);
        h.finish()
    }

    /// Estimated cost of one item under `config`.
    pub fn item_cost(&self, i: usize, config: &Configuration) -> Result<f64, ServerError> {
        let relevant = self.relevant(i, config);
        let fp = Self::fingerprint(&relevant);
        if let Some(c) = self.cache.borrow()[i].get(&fp) {
            return Ok(*c);
        }
        let item = &self.items[i];
        self.whatif_calls.set(self.whatif_calls.get() + 1);
        let plan = self.target.whatif(&item.database, &item.statement, &relevant)?;
        self.cache.borrow_mut()[i].insert(fp, plan.cost);
        Ok(plan.cost)
    }

    /// Weighted workload cost under `config`.
    pub fn workload_cost(&self, config: &Configuration) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for i in 0..self.items.len() {
            total += self.items[i].weight * self.item_cost(i, config)?;
        }
        Ok(total)
    }

    /// Weighted cost of a subset of items (per-query candidate selection).
    pub fn subset_cost(
        &self,
        indexes: &[usize],
        config: &Configuration,
    ) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for &i in indexes {
            total += self.items[i].weight * self.item_cost(i, config)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_physical::Index;
    use dta_server::Server;
    use dta_sql::parse_statement;
    use dta_workload::Workload;

    fn server() -> Server {
        let mut s = Server::new("s");
        let mut db = Database::new("d");
        for name in ["t", "u"] {
            db.add_table(Table::new(
                name,
                vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Int)],
            ))
            .unwrap();
        }
        s.create_database(db).unwrap();
        for name in ["t", "u"] {
            let d = s.table_data_mut("d", name).unwrap();
            for i in 0..5000i64 {
                d.push_row(vec![Value::Int(i % 100), Value::Int(i)]);
            }
        }
        s
    }

    fn wl() -> Workload {
        Workload::from_items(vec![
            dta_workload::WorkloadItem::weighted(
                "d",
                parse_statement("SELECT b FROM t WHERE a = 5").unwrap(),
                10.0,
            ),
            dta_workload::WorkloadItem::new("d", parse_statement("SELECT b FROM u WHERE a = 7").unwrap()),
        ])
    }

    #[test]
    fn caching_avoids_redundant_calls() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let c1 = eval.workload_cost(&empty).unwrap();
        assert_eq!(eval.whatif_calls(), 2);
        let c2 = eval.workload_cost(&empty).unwrap();
        assert_eq!(eval.whatif_calls(), 2, "second evaluation fully cached");
        assert_eq!(c1, c2);
    }

    #[test]
    fn irrelevant_structures_hit_cache() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        eval.workload_cost(&Configuration::new()).unwrap();
        let calls = eval.whatif_calls();
        // an index on `u` cannot affect the statement on `t`
        let cfg = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("d", "u", &["a"], &["b"]),
        )]);
        eval.item_cost(0, &cfg).unwrap();
        assert_eq!(eval.whatif_calls(), calls, "projection made it a cache hit");
        eval.item_cost(1, &cfg).unwrap();
        assert_eq!(eval.whatif_calls(), calls + 1);
    }

    #[test]
    fn weights_scale_costs() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let total = eval.workload_cost(&Configuration::new()).unwrap();
        let c0 = eval.item_cost(0, &Configuration::new()).unwrap();
        let c1 = eval.item_cost(1, &Configuration::new()).unwrap();
        assert!((total - (10.0 * c0 + c1)).abs() < 1e-9);
    }

    #[test]
    fn subset_cost_sums_selected() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let only_first = eval.subset_cost(&[0], &empty).unwrap();
        let c0 = eval.item_cost(0, &empty).unwrap();
        assert!((only_first - 10.0 * c0).abs() < 1e-9);
    }

    #[test]
    fn index_changes_cost() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let before = eval.item_cost(0, &Configuration::new()).unwrap();
        let cfg = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("d", "t", &["a"], &["b"]),
        )]);
        let after = eval.item_cost(0, &cfg).unwrap();
        assert!(after < before);
    }
}
