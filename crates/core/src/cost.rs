//! Workload cost evaluation with a shared, thread-safe per-statement
//! cache.
//!
//! Every configuration DTA explores is priced as the weighted sum of
//! optimizer-estimated statement costs (§2.2). Two optimizations keep
//! the what-if call count manageable without changing any result:
//!
//! 1. **Relevance filtering** — a statement's plan can only be affected
//!    by structures on the tables it references, so the configuration is
//!    projected onto those tables before the what-if call;
//! 2. **Memoization** — the projected configuration is fingerprinted and
//!    the (statement, fingerprint) → cost mapping cached, so greedy steps
//!    that do not touch a statement's tables are free.
//!
//! The evaluator is `Send + Sync` so ONE instance (and therefore one
//! cache) serves the whole tuning session — pre-cost estimation,
//! parallel per-query candidate selection, and parallel enumeration all
//! share hits. The cache is sharded by statement index
//! (`RwLock<HashMap>` per statement), so concurrent lookups of different
//! statements never contend and lookups of the same statement contend
//! only on a reader-writer lock. Two threads racing on the same miss may
//! both issue the what-if call; the cost model is deterministic, so they
//! insert the same value and the race is benign.
//!
//! Fingerprints are computed without allocating: each relevant structure
//! is hashed independently and the per-structure hashes are combined
//! with order-independent arithmetic, so the hot path (a cache hit)
//! touches no heap. The projected [`Configuration`] is only materialized
//! on a miss, where the what-if call dwarfs it.
//!
//! Debug builds additionally run the sanitizer-lite checks from
//! [`crate::invariants`]: every cache hit re-derives a second,
//! independent fingerprint to detect primary-key collisions, every
//! cached cost must be finite and non-negative, weighted sums must
//! accumulate monotonically, and the shard table must stay one-to-one
//! with the workload. All of it compiles away under `--release`.

use crate::invariants;
use dta_physical::{Configuration, PhysicalStructure};
use dta_server::{ServerError, TuningTarget};
use dta_workload::WorkloadItem;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A memoized what-if result for one (statement, projected config) pair.
#[derive(Debug, Clone)]
struct CacheEntry {
    cost: f64,
    /// Names of the structures the plan uses (for §6.3 reports).
    used_structures: Vec<String>,
    /// Secondary fingerprint for debug-build collision detection
    /// ([`invariants::check_fingerprint`]); 0 in release builds.
    verify: u64,
}

/// Caching cost evaluator over one tuning target and workload.
///
/// `Send + Sync`: share a single instance across every phase of the
/// session and across worker threads.
pub struct CostEvaluator<'a> {
    target: &'a TuningTarget<'a>,
    items: &'a [WorkloadItem],
    /// Tables each item references: (database, table) pairs.
    item_tables: Vec<Vec<(String, String)>>,
    /// One cache shard per statement.
    shards: Vec<RwLock<HashMap<u64, CacheEntry>>>,
    whatif_calls: AtomicUsize,
}

impl<'a> CostEvaluator<'a> {
    /// Build an evaluator for `items` against `target`.
    pub fn new(target: &'a TuningTarget<'a>, items: &'a [WorkloadItem]) -> Self {
        let item_tables = items
            .iter()
            .map(|i| {
                let mut ts: Vec<(String, String)> = i
                    .statement
                    .referenced_tables()
                    .into_iter()
                    .map(|t| (i.database.clone(), t.to_string()))
                    .collect();
                ts.sort();
                ts.dedup();
                ts
            })
            .collect();
        Self {
            target,
            items,
            item_tables,
            shards: (0..items.len()).map(|_| RwLock::new(HashMap::new())).collect(),
            whatif_calls: AtomicUsize::new(0),
        }
    }

    /// The workload items being priced.
    pub fn items(&self) -> &'a [WorkloadItem] {
        self.items
    }

    /// Tuning target.
    pub fn target(&self) -> &'a TuningTarget<'a> {
        self.target
    }

    /// What-if calls actually issued (cache misses).
    pub fn whatif_calls(&self) -> usize {
        // dta-lint: allow(R6): monotonic telemetry counter; readers only
        // need an eventually-consistent tally, nothing is ordered on it.
        self.whatif_calls.load(Ordering::Relaxed)
    }

    /// Drop every cached cost (the call counter is kept).
    ///
    /// Needed when the cost model itself changes mid-session — e.g.
    /// after statistics creation, which alters what-if estimates.
    pub fn invalidate(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Whether `s` can affect item `i`'s plan.
    fn is_relevant(&self, i: usize, s: &PhysicalStructure) -> bool {
        let tables = &self.item_tables[i];
        let db = &self.items[i].database;
        match s {
            PhysicalStructure::Index(ix) => {
                tables.iter().any(|(d, t)| *d == ix.database && *t == ix.table)
            }
            PhysicalStructure::View(v) => {
                v.database == *db && v.tables.iter().any(|vt| tables.iter().any(|(_, t)| t == vt))
            }
            PhysicalStructure::TablePartitioning { database, table, .. } => {
                tables.iter().any(|(d, t)| d == database && t == table)
            }
        }
    }

    /// Structures of `config` that can affect item `i`.
    fn project(&self, i: usize, config: &Configuration) -> Configuration {
        config.iter().filter(|s| self.is_relevant(i, s)).cloned().collect()
    }

    /// Order-independent fingerprint of `config` projected onto item `i`,
    /// computed without allocating.
    fn fingerprint(&self, i: usize, config: &Configuration) -> u64 {
        let mut sum = 0u64;
        let mut xor = 0u64;
        let mut count = 0u64;
        for s in config.iter().filter(|s| self.is_relevant(i, s)) {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            let v = h.finish();
            sum = sum.wrapping_add(v);
            xor ^= v;
            count += 1;
        }
        let mut h = DefaultHasher::new();
        (sum, xor, count).hash(&mut h);
        h.finish()
    }

    /// Second, independently-combined fingerprint of the same projection
    /// (different seed, different combiners). Debug builds store it per
    /// cache entry and re-derive it on every hit: a primary-key collision
    /// — two projections sharing a [`Self::fingerprint`] — then trips
    /// [`invariants::check_fingerprint`] instead of silently pricing one
    /// configuration with another's cost.
    fn verify_fingerprint(&self, i: usize, config: &Configuration) -> u64 {
        /// Seed decorrelating this hash from the primary fingerprint's.
        const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut sum = 0u64;
        let mut prod = 1u64;
        let mut count = 0u64;
        for s in config.iter().filter(|s| self.is_relevant(i, s)) {
            let mut h = DefaultHasher::new();
            SEED.hash(&mut h);
            s.hash(&mut h);
            let v = h.finish();
            sum = sum.wrapping_add(v);
            prod = prod.wrapping_mul(v | 1);
            count += 1;
        }
        let mut h = DefaultHasher::new();
        (count, prod, sum).hash(&mut h);
        h.finish()
    }

    /// Price item `i` under `config`, returning the full cache entry.
    fn item_entry(
        &self,
        i: usize,
        config: &Configuration,
        want_structures: bool,
    ) -> Result<(f64, Vec<String>), ServerError> {
        invariants::check_shards(self.shards.len(), self.items.len(), i);
        let fp = self.fingerprint(i, config);
        if let Some(e) = self.shards[i].read().get(&fp) {
            if invariants::ENABLED {
                invariants::check_fingerprint(e.verify, self.verify_fingerprint(i, config), i);
            }
            let used = if want_structures { e.used_structures.clone() } else { Vec::new() };
            return Ok((e.cost, used));
        }
        let relevant = self.project(i, config);
        let item = &self.items[i];
        // dta-lint: allow(R6): monotonic telemetry counter; racing misses
        // may each add one, which is the intended semantics (calls issued).
        self.whatif_calls.fetch_add(1, Ordering::Relaxed);
        let plan = self.target.whatif(&item.database, &item.statement, &relevant)?;
        let cost = plan.cost;
        invariants::check_cost(cost, "what-if estimate");
        let used_structures = plan.used_structures();
        let used = if want_structures { used_structures.clone() } else { Vec::new() };
        let verify = if invariants::ENABLED { self.verify_fingerprint(i, config) } else { 0 };
        self.shards[i].write().insert(fp, CacheEntry { cost, used_structures, verify });
        Ok((cost, used))
    }

    /// Estimated cost of one item under `config`.
    pub fn item_cost(&self, i: usize, config: &Configuration) -> Result<f64, ServerError> {
        self.item_entry(i, config, false).map(|(c, _)| c)
    }

    /// Cost plus the structures the plan uses (§6.3 reports).
    pub fn item_report(
        &self,
        i: usize,
        config: &Configuration,
    ) -> Result<(f64, Vec<String>), ServerError> {
        self.item_entry(i, config, true)
    }

    /// Weighted workload cost under `config`.
    ///
    /// Items are summed in workload order, so the result is bitwise
    /// identical no matter which thread asks.
    pub fn workload_cost(&self, config: &Configuration) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for i in 0..self.items.len() {
            let next = total + self.items[i].weight * self.item_cost(i, config)?;
            invariants::check_monotonic_sum(total, next, "workload_cost");
            total = next;
        }
        Ok(total)
    }

    /// Weighted cost of a subset of items (per-query candidate selection).
    pub fn subset_cost(
        &self,
        indexes: &[usize],
        config: &Configuration,
    ) -> Result<f64, ServerError> {
        let mut total = 0.0;
        for &i in indexes {
            let next = total + self.items[i].weight * self.item_cost(i, config)?;
            invariants::check_monotonic_sum(total, next, "subset_cost");
            total = next;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};
    use dta_physical::Index;
    use dta_server::Server;
    use dta_sql::parse_statement;
    use dta_workload::Workload;

    fn server() -> Server {
        let mut s = Server::new("s");
        let mut db = Database::new("d");
        for name in ["t", "u"] {
            db.add_table(Table::new(
                name,
                vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Int)],
            ))
            .expect("fresh table");
        }
        s.create_database(db).expect("fresh database");
        for name in ["t", "u"] {
            let d = s.table_data_mut("d", name).expect("table exists");
            for i in 0..5000i64 {
                d.push_row(vec![Value::Int(i % 100), Value::Int(i)]);
            }
        }
        s
    }

    fn wl() -> Workload {
        Workload::from_items(vec![
            dta_workload::WorkloadItem::weighted(
                "d",
                parse_statement("SELECT b FROM t WHERE a = 5").expect("valid SQL"),
                10.0,
            ),
            dta_workload::WorkloadItem::new(
                "d",
                parse_statement("SELECT b FROM u WHERE a = 7").expect("valid SQL"),
            ),
        ])
    }

    #[test]
    fn caching_avoids_redundant_calls() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let c1 = eval.workload_cost(&empty).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2);
        let c2 = eval.workload_cost(&empty).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2, "second evaluation fully cached");
        assert_eq!(c1, c2);
    }

    #[test]
    fn irrelevant_structures_hit_cache() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        let calls = eval.whatif_calls();
        // an index on `u` cannot affect the statement on `t`
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "u",
            &["a"],
            &["b"],
        ))]);
        eval.item_cost(0, &cfg).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), calls, "projection made it a cache hit");
        eval.item_cost(1, &cfg).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), calls + 1);
    }

    #[test]
    fn weights_scale_costs() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let total = eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        let c0 = eval.item_cost(0, &Configuration::new()).expect("costing succeeds");
        let c1 = eval.item_cost(1, &Configuration::new()).expect("costing succeeds");
        assert!((total - (10.0 * c0 + c1)).abs() < 1e-9);
    }

    #[test]
    fn subset_cost_sums_selected() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let empty = Configuration::new();
        let only_first = eval.subset_cost(&[0], &empty).expect("costing succeeds");
        let c0 = eval.item_cost(0, &empty).expect("costing succeeds");
        assert!((only_first - 10.0 * c0).abs() < 1e-9);
    }

    #[test]
    fn index_changes_cost() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let before = eval.item_cost(0, &Configuration::new()).expect("costing succeeds");
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "t",
            &["a"],
            &["b"],
        ))]);
        let after = eval.item_cost(0, &cfg).expect("costing succeeds");
        assert!(after < before);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let a = PhysicalStructure::Index(Index::non_clustered("d", "t", &["a"], &[]));
        let b = PhysicalStructure::Index(Index::non_clustered("d", "t", &["b"], &[]));
        let ab = Configuration::from_structures([a.clone(), b.clone()]);
        let ba = Configuration::from_structures([b.clone(), a.clone()]);
        assert_eq!(eval.fingerprint(0, &ab), eval.fingerprint(0, &ba));
        let only_a = Configuration::from_structures([a]);
        assert_ne!(eval.fingerprint(0, &ab), eval.fingerprint(0, &only_a));
    }

    #[test]
    fn invalidate_clears_cached_costs() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 2);
        eval.invalidate();
        eval.workload_cost(&Configuration::new()).expect("costing succeeds");
        assert_eq!(eval.whatif_calls(), 4, "cache was dropped, calls re-issued");
    }

    #[test]
    fn item_report_returns_used_structures() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let ix = Index::non_clustered("d", "t", &["a"], &["b"]);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(ix.clone())]);
        let (_, used) = eval.item_report(0, &cfg).expect("costing succeeds");
        assert!(used.contains(&ix.name()), "{used:?}");
        // and the cached path returns them too
        let (_, used_again) = eval.item_report(0, &cfg).expect("costing succeeds");
        assert_eq!(used, used_again);
    }

    #[test]
    fn evaluator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostEvaluator<'static>>();
        assert_send_sync::<TuningTarget<'static>>();
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let w = wl();
        let eval = CostEvaluator::new(&target, &w.items);
        let cfg = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "d",
            "t",
            &["a"],
            &["b"],
        ))]);
        let serial = eval.workload_cost(&cfg).expect("costing succeeds");
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| eval.workload_cost(&cfg).expect("costing succeeds")))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker joins")).collect()
        });
        for r in results {
            assert_eq!(r.to_bits(), serial.to_bits());
        }
    }
}
