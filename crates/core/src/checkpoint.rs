//! Session checkpoints: everything a budget-exhausted run must persist
//! so that [`crate::tune_resume`] can continue it to the byte-identical
//! answer an uninterrupted run would have produced (DESIGN.md §9).
//!
//! A checkpoint is only emitted when the work budget runs out
//! ([`crate::Completion::BudgetExhausted`]) and is captured *before* the
//! epilogue prices the best-so-far report, so the warmed cache it carries
//! holds exactly the entries the search had produced at the cut — no
//! report-only pricing leaks into the resumed session's tallies.
//!
//! Derived state is deliberately *not* stored: column groups, the merged
//! pool ordering, and Phase-2 greedy `remaining` lists are all recomputed
//! deterministically from what is stored (pre-costs, per-item selections,
//! the greedy cursor). The serialized form lives in `dta-xml`
//! (`checkpoint_to_xml` / `checkpoint_from_xml`), which round-trips
//! floats bit-exactly via their IEEE-754 bit patterns.

use crate::candidates::ItemSelection;
use crate::control::Stage;
use crate::cost::CacheExport;
use crate::enumeration::EnumerationResume;
use crate::options::TuningOptions;
use dta_workload::Workload;

/// Statistics-stage outcome (§5.2), captured once that stage completed.
/// A resumed session reuses these numbers and skips re-creation — the
/// statistics already exist on the tuning target.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsProgress {
    /// Statistics requested for the interesting column-groups.
    pub requested: usize,
    /// Statistics actually created.
    pub created: usize,
    /// Server work units spent creating them.
    pub work_units: f64,
    /// Creations abandoned after a permanent fault (or retry exhaustion).
    pub failed: usize,
    /// Transient creation faults absorbed by retry.
    pub retries: usize,
    /// Deterministic backoff units accounted across those retries.
    pub backoff_units: u64,
}

/// A budget-exhausted tuning session, frozen at its cut point.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// The interrupted session's options.
    pub options: TuningOptions,
    /// The compressed (tuned) workload — compression is not re-run.
    pub workload: Workload,
    /// Statement count of the original, uncompressed workload.
    pub total_statements: usize,
    /// Total events (sum of weights) of the original workload.
    pub total_events: f64,
    /// Stage that was in progress when the budget ran out.
    pub stage: Stage,
    /// Work units consumed at the cut (the resumed ledger starts here).
    pub consumed_units: u64,
    /// What-if server overhead units spent before the cut.
    pub tuning_work_units: f64,
    /// Pre-statistics base costs for the completed prefix of items.
    pub pre_costs: Vec<f64>,
    /// Statistics-stage outcome, once that stage completed.
    pub stats: Option<StatsProgress>,
    /// Completed per-item candidate selections (a prefix of the workload
    /// when the cut hit mid-selection; complete for later stages).
    pub selections: Option<Vec<ItemSelection>>,
    /// Enumeration cursor, when the cut hit mid-enumeration.
    pub enumeration: Option<EnumerationResume>,
    /// The warmed what-if cache at the cut.
    pub cache: Vec<CacheExport>,
    /// What-if calls issued before the cut.
    pub whatif_calls: usize,
    /// Worker panics isolated before the cut.
    pub worker_restarts: usize,
    /// Transient faults absorbed by retry before the cut.
    pub whatif_retries: usize,
    /// Deterministic backoff units accounted across those retries.
    pub retry_backoff_units: u64,
    /// Workload item indexes degraded by permanent faults.
    pub degraded: Vec<usize>,
}

impl SessionCheckpoint {
    /// Structural consistency checks, run before a resume touches the
    /// server. Returns a human-readable description of the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.workload.items.len();
        if self.pre_costs.len() > n {
            return Err(format!(
                "checkpoint carries {} pre-costs for {} statements",
                self.pre_costs.len(),
                n
            ));
        }
        if self.stage > Stage::PreCosting && self.pre_costs.len() != n {
            return Err(format!(
                "stage {} requires all {} pre-costs, found {}",
                self.stage,
                n,
                self.pre_costs.len()
            ));
        }
        if self.stage > Stage::Statistics && self.stats.is_none() {
            return Err(format!("stage {} requires statistics progress", self.stage));
        }
        match &self.selections {
            Some(sels) if sels.len() > n => {
                return Err(format!(
                    "checkpoint carries {} selections for {} statements",
                    sels.len(),
                    n
                ));
            }
            Some(sels) if self.stage > Stage::CandidateSelection && sels.len() != n => {
                return Err(format!(
                    "stage {} requires all {} selections, found {}",
                    self.stage,
                    n,
                    sels.len()
                ));
            }
            None if self.stage > Stage::CandidateSelection => {
                return Err(format!("stage {} requires selection results", self.stage));
            }
            _ => {}
        }
        for e in &self.cache {
            if e.item >= n {
                return Err(format!("cache entry for item {} of {}", e.item, n));
            }
            if !e.cost.is_finite() || e.cost < 0.0 {
                return Err(format!("cache entry with invalid cost {}", e.cost));
            }
        }
        for &d in &self.degraded {
            if d >= n {
                return Err(format!("degraded item {} of {}", d, n));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Stage;

    fn checkpoint(n: usize) -> SessionCheckpoint {
        let sql: Vec<String> = (0..n).map(|i| format!("SELECT a FROM t WHERE a = {i};")).collect();
        let workload = Workload::from_sql_file("d", &sql.join(" ")).expect("valid SQL");
        SessionCheckpoint {
            options: TuningOptions::default(),
            workload,
            total_statements: n,
            total_events: n as f64,
            stage: Stage::PreCosting,
            consumed_units: 1,
            tuning_work_units: 2.0,
            pre_costs: vec![1.0],
            stats: None,
            selections: None,
            enumeration: None,
            cache: Vec::new(),
            whatif_calls: 1,
            worker_restarts: 0,
            whatif_retries: 0,
            retry_backoff_units: 0,
            degraded: Vec::new(),
        }
    }

    #[test]
    fn consistent_checkpoint_validates() {
        assert_eq!(checkpoint(3).validate(), Ok(()));
        let mut complete = checkpoint(2);
        complete.stage = Stage::Merging;
        complete.pre_costs = vec![1.0, 2.0];
        complete.stats = Some(StatsProgress {
            requested: 1,
            created: 1,
            work_units: 1.0,
            failed: 0,
            retries: 0,
            backoff_units: 0,
        });
        complete.selections = Some(vec![ItemSelection::default(), ItemSelection::default()]);
        assert_eq!(complete.validate(), Ok(()));
    }

    #[test]
    fn inconsistencies_are_rejected() {
        let mut cp = checkpoint(2);
        cp.pre_costs = vec![1.0, 2.0, 3.0];
        assert!(cp.validate().is_err(), "too many pre-costs");

        let mut cp = checkpoint(2);
        cp.stage = Stage::Statistics;
        assert!(cp.validate().is_err(), "stage past pre-costing needs all pre-costs");

        let mut cp = checkpoint(1);
        cp.stage = Stage::CandidateSelection;
        assert!(cp.validate().is_err(), "selection stage needs stats numbers");

        let mut cp = checkpoint(1);
        cp.degraded = vec![5];
        assert!(cp.validate().is_err(), "degraded index out of range");

        let mut cp = checkpoint(1);
        cp.cache = vec![crate::cost::CacheExport {
            item: 0,
            fingerprint: 1,
            cost: f64::NAN,
            used_structures: Vec::new(),
            verify: 0,
        }];
        assert!(cp.validate().is_err(), "NaN cached cost");
    }
}
