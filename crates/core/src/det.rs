//! Deterministic float-comparison helpers — the one sanctioned home
//! for raw `f64` comparisons in the search (`dta-lint` rule R2).
//!
//! PR 1's guarantee — parallel and serial Greedy(m,k) return
//! byte-identical recommendations — rests on two comparison
//! disciplines:
//!
//! 1. every reduction picks its winner by **`(cost, position)`**, so a
//!    cost tie is always broken toward the earliest-generated entrant,
//!    exactly as a serial left-to-right strict-`<` scan would;
//! 2. a candidate is only ever **adopted on strict improvement**, so
//!    float equality (including `-0.0`/`+0.0` and accumulated-sum
//!    round-trips) can never flip a decision between runs.
//!
//! Scattering ad-hoc `<`/`min` over the search re-opens both holes —
//! `f64::min` is also NaN-silent, which would let a poisoned cost win a
//! reduction without a trace. Search code therefore routes every cost
//! comparison through these helpers; `dta-lint` R2 flags raw
//! comparisons in `greedy.rs`/`enumeration.rs`.

/// Whether `candidate` strictly improves on `incumbent`.
///
/// NaN never improves (every comparison with NaN is false), so a
/// poisoned cost can never be adopted — and the debug-build sanitizer
/// ([`crate::invariants`]) catches the NaN at its source.
#[inline]
pub fn improves(candidate: f64, incumbent: f64) -> bool {
    candidate < incumbent
}

/// Minimum of an entrant and an incumbent by `(cost, position)`.
///
/// The entrant wins only with a strictly lower cost, or an equal cost
/// at a strictly lower position. Folding any permutation of entrants
/// through this yields the same winner a serial in-order scan picks,
/// which is what makes the parallel reduction order-insensitive.
#[inline]
pub fn min_by_cost_position(
    entrant: (usize, f64),
    incumbent: Option<(usize, f64)>,
) -> Option<(usize, f64)> {
    match incumbent {
        None => Some(entrant),
        Some(inc) => {
            if entrant.1 < inc.1 || (entrant.1 == inc.1 && entrant.0 < inc.0) {
                Some(entrant)
            } else {
                Some(inc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_is_strict() {
        assert!(improves(1.0, 2.0));
        assert!(!improves(2.0, 2.0), "equality must never flip a decision");
        assert!(!improves(3.0, 2.0));
    }

    #[test]
    fn nan_never_improves() {
        assert!(!improves(f64::NAN, 1.0));
        assert!(improves(1.0, f64::INFINITY));
        assert!(!improves(f64::NAN, f64::NAN));
    }

    #[test]
    fn position_breaks_ties() {
        assert_eq!(min_by_cost_position((5, 1.0), Some((3, 1.0))), Some((3, 1.0)));
        assert_eq!(min_by_cost_position((2, 1.0), Some((3, 1.0))), Some((2, 1.0)));
        assert_eq!(min_by_cost_position((9, 0.5), Some((3, 1.0))), Some((9, 0.5)));
        assert_eq!(min_by_cost_position((9, 2.0), Some((3, 1.0))), Some((3, 1.0)));
        assert_eq!(min_by_cost_position((7, 4.0), None), Some((7, 4.0)));
    }

    #[test]
    fn fold_order_does_not_matter() {
        // entrants with deliberate ties, folded in every rotation
        let entrants = [(4, 2.0), (1, 2.0), (3, 1.5), (6, 1.5), (0, 9.0)];
        let fold = |order: &[(usize, f64)]| {
            order.iter().fold(None, |acc, &e| min_by_cost_position(e, acc))
        };
        let expect = fold(&entrants);
        assert_eq!(expect, Some((3, 1.5)));
        for rot in 1..entrants.len() {
            let mut rotated = entrants.to_vec();
            rotated.rotate_left(rot);
            assert_eq!(fold(&rotated), expect, "rotation {rot}");
        }
    }

    #[test]
    fn negative_zero_cannot_flip_a_winner() {
        // -0.0 == 0.0: the tie must resolve by position, not sign bit
        assert_eq!(min_by_cost_position((5, -0.0), Some((2, 0.0))), Some((2, 0.0)));
        assert_eq!(min_by_cost_position((1, -0.0), Some((2, 0.0))), Some((1, -0.0)));
    }
}
