//! Candidate Selection (§2.2): per-query candidate generation plus
//! Greedy(m, k) selection of the best configuration *for each query*.
//!
//! A structure that belongs to some query's best configuration becomes a
//! *candidate* for the whole workload. Generation is restricted to
//! interesting column-groups, and all costing goes through the what-if
//! interface.

use crate::colgroups::ColumnGroups;
use crate::control::{SessionControl, StopReason};
use crate::cost::CostEvaluator;
use crate::greedy::greedy_mk;
use crate::options::TuningOptions;
use dta_catalog::Value;
use dta_optimizer::query::{bind, BoundSelect, BoundStatement, SargOp};
use dta_physical::{
    Configuration, Index, JoinPair, MaterializedView, PhysicalStructure, QualifiedColumn,
    RangePartitioning, ViewAggregate,
};
use dta_server::{Server, TuningTarget};
use dta_workload::WorkloadItem;
use std::collections::{BTreeMap, BTreeSet};

/// Default number of range partitions for generated partitioning schemes.
pub const DEFAULT_PARTITIONS: usize = 12;

/// A candidate structure with bookkeeping from candidate selection.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub structure: PhysicalStructure,
    /// Summed per-query benefit (base cost − selected cost, apportioned).
    pub benefit: f64,
    /// How many queries selected it.
    pub selected_by: usize,
}

/// The output of candidate selection.
#[derive(Debug, Clone, Default)]
pub struct CandidatePool {
    pub candidates: Vec<Candidate>,
    /// Structures generated across all queries (pre-selection).
    pub generated: usize,
    /// Greedy evaluations performed.
    pub evaluations: usize,
    /// What-if calls issued (cache misses) during selection.
    pub whatif_calls: usize,
}

impl CandidatePool {
    /// Add a selected structure, merging duplicates.
    pub fn add(&mut self, structure: PhysicalStructure, benefit: f64) {
        if let Some(c) = self.candidates.iter_mut().find(|c| c.structure == structure) {
            c.benefit += benefit;
            c.selected_by += 1;
        } else {
            self.candidates.push(Candidate { structure, benefit, selected_by: 1 });
        }
    }

    /// Just the structures.
    pub fn structures(&self) -> Vec<PhysicalStructure> {
        self.candidates.iter().map(|c| c.structure.clone()).collect()
    }

    /// Merge another pool into this one.
    pub fn merge(&mut self, other: CandidatePool) {
        self.generated += other.generated;
        self.evaluations += other.evaluations;
        self.whatif_calls += other.whatif_calls;
        for c in other.candidates {
            if let Some(mine) = self.candidates.iter_mut().find(|m| m.structure == c.structure) {
                mine.benefit += c.benefit;
                mine.selected_by += c.selected_by;
            } else {
                self.candidates.push(c);
            }
        }
    }
}

/// Derive `n`-way range-partitioning boundaries for a column from its
/// histogram (if the server has one).
pub fn partition_boundaries(
    server: &Server,
    database: &str,
    table: &str,
    column: &str,
    n: usize,
) -> Option<Vec<Value>> {
    server.with_statistics(|stats| {
        let h = stats.histogram(database, table, column)?;
        if h.is_empty() || h.bucket_count() < 2 {
            return None;
        }
        let want = n.saturating_sub(1).max(1);
        let mut out: Vec<Value> = Vec::with_capacity(want);
        for i in 1..=want {
            if let Some(b) = h.quantile(i as f64 / (want + 1) as f64) {
                out.push(b.clone());
            }
        }
        out.sort();
        out.dedup();
        // drop a boundary equal to the max (it would create an empty tail)
        if let Some(max) = h.max_value() {
            out.retain(|b| b < max);
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    })
}

/// Everything generated for one query.
pub fn generate_for_item(
    target: &TuningTarget<'_>,
    groups: &ColumnGroups,
    options: &TuningOptions,
    item: &WorkloadItem,
) -> Vec<PhysicalStructure> {
    let catalog = target.catalog();
    let Ok(bound) = bind(catalog, &item.database, &item.statement) else {
        return Vec::new();
    };
    let mut out: Vec<PhysicalStructure> = Vec::new();
    match &bound {
        BoundStatement::Select(sel) => {
            generate_for_select(target, groups, options, &item.database, sel, &mut out)
        }
        BoundStatement::Dml(dml) => {
            use dta_optimizer::query::BoundDml;
            if let BoundDml::Update { database, table, filter, .. }
            | BoundDml::Delete { database, table, filter } = dml
            {
                if options.features.indexes {
                    for s in &filter.sargs {
                        let set: BTreeSet<String> = [s.column.column.clone()].into();
                        if groups.is_interesting(database, table, &set) {
                            push_unique(
                                &mut out,
                                PhysicalStructure::Index(Index::non_clustered(
                                    database,
                                    table,
                                    &[s.column.column.as_str()],
                                    &[],
                                )),
                            );
                        }
                    }
                }
            }
        }
    }
    out.truncate(options.max_candidates_per_query);
    out
}

fn push_unique(out: &mut Vec<PhysicalStructure>, s: PhysicalStructure) {
    if !out.contains(&s) {
        out.push(s);
    }
}

fn generate_for_select(
    target: &TuningTarget<'_>,
    groups: &ColumnGroups,
    options: &TuningOptions,
    database: &str,
    sel: &BoundSelect,
    out: &mut Vec<PhysicalStructure>,
) {
    let features = options.features;
    // per binding analysis
    for bt in &sel.tables {
        let table = bt.table.as_str();
        let binding = bt.binding.as_str();
        let interesting = |cols: &[&str]| -> bool {
            let set: BTreeSet<String> = cols.iter().map(|c| c.to_string()).collect();
            groups.is_interesting(database, table, &set)
        };

        let sargs = sel.sargs_for(binding);
        let eq_cols: Vec<&str> = sargs
            .iter()
            .filter(|s| matches!(s.op, SargOp::Eq(_) | SargOp::In(_)))
            .map(|s| s.column.column.as_str())
            .collect();
        let range_cols: Vec<&str> = sargs
            .iter()
            .filter(|s| matches!(s.op, SargOp::Range { .. } | SargOp::LikePrefix(_)))
            .map(|s| s.column.column.as_str())
            .collect();
        let group_cols: Vec<&str> = sel
            .group_by
            .iter()
            .filter(|g| g.binding == binding)
            .map(|g| g.column.as_str())
            .collect();
        let order_cols: Vec<&str> = sel
            .order_by
            .iter()
            .filter(|(o, _)| o.binding == binding)
            .map(|(o, _)| o.column.as_str())
            .collect();
        let join_cols: Vec<&str> = sel
            .joins
            .iter()
            .filter_map(|j| j.side_for(binding).map(|c| c.column.as_str()))
            .collect();
        let referenced = sel.referenced_for(binding);

        // key sequences worth trying
        let mut key_seqs: Vec<Vec<&'_ str>> = Vec::new();
        fn push_seq_impl<'x>(
            seq: Vec<&'x str>,
            key_seqs: &mut Vec<Vec<&'x str>>,
            interesting: &dyn Fn(&[&str]) -> bool,
        ) {
            if seq.is_empty() || seq.len() > 3 {
                return;
            }
            let mut dedup = Vec::new();
            for c in seq {
                if !dedup.contains(&c) {
                    dedup.push(c);
                }
            }
            if interesting(&dedup) && !key_seqs.contains(&dedup) {
                key_seqs.push(dedup);
            }
        }
        for &c in eq_cols.iter().chain(&range_cols) {
            push_seq_impl(vec![c], &mut key_seqs, &interesting);
        }
        for &e in &eq_cols {
            for &r in range_cols.iter().chain(&group_cols) {
                if e != r {
                    push_seq_impl(vec![e, r], &mut key_seqs, &interesting);
                }
            }
        }
        if !group_cols.is_empty() {
            push_seq_impl(group_cols.clone(), &mut key_seqs, &interesting);
            // sargable prefix then grouping
            if let Some(&e) = eq_cols.first() {
                let mut seq = vec![e];
                seq.extend(group_cols.iter().copied());
                seq.truncate(3);
                push_seq_impl(seq, &mut key_seqs, &interesting);
            }
            if let Some(&r) = range_cols.first() {
                let mut seq = vec![r];
                seq.extend(group_cols.iter().copied());
                seq.truncate(3);
                push_seq_impl(seq, &mut key_seqs, &interesting);
            }
        }
        if !order_cols.is_empty() {
            push_seq_impl(order_cols.clone(), &mut key_seqs, &interesting);
        }
        for &j in &join_cols {
            push_seq_impl(vec![j], &mut key_seqs, &interesting);
        }

        if features.indexes {
            for seq in &key_seqs {
                push_unique(
                    out,
                    PhysicalStructure::Index(Index::non_clustered(database, table, seq, &[])),
                );
                // covering variant
                let includes: Vec<&str> =
                    referenced.iter().map(String::as_str).filter(|c| !seq.contains(c)).collect();
                if !includes.is_empty() && includes.len() <= 8 {
                    push_unique(
                        out,
                        PhysicalStructure::Index(Index::non_clustered(
                            database, table, seq, &includes,
                        )),
                    );
                }
            }
            // a clustered candidate on the dominant range/group column
            if let Some(&c) = range_cols.first().or_else(|| group_cols.first()) {
                if interesting(&[c]) {
                    push_unique(
                        out,
                        PhysicalStructure::Index(Index::clustered(database, table, &[c])),
                    );
                }
            }
        }

        if features.partitioning {
            for &c in range_cols.iter().chain(&group_cols).chain(&join_cols) {
                if !interesting(&[c]) {
                    continue;
                }
                if let Some(boundaries) = partition_boundaries(
                    target.whatif_server(),
                    database,
                    table,
                    c,
                    DEFAULT_PARTITIONS,
                ) {
                    push_unique(
                        out,
                        PhysicalStructure::TablePartitioning {
                            database: database.to_string(),
                            table: table.to_string(),
                            scheme: RangePartitioning::new(c, boundaries),
                        },
                    );
                }
            }
        }
    }

    // view candidate: the whole query's join + grouping, when clean
    if features.views && sel.residuals.is_empty() && sel.cross_residuals == 0 {
        if let Some(view) = view_candidate(sel) {
            if view.is_well_formed() {
                push_unique(out, PhysicalStructure::View(view));
            }
        }
    }
}

/// Build the exact-match view for a select, if representable.
fn view_candidate(sel: &BoundSelect) -> Option<MaterializedView> {
    // binding → table must be unique (no self joins)
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    for t in &sel.tables {
        if seen.insert(t.table.as_str(), ()).is_some() {
            return None;
        }
    }
    let qc = |binding: &str, column: &str| -> Option<QualifiedColumn> {
        sel.table_of(binding).map(|t| QualifiedColumn::new(t, column))
    };
    let tables: Vec<&str> = sel.tables.iter().map(|t| t.table.as_str()).collect();
    let mut join_pairs = Vec::new();
    for j in &sel.joins {
        join_pairs.push(JoinPair::new(
            qc(&j.left.binding, &j.left.column)?,
            qc(&j.right.binding, &j.right.column)?,
        ));
    }

    if sel.is_aggregate() {
        // group by the query's grouping plus every filtered column, so the
        // view can be filtered at query time
        let mut group_by: Vec<QualifiedColumn> = Vec::new();
        for g in &sel.group_by {
            group_by.push(qc(&g.binding, &g.column)?);
        }
        for s in &sel.sargs {
            group_by.push(qc(&s.column.binding, &s.column.column)?);
        }
        group_by.sort();
        group_by.dedup();
        if group_by.len() > 6 {
            return None; // too fine-grained to be worth materializing
        }
        let mut aggregates = vec![ViewAggregate::count_star()];
        for a in &sel.aggregates {
            if a.distinct {
                return None;
            }
            match &a.arg_expr {
                Some(e) => {
                    // canonical table-qualified argument text; views cannot
                    // capture what cannot be canonicalized
                    let (text, cols) = dta_optimizer::query::canonical_agg_arg(sel, e)?;
                    let arg_columns = cols
                        .iter()
                        .map(|bc| qc(&bc.binding, &bc.column))
                        .collect::<Option<Vec<_>>>()?;
                    aggregates.push(ViewAggregate::expr(a.func, text, arg_columns));
                }
                None => aggregates.push(ViewAggregate::count_star()),
            }
        }
        Some(MaterializedView::grouped(&sel.database, &tables, join_pairs, group_by, aggregates))
    } else if tables.len() >= 2 {
        // join view projecting everything the query touches
        let mut projected = Vec::new();
        for (binding, cols) in &sel.referenced {
            for c in cols {
                projected.push(qc(binding, c)?);
            }
        }
        if projected.len() > 10 {
            return None;
        }
        Some(MaterializedView::join_view(&sel.database, &tables, join_pairs, projected))
    } else {
        None
    }
}

/// What per-query selection decided for one workload item. Public so a
/// [`crate::SessionCheckpoint`] can persist the completed prefix and a
/// resumed session can replay it verbatim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ItemSelection {
    /// Structures generated for the item (pre-selection).
    pub generated: usize,
    /// Greedy evaluations the item's selection performed.
    pub evaluations: usize,
    /// The item's best configuration — its candidate contributions.
    pub chosen: Vec<PhysicalStructure>,
    /// Benefit apportioned to each chosen structure.
    pub benefit: f64,
}

/// Outcome of a budget-aware candidate-selection run: per-item results
/// in workload order, cut short when the budget ran out.
#[derive(Debug, Clone)]
pub struct SelectionRun {
    /// Completed per-item selections (a workload prefix when interrupted).
    pub selections: Vec<ItemSelection>,
    /// `Some` when the budget or a cancellation cut the stage short.
    pub interrupted: Option<StopReason>,
}

/// Items per budget block: the budget is charged (and checked) serially
/// at block boundaries, so a given budget cuts selection at the same
/// item at any worker count.
pub const SELECTION_BLOCK: usize = 8;

/// Run candidate selection over all items, costing through the shared
/// session-wide evaluator.
///
/// Items are processed in [`SELECTION_BLOCK`]-sized blocks. Within a
/// block the per-item work fans out over `options.parallel_workers`
/// threads (every thread prices through the same shared cache); at each
/// block boundary the block's work — one unit per item plus its greedy
/// evaluations, all deterministic — is charged against `control`'s
/// budget serially. Interruption therefore only happens between blocks,
/// and the same budget cuts at the same item regardless of thread count.
///
/// A worker that panics on an item is isolated: the panic is caught, the
/// item degrades to an empty selection (as if it generated no
/// candidates), the restart is recorded on `control`, and the session
/// continues. Serial and parallel runs treat a panicking item
/// identically, so recommendations stay byte-identical.
///
/// `done` carries a resumed session's completed prefix (empty for a
/// fresh run); per-item outcomes are collected and assembled in workload
/// order afterwards, so per-structure benefits accumulate in exactly the
/// serial order — floating-point sums (and hence everything downstream
/// that sorts on them) are bit-identical at any worker count.
pub fn select_candidates_resumable(
    eval: &CostEvaluator<'_>,
    base: &Configuration,
    groups: &ColumnGroups,
    options: &TuningOptions,
    control: &SessionControl,
    mut done: Vec<ItemSelection>,
) -> SelectionRun {
    let items = eval.items();
    done.truncate(items.len());
    let workers = options.parallel_workers.max(1);
    while done.len() < items.len() {
        if let Some(reason) = control.stop() {
            return SelectionRun { selections: done, interrupted: Some(reason) };
        }
        let start = done.len();
        let end = (start + SELECTION_BLOCK).min(items.len());
        let n = end - start;
        let block: Vec<ItemSelection> = if workers <= 1 || n < 2 {
            (start..end)
                .map(|i| select_item_guarded(eval, i, base, groups, options, control))
                .collect()
        } else {
            let w = workers.min(n);
            let mut slots: Vec<Option<ItemSelection>> = vec![None; n];
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..w)
                    .map(|t| {
                        // dta-lint: allow(R4): candidate selection is a
                        // sanctioned fan-out site (block-internal).
                        scope.spawn(move || {
                            let mut part = Vec::new();
                            for j in (t..n).step_by(w) {
                                part.push((
                                    j,
                                    select_item_guarded(
                                        eval,
                                        start + j,
                                        base,
                                        groups,
                                        options,
                                        control,
                                    ),
                                ));
                            }
                            part
                        })
                    })
                    .collect();
                for h in handles {
                    // per-item panics are caught inside the worker, so a
                    // thread-level Err is out-of-band; its items are
                    // rescued serially below
                    if let Ok(part) = h.join() {
                        for (j, sel) in part {
                            slots[j] = Some(sel);
                        }
                    }
                }
            });
            slots
                .into_iter()
                .enumerate()
                .map(|(j, slot)| {
                    slot.unwrap_or_else(|| {
                        control.note_worker_restart();
                        select_item_guarded(eval, start + j, base, groups, options, control)
                    })
                })
                .collect()
        };
        // serial coordination point: charge the block's (deterministic)
        // work — one unit per item plus its greedy evaluations
        let units: u64 = block.iter().map(|s| 1 + s.evaluations as u64).sum();
        control.charge(units);
        done.extend(block);
    }
    SelectionRun { selections: done, interrupted: None }
}

/// Assemble per-item selections into a [`CandidatePool`], in workload
/// order (deterministic regardless of which thread produced each item).
pub fn assemble_pool(selections: &[ItemSelection]) -> CandidatePool {
    let mut pool = CandidatePool::default();
    for sel in selections {
        pool.generated += sel.generated;
        pool.evaluations += sel.evaluations;
        for s in &sel.chosen {
            pool.add(s.clone(), sel.benefit);
        }
    }
    pool
}

/// Convenience wrapper: run selection to completion (or `control`'s
/// cut) and assemble the pool, tallying this stage's cache misses.
pub fn select_candidates(
    eval: &CostEvaluator<'_>,
    base: &Configuration,
    groups: &ColumnGroups,
    options: &TuningOptions,
    control: &SessionControl,
) -> CandidatePool {
    let whatif_before = eval.whatif_calls();
    let run = select_candidates_resumable(eval, base, groups, options, control, Vec::new());
    let mut pool = assemble_pool(&run.selections);
    pool.whatif_calls = eval.whatif_calls() - whatif_before;
    pool
}

/// One item's selection with panic isolation. The evaluations inside
/// [`select_item`] are already individually guarded (base cost here,
/// greedy evaluations in `par_min`), so this outer net only catches
/// panics in the glue around them: the whole item is re-run once (the
/// cache keeps the rerun cheap) and a second panic degrades the item to
/// an empty selection instead of tearing the session down.
fn select_item_guarded(
    eval: &CostEvaluator<'_>,
    i: usize,
    base: &Configuration,
    groups: &ColumnGroups,
    options: &TuningOptions,
    control: &SessionControl,
) -> ItemSelection {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let attempt =
        || catch_unwind(AssertUnwindSafe(|| select_item(eval, i, base, groups, options, control)));
    match attempt() {
        Ok(sel) => sel,
        Err(_) => {
            control.note_worker_restart();
            attempt().unwrap_or_default()
        }
    }
}

fn select_item(
    eval: &CostEvaluator<'_>,
    i: usize,
    base: &Configuration,
    groups: &ColumnGroups,
    options: &TuningOptions,
    control: &SessionControl,
) -> ItemSelection {
    let item = &eval.items()[i];
    let mut sel = ItemSelection::default();
    let generated = generate_for_item(eval.target(), groups, options, item);
    sel.generated = generated.len();
    if generated.is_empty() {
        return sel;
    }
    let base_cost = match crate::control::isolated(control, || eval.item_cost(i, base)) {
        Some(Ok(c)) => c,
        _ => return sel,
    };
    let eval_fn = |set: &[&PhysicalStructure]| -> Option<f64> {
        let mut cfg = base.clone();
        for s in set {
            cfg.add((*s).clone());
        }
        eval.item_cost(i, &cfg).ok()
    };
    // each item's greedy search runs serially (workers = 1); the
    // session-level fan-out is across the block's items. The budget is
    // charged at block boundaries, so mid-item the only stop is a cancel.
    let stop = || control.is_cancelled();
    let outcome =
        greedy_mk(&generated, base_cost, options.greedy_m, options.greedy_k, 1, &eval_fn, &stop);
    sel.evaluations = outcome.evaluations;
    if !outcome.chosen.is_empty() {
        sel.benefit =
            (base_cost - outcome.cost).max(0.0) * item.weight / outcome.chosen.len() as f64;
        sel.chosen = outcome.chosen;
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colgroups::interesting_column_groups;
    use dta_catalog::{Column, ColumnType, Database, Table};
    use dta_sql::parse_statement;
    use dta_stats::StatKey;

    fn server() -> Server {
        let mut s = Server::new("s");
        let mut db = Database::new("d");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("pad", ColumnType::Str(60)),
            ],
        ))
        .expect("fresh table");
        db.add_table(Table::new(
            "u",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
        ))
        .expect("fresh table");
        s.create_database(db).expect("fresh database");
        for i in 0..20_000i64 {
            s.table_data_mut("d", "t").expect("table exists").push_row(vec![
                Value::Int(i % 500),
                Value::Int(i),
                Value::Int(i % 10),
                Value::Str(format!("pad{i:057}")),
            ]);
        }
        for i in 0..2_000i64 {
            s.table_data_mut("d", "u")
                .expect("table exists")
                .push_row(vec![Value::Int(i % 500), Value::Int(i)]);
        }
        s
    }

    fn items() -> Vec<WorkloadItem> {
        [
            "SELECT pad FROM t WHERE a = 7",
            "SELECT g, COUNT(*) FROM t WHERE a BETWEEN 5 AND 50 GROUP BY g",
            "SELECT v FROM t, u WHERE t.a = u.k AND b < 100",
        ]
        .iter()
        .map(|sql| WorkloadItem::new("d", parse_statement(sql).expect("valid SQL")))
        .collect()
    }

    fn groups_for(server: &Server, items: &[WorkloadItem]) -> ColumnGroups {
        let costs = vec![100.0; items.len()];
        interesting_column_groups(server.catalog(), items, &costs, 0.01)
    }

    #[test]
    fn generation_produces_relevant_structures() {
        let s = server();
        s.create_statistics(&[StatKey::new("d", "t", &["a"])]);
        let target = TuningTarget::Single(&s);
        let its = items();
        let groups = groups_for(&s, &its);
        let opts = TuningOptions::default();

        let g0 = generate_for_item(&target, &groups, &opts, &its[0]);
        assert!(
            g0.iter()
                .any(|st| matches!(st, PhysicalStructure::Index(ix) if ix.key_columns == ["a"])),
            "{g0:?}"
        );
        // covering variant includes pad
        assert!(g0.iter().any(|st| matches!(st, PhysicalStructure::Index(ix)
            if ix.key_columns == ["a"] && ix.included_columns.contains(&"pad".to_string()))));

        let g1 = generate_for_item(&target, &groups, &opts, &its[1]);
        assert!(
            g1.iter().any(|st| matches!(st, PhysicalStructure::View(_))),
            "aggregate query should yield a view candidate: {g1:?}"
        );
        assert!(
            g1.iter().any(|st| matches!(st, PhysicalStructure::TablePartitioning { .. })),
            "range predicate should yield partitioning (stats exist): {g1:?}"
        );
        assert!(g1.iter().any(|st| matches!(st, PhysicalStructure::Index(ix)
            if ix.kind == dta_physical::IndexKind::Clustered)));

        let g2 = generate_for_item(&target, &groups, &opts, &its[2]);
        assert!(g2.iter().any(|st| matches!(st, PhysicalStructure::Index(ix)
            if ix.table == "u" && ix.key_columns == ["k"])));
    }

    #[test]
    fn feature_set_respected() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let its = items();
        let groups = groups_for(&s, &its);
        let opts = TuningOptions::default().with_features(crate::FeatureSet::indexes_only());
        for it in &its {
            for st in generate_for_item(&target, &groups, &opts, it) {
                assert!(matches!(st, PhysicalStructure::Index(_)), "{st:?}");
            }
        }
    }

    #[test]
    fn selection_picks_beneficial_structures() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let its = items();
        let groups = groups_for(&s, &its);
        let opts = TuningOptions { parallel_workers: 1, ..Default::default() };
        let eval = CostEvaluator::new(&target, &its);
        let pool = select_candidates(
            &eval,
            &Configuration::new(),
            &groups,
            &opts,
            &SessionControl::unlimited(),
        );
        assert!(!pool.candidates.is_empty());
        assert!(pool.evaluations > 0);
        for c in &pool.candidates {
            assert!(c.benefit >= 0.0);
            assert!(c.selected_by >= 1);
        }
        // the point query's index should be among the winners
        assert!(pool.candidates.iter().any(
            |c| matches!(&c.structure, PhysicalStructure::Index(ix) if ix.key_columns[0] == "a")
        ));
    }

    #[test]
    fn parallel_selection_matches_serial_structures() {
        let s = server();
        let target = TuningTarget::Single(&s);
        // enough items to trigger the parallel path
        let mut its = Vec::new();
        for _ in 0..4 {
            its.extend(items());
        }
        let groups = groups_for(&s, &its);
        let eval_serial = CostEvaluator::new(&target, &its);
        let serial = select_candidates(
            &eval_serial,
            &Configuration::new(),
            &groups,
            &TuningOptions { parallel_workers: 1, ..Default::default() },
            &SessionControl::unlimited(),
        );
        let eval_parallel = CostEvaluator::new(&target, &its);
        let parallel = select_candidates(
            &eval_parallel,
            &Configuration::new(),
            &groups,
            &TuningOptions { parallel_workers: 4, ..Default::default() },
            &SessionControl::unlimited(),
        );
        // not just the same structures: the same order, benefits (to the
        // bit), selection counts, and cache-miss counts
        assert_eq!(serial.candidates.len(), parallel.candidates.len());
        for (a, b) in serial.candidates.iter().zip(&parallel.candidates) {
            assert_eq!(a.structure, b.structure);
            assert_eq!(a.benefit.to_bits(), b.benefit.to_bits(), "{}", a.structure.name());
            assert_eq!(a.selected_by, b.selected_by);
        }
        assert_eq!(serial.generated, parallel.generated);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.whatif_calls, parallel.whatif_calls);
    }

    #[test]
    fn budgeted_selection_cuts_deterministically_and_resumes() {
        let s = server();
        let target = TuningTarget::Single(&s);
        // several blocks' worth of items
        let mut its = Vec::new();
        for _ in 0..6 {
            its.extend(items());
        }
        let groups = groups_for(&s, &its);
        let base = Configuration::new();

        // the uninterrupted run, and the total work it charges
        let eval = CostEvaluator::new(&target, &its);
        let unlimited = SessionControl::unlimited();
        let opts1 = TuningOptions { parallel_workers: 1, ..Default::default() };
        let full =
            select_candidates_resumable(&eval, &base, &groups, &opts1, &unlimited, Vec::new());
        assert!(full.interrupted.is_none());
        let total = unlimited.consumed();
        assert!(total > 0);

        // a mid-stage budget cuts at a block boundary — at the same item
        // and with the same ledger at any worker count
        let cut_at = |workers: usize| {
            let eval = CostEvaluator::new(&target, &its);
            let control = SessionControl::with_budget(total / 2);
            let opts = TuningOptions { parallel_workers: workers, ..Default::default() };
            let run =
                select_candidates_resumable(&eval, &base, &groups, &opts, &control, Vec::new());
            (run, control.consumed())
        };
        let (serial, consumed_serial) = cut_at(1);
        let (parallel, consumed_parallel) = cut_at(4);
        assert_eq!(serial.interrupted, Some(StopReason::BudgetExhausted));
        assert_eq!(serial.selections, parallel.selections);
        assert_eq!(consumed_serial, consumed_parallel);
        assert!(serial.selections.len() < its.len(), "the cut is mid-stage");
        assert_eq!(serial.selections.len() % SELECTION_BLOCK, 0, "cuts on block boundaries");

        // resuming the prefix with fresh budget reproduces the full run
        let eval = CostEvaluator::new(&target, &its);
        let control = SessionControl::resumed(consumed_serial, None);
        let opts4 = TuningOptions { parallel_workers: 4, ..Default::default() };
        let resumed = select_candidates_resumable(
            &eval,
            &base,
            &groups,
            &opts4,
            &control,
            serial.selections.clone(),
        );
        assert!(resumed.interrupted.is_none());
        assert_eq!(resumed.selections, full.selections);
        assert_eq!(control.consumed(), total, "the resumed ledger lands on the same total");

        // assembly is a pure fold: identical pools either way
        let a = assemble_pool(&full.selections);
        let b = assemble_pool(&resumed.selections);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (x, y) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(x.structure, y.structure);
            assert_eq!(x.benefit.to_bits(), y.benefit.to_bits());
        }
    }

    #[test]
    fn zero_budget_selects_nothing_but_does_not_fail() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let its = items();
        let groups = groups_for(&s, &its);
        let eval = CostEvaluator::new(&target, &its);
        let control = SessionControl::with_budget(0);
        let run = select_candidates_resumable(
            &eval,
            &Configuration::new(),
            &groups,
            &TuningOptions::default(),
            &control,
            Vec::new(),
        );
        assert_eq!(run.interrupted, Some(StopReason::BudgetExhausted));
        assert!(run.selections.is_empty());
        assert_eq!(eval.whatif_calls(), 0, "no budget, no server work");
    }

    #[test]
    fn update_statements_yield_locator_indexes() {
        let s = server();
        let target = TuningTarget::Single(&s);
        let item = WorkloadItem::new(
            "d",
            parse_statement("UPDATE t SET g = 1 WHERE b = 55").expect("valid SQL"),
        );
        let groups = groups_for(&s, std::slice::from_ref(&item));
        let gs = generate_for_item(&target, &groups, &TuningOptions::default(), &item);
        assert!(gs
            .iter()
            .any(|st| matches!(st, PhysicalStructure::Index(ix) if ix.key_columns == ["b"])));
    }
}
