//! Sanitizer-lite: debug-build invariant checks for the cost layer.
//!
//! `dta-lint` enforces the *static* discipline behind PR 1's
//! byte-identical-recommendation guarantee; this module is its runtime
//! twin. Every check is gated on [`ENABLED`] (a `debug_assertions`
//! constant), so `cargo test` exercises them on every run while
//! `--release` folds each call to nothing — verified by the
//! `compiles_away_in_release` test, which observes the same constant
//! the branches fold on.
//!
//! What the cost layer asserts (see `crate::cost`):
//!
//! * **fingerprint collisions** — the what-if cache is keyed by a 64-bit
//!   order-independent fingerprint of the projected configuration. A
//!   collision would silently price one configuration with another's
//!   cost and corrupt the search ranking. Debug builds store a second,
//!   independently-combined fingerprint per entry and re-derive it on
//!   every hit;
//! * **cost sanity** — optimizer estimates are finite and non-negative
//!   (§2.2: costs are optimizer-estimated execution costs). NaN in
//!   particular would make `det::improves` silently never adopt;
//! * **monotonic accumulation** — workload cost is a weighted sum with
//!   non-negative weights, so every partial sum is ≥ its predecessor;
//! * **shard-count consistency** — the cache has exactly one shard per
//!   workload statement; an index permutation would cross-pollute
//!   per-statement caches.

/// `true` in debug builds, `false` in `--release`.
///
/// Checks are written `if ENABLED { assert!(…) }`, so release builds
/// constant-fold the whole call away — no branch, no formatting code.
pub const ENABLED: bool = cfg!(debug_assertions);

#[cold]
#[inline(never)]
fn violation(what: &str, detail: &str) -> ! {
    // dta-lint: allow(R7): the debug-build sanitizer exists to crash
    // loudly on corrupted internal state; release builds compile every
    // caller away, so this panic can never escape a production tune().
    panic!("dta invariant violated [{what}]: {detail}");
}

/// A what-if cost must be finite and non-negative.
#[inline(always)]
pub fn check_cost(cost: f64, context: &str) {
    if ENABLED && !(cost.is_finite() && cost >= 0.0) {
        violation("cost-sanity", &format!("{context}: cost = {cost}"));
    }
}

/// Weighted accumulation with non-negative weights never decreases.
#[inline(always)]
pub fn check_monotonic_sum(previous: f64, next: f64, context: &str) {
    // `!(next >= previous)`, not `next < previous`: a NaN partial sum
    // must trip the check, and NaN fails every comparison
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if ENABLED && !(next >= previous) {
        violation(
            "monotonic-sum",
            &format!("{context}: partial sum fell from {previous} to {next}"),
        );
    }
}

/// A cache hit's secondary fingerprint must match the one stored when
/// the entry was created — otherwise two distinct projected
/// configurations collided on the primary 64-bit key.
#[inline(always)]
pub fn check_fingerprint(stored: u64, recomputed: u64, statement: usize) {
    if ENABLED && stored != recomputed {
        violation(
            "fingerprint-collision",
            &format!(
                "statement {statement}: cache hit for a different projected \
                 configuration (stored {stored:#018x}, recomputed {recomputed:#018x})"
            ),
        );
    }
}

/// The cache must hold exactly one shard per workload statement, and
/// every lookup must stay in range.
#[inline(always)]
pub fn check_shards(shards: usize, statements: usize, index: usize) {
    if ENABLED && (shards != statements || index >= shards) {
        violation(
            "shard-consistency",
            &format!("{shards} shards for {statements} statements, lookup at {index}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole sanitizer pivots on one constant; whichever profile
    /// this test runs under, the constant must equal the profile's
    /// `debug_assertions` — i.e. `cargo test --release` observes the
    /// checks compiled away, `cargo test` observes them armed.
    #[test]
    fn compiles_away_in_release() {
        assert_eq!(ENABLED, cfg!(debug_assertions));
    }

    #[test]
    fn sane_values_pass_in_any_profile() {
        check_cost(0.0, "zero");
        check_cost(123.45, "plain");
        check_monotonic_sum(1.0, 1.0, "flat");
        check_monotonic_sum(1.0, 2.0, "rising");
        check_fingerprint(42, 42, 0);
        check_shards(3, 3, 2);
    }

    #[cfg(debug_assertions)]
    mod armed {
        use super::*;

        #[test]
        #[should_panic(expected = "cost-sanity")]
        fn nan_cost_trips() {
            check_cost(f64::NAN, "poisoned");
        }

        #[test]
        #[should_panic(expected = "cost-sanity")]
        fn negative_cost_trips() {
            check_cost(-1.0, "negative");
        }

        #[test]
        #[should_panic(expected = "monotonic-sum")]
        fn decreasing_sum_trips() {
            check_monotonic_sum(2.0, 1.0, "fell");
        }

        #[test]
        #[should_panic(expected = "fingerprint-collision")]
        fn collision_trips() {
            check_fingerprint(1, 2, 7);
        }

        #[test]
        #[should_panic(expected = "shard-consistency")]
        fn shard_mismatch_trips() {
            check_shards(2, 3, 0);
        }

        #[test]
        #[should_panic(expected = "shard-consistency")]
        fn out_of_range_lookup_trips() {
            check_shards(3, 3, 3);
        }
    }
}
