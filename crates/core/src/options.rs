//! Tuning options — the DBA-facing knobs of §2.1.

use dta_physical::Configuration;
use dta_workload::CompressionOptions;

/// Which physical design features DTA may recommend (§2.1 "Feature set
/// to tune"; §3 "DTA allows DBAs to choose only a subset").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    pub indexes: bool,
    pub views: bool,
    pub partitioning: bool,
}

impl FeatureSet {
    /// Everything (the integrated recommendation).
    pub fn all() -> Self {
        Self { indexes: true, views: true, partitioning: true }
    }

    /// Indexes only (e.g. an OLTP DBA excluding views, §2.1).
    pub fn indexes_only() -> Self {
        Self { indexes: true, views: false, partitioning: false }
    }

    /// Indexes and views — what ITW for SQL Server 2000 supported (§7.6).
    pub fn indexes_and_views() -> Self {
        Self { indexes: true, views: true, partitioning: false }
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        Self::all()
    }
}

/// How alignment candidates are introduced during enumeration (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentMode {
    /// No alignment requirement.
    None,
    /// Alignment required; aligned variants of structures are created
    /// lazily as the greedy front needs them (the paper's technique).
    Lazy,
    /// Alignment required; every (structure × partitioning) variant is
    /// added to the candidate pool up front (the unscalable strawman the
    /// paper's lazy technique improves on — kept for the ablation).
    Eager,
}

impl AlignmentMode {
    /// Whether alignment is required at all.
    pub fn required(self) -> bool {
        !matches!(self, AlignmentMode::None)
    }
}

/// All tuning knobs.
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Feature set to tune.
    pub features: FeatureSet,
    /// Optional bound on the total storage of the recommendation,
    /// in bytes (§2.1).
    pub storage_bytes: Option<u64>,
    /// Optional bound on tuning work, counted in configuration
    /// evaluations (time-bound tuning, §2.1). Deterministic by
    /// construction: the same budget cuts the search at the same point
    /// on every run and at any thread count, so budget-bounded
    /// recommendations are byte-identical and resumable (see DESIGN.md
    /// §9, "Robustness architecture").
    pub work_budget_units: Option<u64>,
    /// Alignment constraint (§4).
    pub alignment: AlignmentMode,
    /// A user-specified partial configuration that must be contained in
    /// the recommendation (§6.2).
    pub user_specified: Option<Configuration>,
    /// Compress the workload before tuning (§5.1).
    pub compress: bool,
    /// Compression knobs.
    pub compression: CompressionOptions,
    /// Use reduced statistics creation (§5.2).
    pub reduce_statistics: bool,
    /// Column-group restriction threshold: groups relevant to less than
    /// this fraction of the workload cost are pruned (§2.2).
    pub colgroup_cost_threshold: f64,
    /// Greedy(m, k) parameters for per-query candidate selection.
    pub greedy_m: usize,
    pub greedy_k: usize,
    /// Cap on candidate structures generated per query.
    pub max_candidates_per_query: usize,
    /// Worker threads for candidate selection and enumeration. `1`
    /// disables threading; any value produces byte-identical
    /// recommendations (see DESIGN.md, "Concurrency architecture").
    pub parallel_workers: usize,
}

impl Default for TuningOptions {
    fn default() -> Self {
        Self {
            features: FeatureSet::all(),
            storage_bytes: None,
            work_budget_units: None,
            alignment: AlignmentMode::None,
            user_specified: None,
            compress: true,
            compression: CompressionOptions::default(),
            reduce_statistics: true,
            colgroup_cost_threshold: 0.02,
            greedy_m: 2,
            greedy_k: 8,
            max_candidates_per_query: 14,
            parallel_workers: 4,
        }
    }
}

impl TuningOptions {
    /// Convenience: options with a storage bound.
    pub fn with_storage_mb(mut self, mb: u64) -> Self {
        self.storage_bytes = Some(mb << 20);
        self
    }

    /// Convenience: restrict the feature set.
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Convenience: require aligned partitioning.
    pub fn with_alignment(mut self) -> Self {
        self.alignment = AlignmentMode::Lazy;
        self
    }

    /// Convenience: bound tuning work (anytime tuning, §2.1).
    pub fn with_work_budget(mut self, units: u64) -> Self {
        self.work_budget_units = Some(units);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_integrated() {
        let o = TuningOptions::default();
        assert!(o.features.indexes && o.features.views && o.features.partitioning);
        assert!(o.compress);
        assert!(o.reduce_statistics);
        assert_eq!(o.alignment, AlignmentMode::None);
    }

    #[test]
    fn builders() {
        let o = TuningOptions::default()
            .with_storage_mb(100)
            .with_features(FeatureSet::indexes_only())
            .with_alignment();
        assert_eq!(o.storage_bytes, Some(100 << 20));
        assert!(!o.features.views);
        assert!(o.alignment.required());
    }
}
