//! Tuning results and analysis reports (§6.3).

use crate::checkpoint::SessionCheckpoint;
use crate::control::Completion;
use crate::obs::ObserverSummary;
use dta_physical::Configuration;
use std::fmt;

/// The outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The recommended physical design (constraint-enforcing structures
    /// and any user-specified configuration included).
    pub recommendation: Configuration,
    /// Workload cost (tuned workload) under the base configuration.
    pub base_cost: f64,
    /// Workload cost under the recommendation.
    pub recommended_cost: f64,
    /// Statements actually tuned (after compression).
    pub statements_tuned: usize,
    /// Statements in the input workload.
    pub total_statements: usize,
    /// Total events (sum of weights) in the input workload.
    pub total_events: f64,
    /// What-if optimizer calls issued (cache misses).
    pub whatif_calls: usize,
    /// Greedy evaluations across candidate selection and enumeration.
    pub evaluations: usize,
    /// Structures generated during candidate generation.
    pub candidates_generated: usize,
    /// Structures surviving per-query candidate selection (+ merging).
    pub candidates_selected: usize,
    /// Enumeration pool size (after any eager alignment expansion).
    pub pool_size: usize,
    /// Aligned variants synthesized lazily (§4).
    pub lazy_variants: usize,
    /// Statistics requested / actually created (§5.2).
    pub stats_requested: usize,
    pub stats_created: usize,
    /// Work units spent creating statistics (on the data server).
    pub stats_work_units: f64,
    /// Total tuning overhead in work units on the what-if server.
    pub tuning_work_units: f64,
    /// Incremental storage of the recommendation, in bytes.
    pub storage_bytes: u64,
    /// How the session ended: ran to convergence, budget exhausted, or
    /// cancelled. Even the early endings return a valid, storage-bound,
    /// never-worse-than-raw configuration (anytime tuning).
    pub completion: Completion,
    /// Parallel workers that panicked and had their slice re-run
    /// serially (panic isolation; 0 in a healthy session).
    pub worker_restarts: usize,
    /// Transient server faults absorbed by bounded retry.
    pub whatif_retries: usize,
    /// Deterministic backoff units accounted across those retries.
    pub retry_backoff_units: u64,
    /// Statements degraded to their pre-statistics cost by permanent
    /// faults (their what-if calls kept failing; the session continued
    /// without them instead of aborting).
    pub degraded_statements: Vec<String>,
    /// Session checkpoint for [`crate::tune_resume`], present only when
    /// the budget ran out (`Completion::BudgetExhausted`).
    pub checkpoint: Option<Box<SessionCheckpoint>>,
    /// Aggregated observer trace (stage spans, counters, per-shard cache
    /// statistics), present when the session ran under a recording
    /// observer ([`crate::tune_with_observer`]). Wall times inside are
    /// report-only; every other field is deterministic.
    pub observer: Option<ObserverSummary>,
}

impl TuningResult {
    /// Expected improvement as a fraction of the base cost.
    pub fn expected_improvement(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        (1.0 - self.recommended_cost / self.base_cost).max(0.0)
    }
}

impl fmt::Display for TuningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DTA recommendation")?;
        writeln!(
            f,
            "  expected improvement: {:.1}% (cost {:.1} -> {:.1})",
            self.expected_improvement() * 100.0,
            self.base_cost,
            self.recommended_cost
        )?;
        writeln!(
            f,
            "  tuned {} of {} statements ({} events); {} what-if calls; {} evaluations",
            self.statements_tuned,
            self.total_statements,
            self.total_events,
            self.whatif_calls,
            self.evaluations
        )?;
        writeln!(
            f,
            "  candidates: {} generated, {} selected, pool {} (lazy aligned variants: {})",
            self.candidates_generated, self.candidates_selected, self.pool_size, self.lazy_variants
        )?;
        writeln!(
            f,
            "  statistics: {} requested, {} created ({:.1} work units)",
            self.stats_requested, self.stats_created, self.stats_work_units
        )?;
        writeln!(f, "  storage: {:.1} MB", self.storage_bytes as f64 / (1 << 20) as f64)?;
        if self.completion != Completion::Complete {
            writeln!(f, "  completion: {} (best-so-far recommendation)", self.completion)?;
        }
        if self.worker_restarts > 0 {
            writeln!(f, "  worker restarts (panic isolation): {}", self.worker_restarts)?;
        }
        if self.whatif_retries > 0 {
            writeln!(
                f,
                "  transient faults retried: {} ({} backoff units)",
                self.whatif_retries, self.retry_backoff_units
            )?;
        }
        if !self.degraded_statements.is_empty() {
            writeln!(f, "  degraded statements (permanent faults):")?;
            for s in &self.degraded_statements {
                writeln!(f, "    {}", truncate(s, 80))?;
            }
        }
        write!(f, "{}", self.recommendation)
    }
}

/// Per-statement entry of an evaluation report.
#[derive(Debug, Clone)]
pub struct StatementReport {
    pub database: String,
    pub sql: String,
    pub weight: f64,
    pub current_cost: f64,
    pub proposed_cost: f64,
    /// Structures the proposed plan uses.
    pub used_structures: Vec<String>,
    /// What-if optimizer calls issued for this statement (including
    /// retried attempts).
    pub whatif_calls: usize,
    /// Transient faults absorbed by retry while pricing this statement.
    pub retries: usize,
    /// Whether a permanent fault degraded this statement to its
    /// fallback cost.
    pub degraded: bool,
}

impl StatementReport {
    /// Percentage change for this statement (negative = cheaper).
    pub fn change_percent(&self) -> f64 {
        if self.current_cost <= 0.0 {
            return 0.0;
        }
        (self.proposed_cost / self.current_cost - 1.0) * 100.0
    }
}

/// Exploratory / what-if analysis output (§6.3): the expected percentage
/// change in workload cost for a user-proposed configuration, plus
/// per-statement detail and structure usage.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    pub statements: Vec<StatementReport>,
    pub current_total: f64,
    pub proposed_total: f64,
}

impl EvaluationReport {
    /// "Expected percentage change in the workload cost compared to the
    /// existing configuration" — negative means improvement.
    pub fn change_percent(&self) -> f64 {
        if self.current_total <= 0.0 {
            return 0.0;
        }
        (self.proposed_total / self.current_total - 1.0) * 100.0
    }

    /// Usage counts: structure name → number of statements using it.
    pub fn structure_usage(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for s in &self.statements {
            for name in &s.used_structures {
                *counts.entry(name.clone()).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

impl fmt::Display for EvaluationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Evaluation: workload cost {:.1} -> {:.1} ({:+.1}%)",
            self.current_total,
            self.proposed_total,
            self.change_percent()
        )?;
        for s in &self.statements {
            let mut marks = String::new();
            if s.retries > 0 {
                marks.push_str(&format!(" [retried x{}]", s.retries));
            }
            if s.degraded {
                marks.push_str(" [degraded]");
            }
            writeln!(
                f,
                "  [{:+7.1}%] w={:<6} {}{marks}",
                s.change_percent(),
                s.weight,
                truncate(&s.sql, 80)
            )?;
        }
        let usage = self.structure_usage();
        if !usage.is_empty() {
            writeln!(f, "  structure usage:")?;
            for (name, count) in usage {
                writeln!(f, "    {count:>4} x {name}")?;
            }
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> TuningResult {
        TuningResult {
            recommendation: Configuration::new(),
            base_cost: 200.0,
            recommended_cost: 50.0,
            statements_tuned: 5,
            total_statements: 50,
            total_events: 50.0,
            whatif_calls: 123,
            evaluations: 456,
            candidates_generated: 40,
            candidates_selected: 12,
            pool_size: 15,
            lazy_variants: 3,
            stats_requested: 10,
            stats_created: 4,
            stats_work_units: 77.0,
            tuning_work_units: 999.0,
            storage_bytes: 10 << 20,
            completion: Completion::Complete,
            worker_restarts: 0,
            whatif_retries: 0,
            retry_backoff_units: 0,
            degraded_statements: Vec::new(),
            checkpoint: None,
            observer: None,
        }
    }

    #[test]
    fn improvement_math() {
        let r = result();
        assert!((r.expected_improvement() - 0.75).abs() < 1e-9);
        let mut r2 = result();
        r2.recommended_cost = 300.0;
        assert_eq!(r2.expected_improvement(), 0.0, "never negative");
        r2.base_cost = 0.0;
        assert_eq!(r2.expected_improvement(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let text = result().to_string();
        assert!(text.contains("75.0%"));
        assert!(text.contains("what-if"));
        assert!(text.contains("10.0 MB"));
    }

    #[test]
    fn display_reports_robustness_events() {
        use crate::control::Stage;
        let mut r = result();
        r.completion = Completion::BudgetExhausted { stage: Stage::Enumeration };
        r.worker_restarts = 1;
        r.whatif_retries = 3;
        r.retry_backoff_units = 7;
        r.degraded_statements = vec!["SELECT broken FROM t".to_string()];
        let text = r.to_string();
        assert!(text.contains("budget exhausted during enumeration"), "{text}");
        assert!(text.contains("worker restarts"), "{text}");
        assert!(text.contains("transient faults retried: 3 (7 backoff units)"), "{text}");
        assert!(text.contains("SELECT broken FROM t"), "{text}");
        // a clean run stays quiet about all of it
        let clean = result().to_string();
        assert!(!clean.contains("completion:"), "{clean}");
        assert!(!clean.contains("restarts"), "{clean}");
    }

    #[test]
    fn evaluation_report_math() {
        let rep = EvaluationReport {
            statements: vec![
                StatementReport {
                    database: "d".into(),
                    sql: "SELECT 1".into(),
                    weight: 1.0,
                    current_cost: 100.0,
                    proposed_cost: 40.0,
                    used_structures: vec!["idx_t_a".into()],
                    whatif_calls: 2,
                    retries: 0,
                    degraded: false,
                },
                StatementReport {
                    database: "d".into(),
                    sql: "SELECT 2".into(),
                    weight: 1.0,
                    current_cost: 100.0,
                    proposed_cost: 120.0,
                    used_structures: vec!["idx_t_a".into(), "mv_x".into()],
                    whatif_calls: 5,
                    retries: 3,
                    degraded: true,
                },
            ],
            current_total: 200.0,
            proposed_total: 160.0,
        };
        assert!((rep.change_percent() + 20.0).abs() < 1e-9);
        assert!((rep.statements[0].change_percent() + 60.0).abs() < 1e-9);
        let usage = rep.structure_usage();
        assert_eq!(usage, vec![("idx_t_a".to_string(), 2), ("mv_x".to_string(), 1)]);
        let text = rep.to_string();
        assert!(text.contains("-20.0%"));
        assert!(text.contains("[retried x3]"), "{text}");
        assert!(text.contains("[degraded]"), "{text}");
    }
}
