//! Enumeration (§2.2, §4): pick the final configuration from the
//! candidate pool with Greedy(m, k), honoring the storage bound, the
//! user-specified configuration, and the alignment constraint.
//!
//! Alignment (§4) is enforced by *rewriting* every evaluated
//! configuration so that each table and all of its indexes share one
//! partitioning. In [`crate::options::AlignmentMode::Lazy`] mode, the
//! partitioned index variants this requires are synthesized on demand —
//! the paper's lazy technique. [`crate::options::AlignmentMode::Eager`]
//! instead cross-products the pool with every candidate partitioning up
//! front (the unscalable baseline kept for the ablation).

use crate::candidates::Candidate;
use crate::control::{SessionControl, StopReason};
use crate::cost::CostEvaluator;
use crate::greedy::{greedy_mk_observed, GreedySnapshot};
use crate::obs::{SessionObserver, NOOP};
use crate::options::{AlignmentMode, TuningOptions};
use dta_physical::{Configuration, PhysicalStructure, RangePartitioning, SizingInfo};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The outcome of enumeration.
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// Final configuration (base structures included).
    pub configuration: Configuration,
    /// Workload cost under it.
    pub cost: f64,
    /// Greedy evaluations performed.
    pub evaluations: usize,
    /// Size of the pool enumeration ran over (after any eager expansion).
    pub pool_size: usize,
    /// Aligned variants synthesized lazily during evaluation.
    pub lazy_variants: usize,
}

/// Enumeration progress captured in a checkpoint: the greedy cursor plus
/// the lazy-variant tally at the cut (the pool ordering and any eager
/// expansion are recomputed deterministically from the candidate pool).
#[derive(Debug, Clone, PartialEq)]
pub struct EnumerationResume {
    /// The interrupted Greedy(m, k) state.
    pub snapshot: GreedySnapshot,
    /// Lazy aligned variants synthesized before the cut.
    pub lazy_variants: usize,
}

/// The outcome of a budget-aware enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationRun {
    /// Best configuration found, whether or not the run completed.
    pub result: EnumerationResult,
    /// `Some` when the budget or a cancellation cut the search short.
    pub interrupted: Option<(StopReason, EnumerationResume)>,
}

/// Rewrite `config` so every table is aligned: each table's indexes take
/// on the table's effective partitioning (or lose theirs if the table is
/// unpartitioned). Returns the number of structures rewritten.
pub fn align_configuration(config: &Configuration) -> (Configuration, usize) {
    // table → target partitioning. Precedence: a clustered index pins the
    // table's partitioning (even "unpartitioned"); else an explicit heap
    // partitioning; else the first partitioned index's scheme (in which
    // case the heap must be partitioned too).
    let mut target: BTreeMap<(String, String), Option<RangePartitioning>> = BTreeMap::new();
    let mut add_heap_partitioning: Vec<(String, String, RangePartitioning)> = Vec::new();
    let mut tables: Vec<(String, String)> = config
        .iter()
        .filter_map(|s| s.table().map(|t| (s.database().to_string(), t.to_string())))
        .collect();
    tables.sort();
    tables.dedup();
    let mut rewritten = 0usize;
    for (db, t) in tables {
        let want = if let Some(ci) = config.clustered_index(&db, &t) {
            ci.partitioning.clone()
        } else if let Some(p) = config.table_partitioning(&db, &t) {
            Some(p.clone())
        } else if let Some(p) = config.indexes_on(&db, &t).find_map(|ix| ix.partitioning.clone()) {
            // the heap itself must adopt this partitioning for the table
            // to count as aligned — a lazily introduced structure
            add_heap_partitioning.push((db.clone(), t.clone(), p.clone()));
            rewritten += 1;
            Some(p)
        } else {
            None
        };
        target.insert((db, t), want);
    }

    let mut out = Configuration::new();
    for s in config.iter() {
        match s {
            PhysicalStructure::Index(ix) => {
                let want = target.get(&(ix.database.clone(), ix.table.clone())).cloned().flatten();
                if ix.partitioning != want {
                    let mut v = ix.clone();
                    v.partitioning = want;
                    rewritten += 1;
                    out.add(PhysicalStructure::Index(v));
                } else {
                    out.add(s.clone());
                }
            }
            PhysicalStructure::TablePartitioning { database, table, scheme } => {
                // a heap partitioning is meaningless (and misaligned) when a
                // clustered index pins a different scheme
                let want = target.get(&(database.clone(), table.clone())).cloned().flatten();
                match want {
                    Some(w) if w == *scheme => {
                        out.add(s.clone());
                    }
                    _ => {
                        rewritten += 1;
                        if let Some(w) = want {
                            out.add(PhysicalStructure::TablePartitioning {
                                database: database.clone(),
                                table: table.clone(),
                                scheme: w,
                            });
                        }
                        // dropped entirely when the table must be unpartitioned
                    }
                }
            }
            _ => {
                out.add(s.clone());
            }
        }
    }
    for (database, table, scheme) in add_heap_partitioning {
        out.add(PhysicalStructure::TablePartitioning { database, table, scheme });
    }
    (out, rewritten)
}

/// Expand a pool eagerly with every (index × partitioning) variant — the
/// §4 strawman.
pub fn eager_alignment_expansion(pool: &[PhysicalStructure]) -> Vec<PhysicalStructure> {
    let mut schemes: BTreeMap<(String, String), Vec<RangePartitioning>> = BTreeMap::new();
    for s in pool {
        let (db, table, scheme) = match s {
            PhysicalStructure::TablePartitioning { database, table, scheme } => {
                (database.clone(), table.clone(), scheme.clone())
            }
            PhysicalStructure::Index(ix) => match &ix.partitioning {
                Some(p) => (ix.database.clone(), ix.table.clone(), p.clone()),
                None => continue,
            },
            _ => continue,
        };
        let entry = schemes.entry((db, table)).or_default();
        if !entry.contains(&scheme) {
            entry.push(scheme);
        }
    }
    let mut out: Vec<PhysicalStructure> = pool.to_vec();
    for s in pool {
        if let PhysicalStructure::Index(ix) = s {
            if let Some(ps) = schemes.get(&(ix.database.clone(), ix.table.clone())) {
                for p in ps {
                    let mut v = ix.clone();
                    v.partitioning = Some(p.clone());
                    let v = PhysicalStructure::Index(v);
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }
    out
}

/// Run enumeration.
///
/// Greedy evaluations fan out over `options.parallel_workers` threads
/// through the shared evaluator; results are identical at any worker
/// count (see [`crate::greedy`]). Each evaluation charges one unit of
/// `control`'s budget; on exhaustion the run returns best-so-far plus an
/// [`EnumerationResume`] cursor, and a later call passing that cursor
/// (with the same pool and a warmed cache) continues to the
/// byte-identical uninterrupted answer.
#[allow(clippy::too_many_arguments)]
pub fn enumerate(
    eval: &CostEvaluator<'_>,
    base: &Configuration,
    pool: &[Candidate],
    sizing: &dyn SizingInfo,
    options: &TuningOptions,
    control: &SessionControl,
    resume: Option<EnumerationResume>,
) -> EnumerationRun {
    enumerate_observed(eval, base, pool, sizing, options, control, resume, &NOOP)
}

/// [`enumerate`] with an attached [`SessionObserver`]: the inner
/// Greedy(m, k) run reports its two phases as spans. Instrumentation
/// only — the search and its outcome are byte-identical to [`enumerate`].
#[allow(clippy::too_many_arguments)]
pub fn enumerate_observed(
    eval: &CostEvaluator<'_>,
    base: &Configuration,
    pool: &[Candidate],
    sizing: &dyn SizingInfo,
    options: &TuningOptions,
    control: &SessionControl,
    resume: Option<EnumerationResume>,
    obs: &dyn SessionObserver,
) -> EnumerationRun {
    // order candidates by observed benefit (helps greedy find good seeds
    // early when the time budget cuts the search short)
    let mut ordered: Vec<&Candidate> = pool.iter().collect();
    ordered.sort_by(|a, b| b.benefit.total_cmp(&a.benefit));
    let mut structures: Vec<PhysicalStructure> =
        ordered.iter().map(|c| c.structure.clone()).collect();

    if options.alignment == AlignmentMode::Eager {
        structures = eager_alignment_expansion(&structures);
    }

    let base_bytes = base.total_bytes(sizing);
    let (lazy_seed, snapshot) = match resume {
        Some(r) => (r.lazy_variants, Some(r.snapshot)),
        None => (0, None),
    };
    let lazy_variants = AtomicUsize::new(lazy_seed);

    let assemble = |set: &[&PhysicalStructure]| -> Option<Configuration> {
        let mut cfg = base.clone();
        for s in set {
            cfg.add((*s).clone());
        }
        if options.alignment.required() {
            let (aligned, n) = align_configuration(&cfg);
            // dta-lint: allow(R6): monotonic telemetry counter; read only
            // after greedy_mk has joined every worker.
            lazy_variants.fetch_add(n, Ordering::Relaxed);
            cfg = aligned;
        }
        // structural feasibility: at most one clustering/partitioning per
        // table; cheap local checks (full catalog validation happened on
        // the user-specified part already)
        let mut tables: Vec<(String, String)> = cfg
            .iter()
            .filter_map(|s| s.table().map(|t| (s.database().to_string(), t.to_string())))
            .collect();
        tables.sort();
        tables.dedup();
        for (db, t) in &tables {
            if cfg
                .indexes_on(db, t)
                .filter(|i| i.kind == dta_physical::IndexKind::Clustered)
                .count()
                > 1
            {
                return None;
            }
            let parts = cfg
                .iter()
                .filter(|s| {
                    matches!(s, PhysicalStructure::TablePartitioning { database, table, .. }
                        if database == db && table == t)
                })
                .count();
            if parts > 1 {
                return None;
            }
        }
        if let Some(bound) = options.storage_bytes {
            let added = cfg.total_bytes(sizing).saturating_sub(base_bytes);
            if added > bound {
                return None;
            }
        }
        Some(cfg)
    };

    let base_cost = crate::control::isolated(control, || eval.workload_cost(base))
        .and_then(|r| r.ok())
        .unwrap_or(f64::INFINITY);
    let eval_fn = |set: &[&PhysicalStructure]| -> Option<f64> {
        let cfg = assemble(set)?;
        eval.workload_cost(&cfg).ok()
    };
    let k = structures.len();
    let run = greedy_mk_observed(
        &structures,
        base_cost,
        options.greedy_m,
        k,
        options.parallel_workers,
        &eval_fn,
        control,
        snapshot,
        obs,
    );

    // snapshot the tally at the cut BEFORE assembling the best-so-far
    // configuration below: the final assembly's rewrites must not leak
    // into the resume cursor, or a resumed run would double-count them
    // dta-lint: allow(R6): all workers joined inside the greedy engine;
    // this read races with nothing.
    let lazy_at_cut = lazy_variants.load(Ordering::Relaxed);
    let final_refs: Vec<&PhysicalStructure> = run.outcome.chosen.iter().collect();
    let configuration = assemble(&final_refs).unwrap_or_else(|| base.clone());
    EnumerationRun {
        result: EnumerationResult {
            configuration,
            cost: run.outcome.cost,
            evaluations: run.outcome.evaluations,
            pool_size: structures.len(),
            lazy_variants: lazy_at_cut,
        },
        interrupted: run.interrupted.map(|(reason, snapshot)| {
            (reason, EnumerationResume { snapshot, lazy_variants: lazy_at_cut })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::Value;
    use dta_physical::Index;

    fn part(col: &str) -> RangePartitioning {
        RangePartitioning::new(col, vec![Value::Int(100), Value::Int(200)])
    }

    #[test]
    fn align_rewrites_indexes_to_table_partitioning() {
        let cfg = Configuration::from_structures([
            PhysicalStructure::TablePartitioning {
                database: "d".into(),
                table: "t".into(),
                scheme: part("x"),
            },
            PhysicalStructure::Index(Index::non_clustered("d", "t", &["a"], &[])),
            PhysicalStructure::Index(
                Index::non_clustered("d", "t", &["b"], &[]).partitioned(part("y")),
            ),
        ]);
        assert!(!cfg.is_aligned());
        let (aligned, rewritten) = align_configuration(&cfg);
        assert!(aligned.is_aligned(), "{aligned}");
        assert_eq!(rewritten, 2);
    }

    #[test]
    fn align_strips_partitioning_when_table_unpartitioned_by_clustered() {
        // clustered index unpartitioned → table unpartitioned → secondary
        // index must lose its partitioning
        let cfg = Configuration::from_structures([
            PhysicalStructure::Index(Index::clustered("d", "t", &["k"])),
            PhysicalStructure::Index(
                Index::non_clustered("d", "t", &["a"], &[]).partitioned(part("a")),
            ),
        ]);
        let (aligned, rewritten) = align_configuration(&cfg);
        assert!(aligned.is_aligned());
        assert_eq!(rewritten, 1);
        assert!(aligned.indexes_on("d", "t").all(|ix| ix.partitioning.is_none()));
    }

    #[test]
    fn align_adopts_index_partitioning_when_no_table_partitioning() {
        let cfg = Configuration::from_structures([
            PhysicalStructure::Index(
                Index::non_clustered("d", "t", &["a"], &[]).partitioned(part("a")),
            ),
            PhysicalStructure::Index(Index::non_clustered("d", "t", &["b"], &[])),
        ]);
        let (aligned, _) = align_configuration(&cfg);
        assert!(aligned.is_aligned());
        // both indexes end up partitioned the same way
        let parts: Vec<_> =
            aligned.indexes_on("d", "t").map(|ix| ix.partitioning.clone()).collect();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], parts[1]);
        assert!(parts[0].is_some());
    }

    #[test]
    fn eager_expansion_cross_products() {
        let pool = vec![
            PhysicalStructure::TablePartitioning {
                database: "d".into(),
                table: "t".into(),
                scheme: part("x"),
            },
            PhysicalStructure::Index(Index::non_clustered("d", "t", &["a"], &[])),
            PhysicalStructure::Index(Index::non_clustered("d", "t", &["b"], &[])),
        ];
        let expanded = eager_alignment_expansion(&pool);
        // original 3 + 2 partitioned index variants
        assert_eq!(expanded.len(), 5);
    }
}
