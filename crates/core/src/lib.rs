//! The Database Tuning Advisor — the paper's primary contribution.
//!
//! Pipeline (Figure 1):
//!
//! ```text
//! workload ──► compression (§5.1)
//!          ──► column-group restriction (§2.2, frequent itemsets)
//!          ──► reduced statistics creation (§5.2, via the server layer)
//!          ──► candidate selection (per query, Greedy(m,k), §2.2)
//!          ──► merging (indexes, views, partitioned variants, §2.2)
//!          ──► enumeration (Greedy(m,k), storage bound, lazy alignment, §2.2/§4)
//!          ──► recommendation + analysis reports (§6.3)
//! ```
//!
//! Every cost consulted anywhere in the pipeline is an optimizer
//! estimate obtained through what-if calls on the tuning target (§2.2
//! "DTA's Cost Model"), so the recommendation is exactly what the
//! optimizer would use if implemented.

pub mod candidates;
pub mod checkpoint;
pub mod colgroups;
pub mod control;
pub mod cost;
pub mod det;
pub mod enumeration;
pub mod greedy;
pub mod invariants;
pub mod merging;
pub mod obs;
pub mod options;
pub mod report;
pub mod session;

pub use checkpoint::{SessionCheckpoint, StatsProgress};
pub use control::{CancelHandle, Completion, SessionControl, Stage, StopReason};
pub use obs::{
    Counter, CounterSet, NoopObserver, ObserverSummary, RecordingObserver, SessionObserver,
    ShardSnapshot, SpanName,
};
pub use options::{AlignmentMode, FeatureSet, TuningOptions};
pub use report::{EvaluationReport, StatementReport, TuningResult};
pub use session::{
    evaluate_configuration, tune, tune_resume, tune_with_control, tune_with_observer,
    workload_cost, TuneError,
};
