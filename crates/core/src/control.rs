//! Session control: deterministic work budgets and cooperative
//! cancellation (the anytime-tuning layer).
//!
//! The paper's DTA is explicitly interruptible — §2.1 lets the DBA bound
//! tuning time, and a production advisor must hand back its best-so-far
//! recommendation whenever asked. Wall-clock deadlines would make runs
//! irreproducible, so the budget here is counted in *work units*: one
//! unit is one configuration evaluation (a Greedy(m, k) `eval` call or a
//! pre-costing item). Units are granted and charged only at serial
//! coordination points — never from inside worker threads — so a given
//! budget always cuts the search at exactly the same place regardless of
//! thread count or interleaving. Same budget ⇒ byte-identical result.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::obs::{Counter, CounterSet};

/// Why a stage stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The deterministic work budget ran out.
    BudgetExhausted,
    /// The session's cancel flag was raised.
    Cancelled,
}

/// Pipeline stages, in execution order (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Per-statement base-configuration costing before column groups.
    PreCosting,
    /// §2.2 column-group restriction.
    ColumnGroups,
    /// §5.2 statistics creation.
    Statistics,
    /// §2.2 per-query candidate selection.
    CandidateSelection,
    /// §2.2 candidate merging.
    Merging,
    /// §2.2/§4 enumeration.
    Enumeration,
}

impl Stage {
    /// Stable identifier used by the XML checkpoint schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::PreCosting => "preCosting",
            Stage::ColumnGroups => "columnGroups",
            Stage::Statistics => "statistics",
            Stage::CandidateSelection => "candidateSelection",
            Stage::Merging => "merging",
            Stage::Enumeration => "enumeration",
        }
    }

    /// Inverse of [`Stage::as_str`]; `None` for unknown identifiers.
    pub fn parse(s: &str) -> Option<Stage> {
        Some(match s {
            "preCosting" => Stage::PreCosting,
            "columnGroups" => Stage::ColumnGroups,
            "statistics" => Stage::Statistics,
            "candidateSelection" => Stage::CandidateSelection,
            "merging" => Stage::Merging,
            "enumeration" => Stage::Enumeration,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a tuning session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The pipeline ran to convergence.
    Complete,
    /// The work budget ran out in `stage`; the result is the best
    /// configuration found up to that point (valid, storage-bounded,
    /// never worse than the raw configuration).
    BudgetExhausted {
        /// Stage that was in progress when the budget ran out.
        stage: Stage,
    },
    /// The session was cancelled in `stage`; best-so-far, as above.
    Cancelled {
        /// Stage that was in progress when the cancel flag was seen.
        stage: Stage,
    },
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::BudgetExhausted { stage } => {
                write!(f, "budget exhausted during {stage}")
            }
            Completion::Cancelled { stage } => write!(f, "cancelled during {stage}"),
        }
    }
}

/// Cloneable handle that lets another thread (a DBA console, a signal
/// handler) request cooperative cancellation of a running session.
#[derive(Clone)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Raise the cancel flag; the session stops at its next poll point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Per-session control block: the work budget, the cancel flag, and the
/// session's deterministic counter set (panic rescues, budget ledger
/// telemetry — see [`crate::obs::CounterSet`]).
pub struct SessionControl {
    budget: Option<u64>,
    consumed: AtomicU64,
    cancel: Arc<AtomicBool>,
    counters: Arc<CounterSet>,
}

impl SessionControl {
    /// No budget: the session runs to convergence unless cancelled.
    pub fn unlimited() -> Self {
        SessionControl {
            budget: None,
            consumed: AtomicU64::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(CounterSet::new()),
        }
    }

    /// A deterministic budget of `units` configuration evaluations.
    pub fn with_budget(units: u64) -> Self {
        SessionControl { budget: Some(units), ..SessionControl::unlimited() }
    }

    /// Rebuild control state for a resumed session: the checkpoint's
    /// consumed units plus `extra` fresh units of budget.
    pub fn resumed(consumed: u64, extra: Option<u64>) -> Self {
        SessionControl {
            budget: extra.map(|e| consumed.saturating_add(e)),
            consumed: AtomicU64::new(consumed),
            cancel: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(CounterSet::new()),
        }
    }

    /// The session's shared counter set — the single source of truth
    /// for deterministic telemetry ([`crate::obs::Counter`]).
    pub fn counters(&self) -> &Arc<CounterSet> {
        &self.counters
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Units consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::SeqCst)
    }

    /// A handle for requesting cancellation from another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle(Arc::clone(&self.cancel))
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Unconditionally consume `units` (serial coordination points only;
    /// overshoot past the budget is recorded, not prevented).
    pub fn charge(&self, units: u64) {
        self.consumed.fetch_add(units, Ordering::SeqCst);
        self.counters.add(Counter::BudgetCharged, units);
    }

    /// Grant up to `want` units against the remaining budget and consume
    /// the grant. Returns the number granted (`want` when unbudgeted,
    /// `0` when exhausted or cancelled). Must only be called from serial
    /// coordination points — the load/add pair is not atomic against a
    /// concurrent granter, and budget determinism depends on a single
    /// canonical grant order.
    pub fn grant(&self, want: u64) -> u64 {
        if self.is_cancelled() {
            return 0;
        }
        match self.budget {
            None => {
                // unbudgeted grants still feed the ledger, so an
                // unlimited run reports how much work a budget would need
                self.consumed.fetch_add(want, Ordering::SeqCst);
                self.counters.add(Counter::BudgetGranted, want);
                want
            }
            Some(b) => {
                let used = self.consumed.load(Ordering::SeqCst);
                let granted = want.min(b.saturating_sub(used));
                self.consumed.fetch_add(granted, Ordering::SeqCst);
                self.counters.add(Counter::BudgetGranted, granted);
                granted
            }
        }
    }

    /// Poll point: should the current stage stop, and why? Cancellation
    /// wins over budget exhaustion when both hold.
    pub fn stop(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        match self.budget {
            Some(b) if self.consumed.load(Ordering::SeqCst) >= b => {
                Some(StopReason::BudgetExhausted)
            }
            _ => None,
        }
    }

    /// Record that a parallel worker panicked and its slice was re-run
    /// serially (panic-isolation telemetry, the `PanicRescues` counter).
    pub fn note_worker_restart(&self) {
        self.counters.add(Counter::PanicRescues, 1);
    }

    /// Number of worker restarts recorded so far.
    pub fn worker_restarts(&self) -> usize {
        self.counters.get(Counter::PanicRescues) as usize
    }
}

impl Default for SessionControl {
    fn default() -> Self {
        SessionControl::unlimited()
    }
}

/// Upper bound on panic retries for a single evaluation. Transient
/// panics (e.g. injected what-if faults) fire once per call site, and a
/// workload-level evaluation touches one site per statement, so each
/// retry clears at least one site and any evaluation over at most this
/// many statements converges to its no-fault result. An evaluation that
/// still panics after the bound is treated as infeasible — degradation,
/// never a hang and never an escaped panic.
pub(crate) const MAX_PANIC_RETRIES: usize = 64;

/// Run one evaluation under panic isolation: each panic is caught,
/// reported through `note_restart`, and the evaluation re-issued, up to
/// [`MAX_PANIC_RETRIES`] times. `None` means the evaluation never came
/// back clean and the caller should degrade gracefully instead of
/// tearing the session down.
pub(crate) fn isolated_with<R>(note_restart: &dyn Fn(), f: impl Fn() -> R) -> Option<R> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    for _ in 0..=MAX_PANIC_RETRIES {
        if let Ok(r) = catch_unwind(AssertUnwindSafe(&f)) {
            return Some(r);
        }
        note_restart();
    }
    None
}

/// [`isolated_with`] reporting restarts straight into the session's
/// panic-isolation telemetry.
pub(crate) fn isolated<R>(control: &SessionControl, f: impl Fn() -> R) -> Option<R> {
    isolated_with(&|| control.note_worker_restart(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let c = SessionControl::unlimited();
        assert_eq!(c.stop(), None);
        assert_eq!(c.grant(1000), 1000);
        c.charge(1_000_000);
        assert_eq!(c.stop(), None);
    }

    #[test]
    fn budget_grants_prefix_then_exhausts() {
        let c = SessionControl::with_budget(10);
        assert_eq!(c.grant(6), 6);
        assert_eq!(c.stop(), None);
        assert_eq!(c.grant(6), 4, "only the remainder is granted");
        assert_eq!(c.stop(), Some(StopReason::BudgetExhausted));
        assert_eq!(c.grant(1), 0);
        assert_eq!(c.consumed(), 10);
    }

    #[test]
    fn zero_budget_stops_immediately() {
        let c = SessionControl::with_budget(0);
        assert_eq!(c.grant(5), 0);
        assert_eq!(c.stop(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn cancellation_beats_budget_and_blocks_grants() {
        let c = SessionControl::with_budget(100);
        c.charge(200);
        let h = c.cancel_handle();
        h.cancel();
        assert!(h.is_cancelled());
        assert_eq!(c.stop(), Some(StopReason::Cancelled));
        assert_eq!(c.grant(1), 0);
    }

    #[test]
    fn resumed_control_continues_the_ledger() {
        let c = SessionControl::resumed(7, Some(3));
        assert_eq!(c.consumed(), 7);
        assert_eq!(c.budget(), Some(10));
        assert_eq!(c.grant(5), 3);
        assert_eq!(c.stop(), Some(StopReason::BudgetExhausted));
        let unlimited = SessionControl::resumed(7, None);
        assert_eq!(unlimited.grant(5), 5);
    }

    #[test]
    fn worker_restart_telemetry() {
        let c = SessionControl::unlimited();
        c.note_worker_restart();
        c.note_worker_restart();
        assert_eq!(c.worker_restarts(), 2);
        assert_eq!(c.counters().get(Counter::PanicRescues), 2);
    }

    #[test]
    fn budget_ledger_feeds_counters() {
        let c = SessionControl::with_budget(10);
        c.charge(2);
        assert_eq!(c.grant(6), 6);
        assert_eq!(c.counters().get(Counter::BudgetCharged), 2);
        assert_eq!(c.counters().get(Counter::BudgetGranted), 6);
    }

    #[test]
    fn stage_strings_roundtrip() {
        for s in [
            Stage::PreCosting,
            Stage::ColumnGroups,
            Stage::Statistics,
            Stage::CandidateSelection,
            Stage::Merging,
            Stage::Enumeration,
        ] {
            assert_eq!(Stage::parse(s.as_str()), Some(s));
        }
        assert_eq!(Stage::parse("warpDrive"), None);
    }

    #[test]
    fn completion_display() {
        assert_eq!(Completion::Complete.to_string(), "complete");
        assert_eq!(
            Completion::BudgetExhausted { stage: Stage::Enumeration }.to_string(),
            "budget exhausted during enumeration"
        );
        assert_eq!(
            Completion::Cancelled { stage: Stage::PreCosting }.to_string(),
            "cancelled during preCosting"
        );
    }
}
