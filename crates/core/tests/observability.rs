//! Acceptance tests for the session observability layer (DESIGN.md §10):
//!
//! * **inertness** — attaching a `RecordingObserver` must not change the
//!   recommendation by a byte relative to the `NoopObserver` default;
//! * **counter determinism** — observer counters (and the digest built
//!   from them) are byte-identical across reruns and across
//!   `parallel_workers` counts; wall times are quarantined outside the
//!   digest;
//! * **per-statement telemetry** — `evaluate_configuration` surfaces the
//!   per-statement what-if call and retry history, so a `FaultPolicy`
//!   run's report shows which statements rode out faults.

use dta_catalog::{Column, ColumnType, Database, Table, Value};
use dta_core::{
    evaluate_configuration, tune, tune_with_observer, Counter, RecordingObserver, TuningOptions,
};
use dta_server::{FaultPolicy, Server, TuningTarget};
use dta_sql::parse_statement;
use dta_workload::{Workload, WorkloadItem};

fn make_server() -> Server {
    let mut server = Server::new("prod");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("m", ColumnType::Int),
                Column::new("val", ColumnType::Float),
                Column::new("pad", ColumnType::Str(60)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "dim",
            vec![Column::new("dk", ColumnType::Int), Column::new("dname", ColumnType::Str(20))],
        )
        .with_primary_key(&["dk"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    {
        let t = server.table_data_mut("d", "fact").unwrap();
        for i in 0..20_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Int(i % 25),
                Value::Int(i % 12),
                Value::Float((i % 997) as f64),
                Value::Str(format!("{:=<60}", i)),
            ]);
        }
        t.set_scale(30.0);
    }
    {
        let t = server.table_data_mut("d", "dim").unwrap();
        for i in 0..800i64 {
            t.push_row(vec![Value::Int(i), Value::Str(format!("dim{i}"))]);
        }
    }
    server
}

fn sel(sql: &str) -> WorkloadItem {
    WorkloadItem::new("d", parse_statement(sql).unwrap())
}

fn read_workload() -> Workload {
    let mut items = Vec::new();
    for i in 0..10 {
        items.push(sel(&format!("SELECT pad FROM fact WHERE a = {}", i * 13 % 800)));
    }
    for i in 0..6 {
        items.push(sel(&format!(
            "SELECT g, COUNT(*), SUM(val) FROM fact WHERE m = {} GROUP BY g",
            i % 12
        )));
    }
    for i in 0..4 {
        items.push(sel(&format!(
            "SELECT dname FROM fact, dim WHERE fact.a = dim.dk AND fact.k = {}",
            i * 100
        )));
    }
    Workload::from_items(items)
}

fn options(workers: usize) -> TuningOptions {
    TuningOptions { parallel_workers: workers, compress: false, ..Default::default() }
}

#[test]
fn recording_observer_is_byte_inert_and_traces_every_stage() {
    let workload = read_workload();

    // tune() runs under the NoopObserver; the same session under a
    // RecordingObserver must produce the byte-identical recommendation.
    // Each run gets a fresh server — tuning warms statistics on the
    // target, so reusing one server changes the second run's inputs.
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let plain = tune(&target, &workload, &options(2)).expect("plain run tunes");
    assert!(plain.observer.is_none(), "no summary without a recording observer");

    let server = make_server();
    let target = TuningTarget::Single(&server);
    let obs = RecordingObserver::new();
    let traced = tune_with_observer(&target, &workload, &options(2), &obs).expect("traced run");
    assert_eq!(plain.recommendation.to_string(), traced.recommendation.to_string());
    assert_eq!(plain.recommended_cost.to_bits(), traced.recommended_cost.to_bits());
    assert_eq!(plain.base_cost.to_bits(), traced.base_cost.to_bits());
    assert_eq!(plain.whatif_calls, traced.whatif_calls);
    assert_eq!(plain.evaluations, traced.evaluations);

    // the trace covers every Figure-1 stage, hierarchically
    let summary = traced.observer.as_ref().expect("recording observer yields a summary");
    let paths: Vec<&str> = summary.spans.iter().map(|s| s.path.as_str()).collect();
    for expected in [
        "preCosting",
        "columnGroups",
        "statistics",
        "candidateSelection",
        "merging",
        "enumeration",
        "enumeration/greedyPhase1",
        "enumeration/greedyPhase2",
        "epilogue",
    ] {
        assert!(paths.contains(&expected), "missing span {expected} in {paths:?}");
    }
    // and the counters agree with the report's own deterministic fields
    assert_eq!(summary.counter(Counter::WhatIfCalls) as usize, traced.whatif_calls);
    assert!(summary.counter(Counter::PeakPoolSize) as usize >= traced.pool_size);
    assert!(summary.cache_hit_rate() > 0.0 && summary.cache_hit_rate() < 1.0);
    // what-if volume is attributed to (at least) the enumeration span
    let enumeration = summary
        .spans
        .iter()
        .find(|s| s.path == "enumeration")
        .expect("enumeration span aggregated");
    assert!(enumeration.whatif_calls > 0);
    assert!(enumeration.work_units > 0);
}

#[test]
fn counters_are_byte_identical_across_runs_and_worker_counts() {
    let workload = read_workload();
    let mut digests = Vec::new();
    let mut json_counters = Vec::new();
    for workers in [1, 4] {
        for _run in 0..2 {
            let server = make_server();
            let target = TuningTarget::Single(&server);
            let obs = RecordingObserver::new();
            let result =
                tune_with_observer(&target, &workload, &options(workers), &obs).expect("tunes");
            let summary = result.observer.expect("summary");
            digests.push(summary.deterministic_digest());
            // the counter block of the JSON export must also be stable
            let json = summary.to_json();
            let counters = json
                .split("\"spans\"")
                .next()
                .expect("counters precede spans in dta-obs/v1")
                .to_string();
            json_counters.push(counters);
        }
    }
    for d in &digests[1..] {
        assert_eq!(&digests[0], d, "digest varies across runs/worker counts: {digests:#?}");
    }
    for c in &json_counters[1..] {
        assert_eq!(&json_counters[0], c, "counter JSON varies: {json_counters:#?}");
    }
}

#[test]
fn evaluation_report_surfaces_per_statement_retry_history() {
    let workload = read_workload();
    let server = make_server();
    server.set_fault_policy(Some(FaultPolicy {
        seed: 7,
        whatif_transient_rate: 0.4,
        ..FaultPolicy::default()
    }));
    let target = TuningTarget::Single(&server);
    let current = server.raw_configuration();
    let proposed = current.clone();
    let report = evaluate_configuration(&target, &workload, &current, &proposed)
        .expect("transient faults are absorbed by retry");

    assert_eq!(report.statements.len(), workload.len());
    // every statement was priced through at least one real what-if call
    assert!(report.statements.iter().all(|s| s.whatif_calls >= 1), "{report}");
    // the schedule at rate 0.4 must have faulted someone, and the retry
    // history lands on the statement that rode it out
    let retried: Vec<&str> = report
        .statements
        .iter()
        .filter(|s| s.retries > 0)
        .map(|s| s.sql.as_str())
        .collect();
    assert!(!retried.is_empty(), "schedule injected no transient faults");
    assert!(report.statements.iter().all(|s| !s.degraded), "transient faults never degrade");
    // retried statements issue strictly more calls than their retry count
    for s in report.statements.iter().filter(|s| s.retries > 0) {
        assert!(s.whatif_calls > s.retries, "{}: {} calls, {} retries", s.sql, s.whatif_calls, s.retries);
    }
    // and the human rendering marks them
    let text = report.to_string();
    assert!(text.contains("[retried x"), "{text}");
}
