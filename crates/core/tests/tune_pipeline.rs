//! End-to-end tests of the full tuning pipeline.

use dta_catalog::{Column, ColumnType, Database, Table, Value};
use dta_core::{tune, workload_cost, AlignmentMode, FeatureSet, TuningOptions};
use dta_physical::{Configuration, Index, PhysicalStructure, RangePartitioning};
use dta_server::{Server, TuningTarget};
use dta_sql::parse_statement;
use dta_workload::{Workload, WorkloadItem};

/// A medium table with selective columns and a wide pad.
fn make_server() -> Server {
    let mut server = Server::new("prod");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("m", ColumnType::Int),
                Column::new("val", ColumnType::Float),
                Column::new("pad", ColumnType::Str(80)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "dim",
            vec![Column::new("dk", ColumnType::Int), Column::new("dname", ColumnType::Str(20))],
        )
        .with_primary_key(&["dk"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    {
        let t = server.table_data_mut("d", "fact").unwrap();
        for i in 0..60_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 2000),
                Value::Int(i % 25),
                Value::Int(i % 12),
                Value::Float((i % 997) as f64),
                Value::Str(format!("{:=<80}", i)),
            ]);
        }
        t.set_scale(50.0);
    }
    {
        let t = server.table_data_mut("d", "dim").unwrap();
        for i in 0..2000i64 {
            t.push_row(vec![Value::Int(i), Value::Str(format!("dim{i}"))]);
        }
    }
    server
}

fn sel(sql: &str) -> WorkloadItem {
    WorkloadItem::new("d", parse_statement(sql).unwrap())
}

fn read_workload() -> Workload {
    let mut items = Vec::new();
    // templatized point queries
    for i in 0..40 {
        items.push(sel(&format!("SELECT pad FROM fact WHERE a = {}", i * 13 % 2000)));
    }
    // grouped reports with a month filter
    for i in 0..20 {
        items.push(sel(&format!(
            "SELECT g, COUNT(*), SUM(val) FROM fact WHERE m = {} GROUP BY g",
            i % 12
        )));
    }
    // join lookups
    for i in 0..15 {
        items.push(sel(&format!(
            "SELECT dname FROM fact, dim WHERE fact.a = dim.dk AND fact.k = {}",
            i * 100
        )));
    }
    Workload::from_items(items)
}

#[test]
fn tuning_improves_read_workload() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    let options = TuningOptions { parallel_workers: 2, ..Default::default() };
    let result = tune(&target, &workload, &options).expect("tuning succeeds");

    assert!(
        result.expected_improvement() > 0.5,
        "expected >50%% improvement, got {:.1}%\n{result}",
        result.expected_improvement() * 100.0
    );
    assert!(!result.recommendation.difference(&server.raw_configuration()).is_empty());
    assert!(result.whatif_calls > 0);
    assert!(result.stats_created <= result.stats_requested);

    // the improvement holds on the full workload, not just internally
    let base = server.raw_configuration();
    let full_base = workload_cost(&target, &workload, &base).unwrap();
    let full_rec = workload_cost(&target, &workload, &result.recommendation).unwrap();
    assert!(full_rec < full_base * 0.6, "full-workload check: {full_rec} !< 0.6 * {full_base}");
}

#[test]
fn storage_bound_respected_and_quality_degrades_gracefully() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();

    let unbounded =
        tune(&target, &workload, &TuningOptions { parallel_workers: 1, ..Default::default() })
            .unwrap();
    let tight = tune(
        &target,
        &workload,
        &TuningOptions { parallel_workers: 1, ..Default::default() }.with_storage_mb(40),
    )
    .unwrap();

    assert!(tight.storage_bytes <= 40 << 20, "storage {} over bound", tight.storage_bytes);
    assert!(unbounded.storage_bytes >= tight.storage_bytes);
    assert!(unbounded.expected_improvement() >= tight.expected_improvement() - 1e-9);
    // even bounded, something useful gets recommended
    assert!(tight.expected_improvement() > 0.1, "{}", tight.expected_improvement());
}

#[test]
fn update_heavy_workload_gets_no_new_structures() {
    // the CUST3 effect (§7.1): when updates dominate, DTA correctly
    // recommends nothing beyond the constraint indexes
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let mut items = Vec::new();
    for i in 0..80 {
        items.push(WorkloadItem::new(
            "d",
            parse_statement(&format!("UPDATE fact SET val = {} WHERE k = {}", i, i * 31 % 60_000))
                .unwrap(),
        ));
    }
    // a couple of cheap PK lookups
    for i in 0..5 {
        items.push(sel(&format!("SELECT val FROM fact WHERE k = {}", i * 7)));
    }
    let workload = Workload::from_items(items);
    let result =
        tune(&target, &workload, &TuningOptions { parallel_workers: 1, ..Default::default() })
            .unwrap();
    let added = result.recommendation.difference(&server.raw_configuration()).len();
    assert_eq!(added, 0, "expected no new structures:\n{}", result.recommendation);
}

#[test]
fn user_specified_configuration_is_honored() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    // the DBA insists fact is partitioned by month
    let user = Configuration::from_structures([PhysicalStructure::TablePartitioning {
        database: "d".into(),
        table: "fact".into(),
        scheme: RangePartitioning::new("m", (1..12).map(Value::Int).collect()),
    }]);
    let options = TuningOptions {
        parallel_workers: 1,
        user_specified: Some(user.clone()),
        ..Default::default()
    };
    let result = tune(&target, &workload, &options).unwrap();
    for s in user.iter() {
        assert!(
            result.recommendation.contains(s),
            "user-specified structure missing:\n{}",
            result.recommendation
        );
    }
}

#[test]
fn invalid_user_configuration_rejected() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    // two clusterings on one table: the paper's own invalid example
    let user = Configuration::from_structures([
        PhysicalStructure::Index(Index::clustered("d", "fact", &["a"])),
        PhysicalStructure::Index(Index::clustered("d", "fact", &["g"])),
    ]);
    let options = TuningOptions { user_specified: Some(user), ..Default::default() };
    let err = tune(&target, &workload, &options);
    assert!(matches!(err, Err(dta_core::session::TuneError::InvalidUserConfiguration(_))));
}

#[test]
fn alignment_produces_aligned_recommendation() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    let options =
        TuningOptions { parallel_workers: 1, alignment: AlignmentMode::Lazy, ..Default::default() };
    let result = tune(&target, &workload, &options).unwrap();
    assert!(
        result.recommendation.is_aligned(),
        "recommendation not aligned:\n{}",
        result.recommendation
    );
    // alignment is a constraint: quality should be in the same ballpark
    // as unconstrained tuning (greedy search is not strictly monotone, so
    // allow wiggle in both directions)
    let free =
        tune(&target, &workload, &TuningOptions { parallel_workers: 1, ..Default::default() })
            .unwrap();
    assert!(result.expected_improvement() > 0.3);
    assert!((free.expected_improvement() - result.expected_improvement()).abs() < 0.25);
}

#[test]
fn feature_subsets_restrict_recommendation() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    let options = TuningOptions {
        parallel_workers: 1,
        features: FeatureSet::indexes_only(),
        ..Default::default()
    };
    let result = tune(&target, &workload, &options).unwrap();
    for s in result.recommendation.iter() {
        assert!(
            matches!(s, PhysicalStructure::Index(_)),
            "non-index structure recommended with indexes-only: {s:?}"
        );
    }
}

#[test]
fn compression_preserves_quality_and_cuts_work() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();

    let with = tune(
        &target,
        &workload,
        &TuningOptions { parallel_workers: 1, compress: true, ..Default::default() },
    )
    .unwrap();
    let without = tune(
        &target,
        &workload,
        &TuningOptions { parallel_workers: 1, compress: false, ..Default::default() },
    )
    .unwrap();

    assert!(with.statements_tuned < without.statements_tuned);

    // quality measured on the full workload is nearly identical
    let base = server.raw_configuration();
    let base_cost = workload_cost(&target, &workload, &base).unwrap();
    let q_with = 1.0 - workload_cost(&target, &workload, &with.recommendation).unwrap() / base_cost;
    let q_without =
        1.0 - workload_cost(&target, &workload, &without.recommendation).unwrap() / base_cost;
    assert!(
        q_without - q_with < 0.05,
        "compression lost too much quality: {q_with:.3} vs {q_without:.3}"
    );
}

#[test]
fn work_budget_limits_work() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    let unbounded =
        tune(&target, &workload, &TuningOptions { parallel_workers: 1, ..Default::default() })
            .unwrap();
    let tiny_budget =
        TuningOptions { parallel_workers: 1, work_budget_units: Some(200), ..Default::default() };
    let result = tune(&target, &workload, &tiny_budget).unwrap();
    // the budgeted run stops early: strictly less overhead than the full
    // run, and the interruption is reported
    assert!(
        result.tuning_work_units < unbounded.tuning_work_units,
        "budgeted {} !< unbounded {}",
        result.tuning_work_units,
        unbounded.tuning_work_units
    );
    assert!(
        matches!(result.completion, dta_core::Completion::BudgetExhausted { .. }),
        "{:?}",
        result.completion
    );
    assert!(result.checkpoint.is_some(), "budget-exhausted run carries a checkpoint");
}

#[test]
fn evaluate_mode_reports_changes() {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let workload = read_workload();
    let current = server.raw_configuration();
    let proposed = current.union(&Configuration::from_structures([PhysicalStructure::Index(
        Index::non_clustered("d", "fact", &["a"], &["pad"]),
    )]));
    let report = dta_core::evaluate_configuration(&target, &workload, &current, &proposed).unwrap();
    assert!(report.change_percent() < -10.0, "change {}", report.change_percent());
    assert_eq!(report.statements.len(), workload.len());
    let usage = report.structure_usage();
    assert!(usage.iter().any(|(name, n)| name.contains("idx_fact_a") && *n > 0), "{usage:?}");
}

#[test]
fn parallel_enumeration_matches_serial() {
    // the tentpole guarantee: parallel and serial tuning produce
    // byte-identical recommendations. Fresh servers per run so statistics
    // creation cannot leak state between the two.
    let workload = read_workload();
    let run = |workers: usize| {
        let server = make_server();
        let target = TuningTarget::Single(&server);
        tune(&target, &workload, &TuningOptions { parallel_workers: workers, ..Default::default() })
            .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);

    assert_eq!(
        serial.recommendation.to_string(),
        parallel.recommendation.to_string(),
        "recommendations differ between 1 and 4 workers"
    );
    assert_eq!(serial.base_cost.to_bits(), parallel.base_cost.to_bits());
    assert_eq!(
        serial.recommended_cost.to_bits(),
        parallel.recommended_cost.to_bits(),
        "costs differ: {} vs {}",
        serial.recommended_cost,
        parallel.recommended_cost
    );
    assert_eq!(serial.storage_bytes, parallel.storage_bytes);
    assert_eq!(serial.whatif_calls, parallel.whatif_calls);
    assert_eq!(serial.evaluations, parallel.evaluations);
    assert_eq!(serial.candidates_selected, parallel.candidates_selected);
}

#[test]
fn shared_cache_reduces_whatif_calls() {
    use dta_core::candidates::select_candidates;
    use dta_core::colgroups::interesting_column_groups;
    use dta_core::cost::CostEvaluator;
    use dta_core::enumeration::enumerate;
    use dta_core::merging::merge_candidates;
    use dta_core::SessionControl;
    use dta_stats::StatKey;
    use std::collections::BTreeSet;

    // compression off so the tuned items equal the workload items and the
    // replay below walks the identical pipeline
    let options = TuningOptions { parallel_workers: 1, compress: false, ..Default::default() };
    let workload = read_workload();

    // the session under test: one shared evaluator end to end
    let shared_server = make_server();
    let shared_target = TuningTarget::Single(&shared_server);
    let shared = tune(&shared_target, &workload, &options).unwrap();

    // replay of the pre-refactor layout on an identical fresh server:
    // three independent evaluators (pre-costs, selection, enumeration),
    // each with its own cold cache
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let items = &workload.items;
    let base = server.raw_configuration();

    let pre_eval = CostEvaluator::new(&target, items);
    let mut pre_costs = Vec::with_capacity(items.len());
    for i in 0..items.len() {
        pre_costs.push(pre_eval.item_cost(i, &base).unwrap());
    }
    let groups = interesting_column_groups(
        target.catalog(),
        items,
        &pre_costs,
        options.colgroup_cost_threshold,
    );
    let mut required: Vec<StatKey> = Vec::new();
    let mut table_keys: BTreeSet<(String, String)> = BTreeSet::new();
    for item in items.iter() {
        for t in item.statement.referenced_tables() {
            table_keys.insert((item.database.clone(), t.to_string()));
        }
    }
    for (db, table) in &table_keys {
        for group in groups.for_table(db, table) {
            let cols: Vec<String> = group.iter().cloned().collect();
            required.push(StatKey { database: db.clone(), table: table.clone(), columns: cols });
        }
    }
    target.ensure_statistics(&required, options.reduce_statistics);

    let sel_eval = CostEvaluator::new(&target, items);
    let mut pool =
        select_candidates(&sel_eval, &base, &groups, &options, &SessionControl::unlimited());
    merge_candidates(&mut pool);

    let enum_eval = CostEvaluator::new(&target, items);
    enum_eval.workload_cost(&base).unwrap();
    let enumeration = enumerate(
        &enum_eval,
        &base,
        &pool.candidates,
        &server,
        &options,
        &SessionControl::unlimited(),
        None,
    )
    .result;

    let seed_layout_calls =
        pre_eval.whatif_calls() + sel_eval.whatif_calls() + enum_eval.whatif_calls();

    // both pipelines make the same decisions...
    assert_eq!(shared.recommendation.to_string(), enumeration.configuration.to_string());
    // ...but the shared cache answers strictly more of the questions
    assert!(
        shared.whatif_calls < seed_layout_calls,
        "shared {} !< three-evaluator layout {}",
        shared.whatif_calls,
        seed_layout_calls
    );
}
