//! Acceptance tests for the anytime-tuning robustness layer: work-budget
//! deadlines, cooperative cancellation, fault-injected what-if calls,
//! panic isolation, and checkpoint/resume.
//!
//! The properties under test (DESIGN.md §9):
//!
//! * **anytime** — at *every* budget, `tune` returns a valid,
//!   storage-bounded configuration never worse than the raw one, with a
//!   truthful [`Completion`], and the same budget produces byte-identical
//!   output on every run and at every worker count;
//! * **resume** — a budget-exhausted session continued through its
//!   checkpoint ends byte-identical (recommendation *and* report) to an
//!   uninterrupted run;
//! * **faults** — transient server faults are absorbed by retry and the
//!   session converges to the no-fault recommendation; permanent faults
//!   degrade the affected statements instead of aborting; injected
//!   worker panics are isolated and do not change the recommendation.

use dta_catalog::{Column, ColumnType, Database, Table, Value};
use dta_core::{
    tune, tune_resume, tune_with_control, Completion, SessionControl, Stage, TuningOptions,
    TuningResult,
};
use dta_server::{FaultPolicy, Server, TuningTarget};
use dta_sql::parse_statement;
use dta_workload::{Workload, WorkloadItem};

/// A compact server: big enough that tuning finds real winners, small
/// enough that a sweep of full sessions stays fast.
fn make_server() -> Server {
    let mut server = Server::new("prod");
    let mut db = Database::new("d");
    db.add_table(
        Table::new(
            "fact",
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("g", ColumnType::Int),
                Column::new("m", ColumnType::Int),
                Column::new("val", ColumnType::Float),
                Column::new("pad", ColumnType::Str(60)),
            ],
        )
        .with_primary_key(&["k"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "dim",
            vec![Column::new("dk", ColumnType::Int), Column::new("dname", ColumnType::Str(20))],
        )
        .with_primary_key(&["dk"]),
    )
    .unwrap();
    server.create_database(db).unwrap();
    {
        let t = server.table_data_mut("d", "fact").unwrap();
        for i in 0..20_000i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Int(i % 25),
                Value::Int(i % 12),
                Value::Float((i % 997) as f64),
                Value::Str(format!("{:=<60}", i)),
            ]);
        }
        t.set_scale(30.0);
    }
    {
        let t = server.table_data_mut("d", "dim").unwrap();
        for i in 0..800i64 {
            t.push_row(vec![Value::Int(i), Value::Str(format!("dim{i}"))]);
        }
    }
    server
}

fn sel(sql: &str) -> WorkloadItem {
    WorkloadItem::new("d", parse_statement(sql).unwrap())
}

fn read_workload() -> Workload {
    let mut items = Vec::new();
    for i in 0..12 {
        items.push(sel(&format!("SELECT pad FROM fact WHERE a = {}", i * 13 % 800)));
    }
    for i in 0..8 {
        items.push(sel(&format!(
            "SELECT g, COUNT(*), SUM(val) FROM fact WHERE m = {} GROUP BY g",
            i % 12
        )));
    }
    for i in 0..6 {
        items.push(sel(&format!(
            "SELECT dname FROM fact, dim WHERE fact.a = dim.dk AND fact.k = {}",
            i * 100
        )));
    }
    Workload::from_items(items)
}

const STORAGE_MB: u64 = 60;

fn options(workers: usize) -> TuningOptions {
    // compression off: with it, the 26-statement fixture shrinks to a
    // handful of representatives and the whole selection stage becomes a
    // single budget block — the sweep needs stage-level granularity
    TuningOptions { parallel_workers: workers, compress: false, ..Default::default() }
        .with_storage_mb(STORAGE_MB)
}

fn budgeted(workers: usize, budget: u64) -> TuningOptions {
    TuningOptions { work_budget_units: Some(budget), ..options(workers) }
}

/// The anytime invariant every run must satisfy, whatever the cut.
fn assert_anytime(result: &TuningResult, server: &Server, label: &str) {
    let errors = result.recommendation.validate(server.catalog());
    assert!(errors.is_empty(), "{label}: invalid recommendation: {errors:?}");
    assert!(
        result.storage_bytes <= STORAGE_MB << 20,
        "{label}: storage {} over the {STORAGE_MB} MB bound",
        result.storage_bytes
    );
    assert!(
        result.recommended_cost <= result.base_cost,
        "{label}: recommendation worse than raw: {} > {}",
        result.recommended_cost,
        result.base_cost
    );
    assert!(result.expected_improvement() >= 0.0, "{label}");
}

/// Total work units an uninterrupted session consumes — the yardstick
/// for picking budgets that cut mid-stage.
fn total_units(workload: &Workload) -> u64 {
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let control = SessionControl::unlimited();
    tune_with_control(&target, workload, &options(1), &control).unwrap();
    control.consumed()
}

#[test]
fn anytime_budget_sweep_returns_valid_best_so_far() {
    let workload = read_workload();
    let total = total_units(&workload);
    assert!(total > 100, "fixture too small to sweep: {total} units");

    // budgets from "no work at all" through mid-stage cuts to "more than
    // enough"; every one must satisfy the anytime invariant
    let budgets =
        [0, 1, total / 20, total / 5, total / 2, (total * 4) / 5, total - 1, total, total * 2];
    let mut stages_seen = std::collections::BTreeSet::new();
    for &budget in &budgets {
        let server = make_server();
        let target = TuningTarget::Single(&server);
        let result = tune(&target, &workload, &budgeted(1, budget)).unwrap();
        let label = format!("budget {budget}");
        assert_anytime(&result, &server, &label);
        match result.completion {
            Completion::Complete => {
                assert!(budget >= total, "{label}: completed under the yardstick total");
                assert!(result.checkpoint.is_none(), "{label}: complete run carries a checkpoint");
            }
            Completion::BudgetExhausted { stage } => {
                assert!(budget < total, "{label}: exhausted with budget >= {total}");
                let cp = result.checkpoint.as_ref().expect("exhausted run carries a checkpoint");
                assert_eq!(cp.stage, stage, "{label}");
                // the stop poll fires once consumed >= budget (block
                // charging may record a small overshoot, never a shortfall)
                assert!(cp.consumed_units >= budget, "{label}: stopped under budget");
                stages_seen.insert(stage);
            }
            Completion::Cancelled { .. } => panic!("{label}: nothing cancelled this run"),
        }
    }
    // a zero budget cuts before any work; the sweep covers several stages
    assert!(stages_seen.contains(&Stage::PreCosting), "{stages_seen:?}");
    assert!(stages_seen.len() >= 3, "sweep cut too few distinct stages: {stages_seen:?}");
}

#[test]
fn same_budget_is_byte_identical_across_runs_and_worker_counts() {
    let workload = read_workload();
    let total = total_units(&workload);
    for &budget in &[total / 5, (total * 2) / 3] {
        let run = |workers: usize| {
            let server = make_server();
            let target = TuningTarget::Single(&server);
            tune(&target, &workload, &budgeted(workers, budget)).unwrap()
        };
        let first = run(1);
        let again = run(1);
        let wide = run(4);
        for (label, other) in [("rerun", &again), ("workers=4", &wide)] {
            assert_eq!(
                first.recommendation.to_string(),
                other.recommendation.to_string(),
                "budget {budget}: {label} diverged"
            );
            assert_eq!(
                first.recommended_cost.to_bits(),
                other.recommended_cost.to_bits(),
                "budget {budget}: {label} cost bits diverged"
            );
            assert_eq!(first.completion, other.completion, "budget {budget}: {label}");
            assert_eq!(
                first.checkpoint.as_ref().map(|c| (c.stage, c.consumed_units)),
                other.checkpoint.as_ref().map(|c| (c.stage, c.consumed_units)),
                "budget {budget}: {label} checkpoints cut differently"
            );
        }
    }
}

#[test]
fn resume_is_byte_identical_to_uninterrupted_run() {
    let workload = read_workload();
    let total = total_units(&workload);

    // the uninterrupted reference (workers=1 so the what-if tally in the
    // report is schedule-independent)
    let ref_server = make_server();
    let ref_target = TuningTarget::Single(&ref_server);
    let uninterrupted = tune(&ref_target, &workload, &options(1)).unwrap();

    // cut at several depths — early, mid, late — and resume each to
    // convergence on the same server that took the partial session
    for &budget in &[total / 10, total / 3, (total * 3) / 4] {
        let server = make_server();
        let target = TuningTarget::Single(&server);
        let partial = tune(&target, &workload, &budgeted(1, budget)).unwrap();
        let cp = partial
            .checkpoint
            .as_ref()
            .unwrap_or_else(|| panic!("budget {budget} of {total} should exhaust"));
        let resumed = tune_resume(&target, cp, None).unwrap();

        assert_eq!(resumed.completion, Completion::Complete, "budget {budget}");
        // byte-identical recommendation…
        assert_eq!(
            resumed.recommendation.to_string(),
            uninterrupted.recommendation.to_string(),
            "budget {budget}: resumed recommendation diverged"
        );
        assert_eq!(resumed.recommended_cost.to_bits(), uninterrupted.recommended_cost.to_bits());
        assert_eq!(resumed.base_cost.to_bits(), uninterrupted.base_cost.to_bits());
        // …and byte-identical report: the rendered report is the user-
        // facing artifact, so compare it whole
        assert_eq!(
            resumed.to_string(),
            uninterrupted.to_string(),
            "budget {budget}: resumed report diverged"
        );
        assert_eq!(resumed.whatif_calls, uninterrupted.whatif_calls, "budget {budget}");
        assert_eq!(resumed.evaluations, uninterrupted.evaluations, "budget {budget}");
        assert_eq!(resumed.storage_bytes, uninterrupted.storage_bytes, "budget {budget}");
    }
}

#[test]
fn resume_in_small_increments_converges_to_the_same_answer() {
    let workload = read_workload();
    let server = make_server();
    let target = TuningTarget::Single(&server);

    let mut result = tune(&target, &workload, &budgeted(1, 20)).unwrap();
    let mut steps = 0;
    while let Some(cp) = result.checkpoint.take() {
        steps += 1;
        assert!(steps < 200, "resume chain failed to converge");
        result = tune_resume(&target, &cp, Some(30)).unwrap();
    }
    assert!(steps > 2, "fixture should take several increments, took {steps}");
    assert_eq!(result.completion, Completion::Complete);

    let ref_server = make_server();
    let ref_target = TuningTarget::Single(&ref_server);
    let uninterrupted = tune(&ref_target, &workload, &options(1)).unwrap();
    assert_eq!(result.recommendation.to_string(), uninterrupted.recommendation.to_string());
    assert_eq!(result.recommended_cost.to_bits(), uninterrupted.recommended_cost.to_bits());
    assert_eq!(result.to_string(), uninterrupted.to_string(), "chained report diverged");
}

#[test]
fn precancelled_session_returns_the_base_configuration() {
    let workload = read_workload();
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let control = SessionControl::unlimited();
    control.cancel_handle().cancel();
    let result = tune_with_control(&target, &workload, &options(1), &control).unwrap();
    assert_eq!(result.completion, Completion::Cancelled { stage: Stage::PreCosting });
    assert_anytime(&result, &server, "pre-cancelled");
    assert_eq!(result.recommendation.to_string(), server.raw_configuration().to_string());
    assert_eq!(result.recommended_cost.to_bits(), result.base_cost.to_bits());
    assert!(result.checkpoint.is_none(), "only budget exhaustion checkpoints");
}

#[test]
fn midrun_cancellation_is_graceful() {
    let workload = read_workload();
    let server = make_server();
    let target = TuningTarget::Single(&server);
    let control = SessionControl::unlimited();
    let handle = control.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.cancel();
    });
    let result = tune_with_control(&target, &workload, &options(2), &control).unwrap();
    canceller.join().unwrap();
    // wherever the cancel landed (possibly after convergence on a fast
    // machine), the anytime invariant holds and nothing panicked
    assert_anytime(&result, &server, "mid-run cancel");
    if let Completion::BudgetExhausted { .. } = result.completion {
        panic!("no budget was set: {:?}", result.completion);
    }
}

#[test]
fn transient_faults_converge_to_the_no_fault_recommendation() {
    let workload = read_workload();
    let clean_server = make_server();
    let clean_target = TuningTarget::Single(&clean_server);
    let clean = tune(&clean_target, &workload, &options(1)).unwrap();

    let server = make_server();
    server.set_fault_policy(Some(FaultPolicy {
        seed: 7,
        whatif_transient_rate: 0.4,
        stats_transient_rate: 0.4,
        ..FaultPolicy::default()
    }));
    let target = TuningTarget::Single(&server);
    let faulted = tune(&target, &workload, &options(1)).unwrap();

    assert!(faulted.whatif_retries > 0, "schedule injected no transient faults");
    assert!(faulted.retry_backoff_units > 0);
    assert!(faulted.degraded_statements.is_empty(), "{:?}", faulted.degraded_statements);
    assert_eq!(faulted.completion, Completion::Complete);
    assert_eq!(
        faulted.recommendation.to_string(),
        clean.recommendation.to_string(),
        "retries must converge to the no-fault recommendation"
    );
    assert_eq!(faulted.recommended_cost.to_bits(), clean.recommended_cost.to_bits());
    // every retried call re-issues the what-if, so the faulted run works
    // strictly harder — but answers the same questions
    assert!(faulted.whatif_calls > clean.whatif_calls);
}

#[test]
fn permanent_faults_degrade_statements_instead_of_aborting() {
    let workload = read_workload();
    let server = make_server();
    server.set_fault_policy(Some(FaultPolicy {
        seed: 3,
        whatif_permanent_rate: 0.25,
        ..FaultPolicy::default()
    }));
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload, &options(2)).unwrap();

    assert!(
        !result.degraded_statements.is_empty(),
        "schedule with rate 0.25 over {} statements degraded none",
        workload.len()
    );
    assert!(result.degraded_statements.len() < workload.len(), "everything degraded");
    assert_eq!(result.completion, Completion::Complete);
    assert_anytime(&result, &server, "permanent faults");
    // the surviving statements still get tuned
    assert!(result.expected_improvement() > 0.1, "{}", result.expected_improvement());
    // and the report names the casualties
    let text = result.to_string();
    assert!(text.contains("degraded statements"), "{text}");
}

#[test]
fn injected_worker_panics_are_isolated_and_do_not_change_the_answer() {
    let workload = read_workload();
    let clean_server = make_server();
    let clean_target = TuningTarget::Single(&clean_server);
    let clean = tune(&clean_target, &workload, &options(4)).unwrap();
    assert_eq!(clean.worker_restarts, 0);

    let server = make_server();
    server.set_fault_policy(Some(FaultPolicy {
        seed: 11,
        whatif_panic_rate: 0.3,
        ..FaultPolicy::default()
    }));
    let target = TuningTarget::Single(&server);
    let result = tune(&target, &workload, &options(4)).unwrap();

    assert!(result.worker_restarts > 0, "schedule injected no panics");
    assert_eq!(result.completion, Completion::Complete);
    // what-if call counts differ (the panicked calls are re-issued), but
    // the recommendation and its cost are byte-identical
    assert_eq!(
        result.recommendation.to_string(),
        clean.recommendation.to_string(),
        "worker restarts changed the recommendation"
    );
    assert_eq!(result.recommended_cost.to_bits(), clean.recommended_cost.to_bits());
    assert_eq!(result.base_cost.to_bits(), clean.base_cost.to_bits());
}

/// CI's `fault-matrix` job sweeps this test over a grid of seeds and
/// failure rates via `DTA_FAULT_SEEDS` / `DTA_FAULT_RATES` (comma-
/// separated); the in-repo defaults keep a plain `cargo test` fast.
#[test]
fn fault_matrix_schedules_all_converge() {
    let seeds: Vec<u64> = std::env::var("DTA_FAULT_SEEDS")
        .map(|s| s.split(',').map(|t| t.trim().parse().expect("seed")).collect())
        .unwrap_or_else(|_| vec![1, 2]);
    let rates: Vec<f64> = std::env::var("DTA_FAULT_RATES")
        .map(|s| s.split(',').map(|t| t.trim().parse().expect("rate")).collect())
        .unwrap_or_else(|_| vec![0.3]);

    let workload = read_workload();
    let clean_server = make_server();
    let clean_target = TuningTarget::Single(&clean_server);
    let clean = tune(&clean_target, &workload, &options(1)).unwrap();

    for &seed in &seeds {
        for &rate in &rates {
            let server = make_server();
            server.set_fault_policy(Some(FaultPolicy {
                seed,
                whatif_transient_rate: rate,
                stats_transient_rate: rate,
                ..FaultPolicy::default()
            }));
            let target = TuningTarget::Single(&server);
            let faulted = tune(&target, &workload, &options(1)).unwrap();
            assert_eq!(
                faulted.recommendation.to_string(),
                clean.recommendation.to_string(),
                "seed {seed} rate {rate} diverged"
            );
            assert_eq!(
                faulted.recommended_cost.to_bits(),
                clean.recommended_cost.to_bits(),
                "seed {seed} rate {rate} cost bits diverged"
            );
            assert_eq!(faulted.completion, Completion::Complete, "seed {seed} rate {rate}");
        }
    }
}
