//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment cannot fetch crates, so this provides the
//! `parking_lot` API subset the workspace uses — [`Mutex`] and
//! [`RwLock`] whose `lock`/`read`/`write` return guards directly (no
//! poisoning) — implemented over `std::sync`. A panic while a lock is
//! held poisons the std primitive; we recover the data regardless, which
//! matches parking_lot's poison-free semantics.

/// Guard types re-exported from std.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New lock around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
