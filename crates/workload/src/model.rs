//! The workload model.

use dta_sql::{parse_script, parse_statement, ParseError, Statement};

/// One event in a workload: a statement against a database, with a
/// weight (how many times it occurred in the trace).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadItem {
    /// Database the statement runs against.
    pub database: String,
    /// The parsed statement.
    pub statement: Statement,
    /// Occurrence weight (≥ 0).
    pub weight: f64,
}

impl WorkloadItem {
    /// Item with weight 1.
    pub fn new(database: &str, statement: Statement) -> Self {
        Self { database: database.to_string(), statement, weight: 1.0 }
    }

    /// Item with an explicit weight.
    pub fn weighted(database: &str, statement: Statement, weight: f64) -> Self {
        Self { database: database.to_string(), statement, weight }
    }
}

/// A workload: an ordered multiset of weighted statements, possibly
/// spanning several databases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    pub items: Vec<WorkloadItem>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from items.
    pub fn from_items(items: Vec<WorkloadItem>) -> Self {
        Self { items }
    }

    /// Parse a `;`-separated SQL file, all statements against one
    /// database, weight 1 each.
    pub fn from_sql_file(database: &str, sql: &str) -> Result<Self, ParseError> {
        Ok(Self {
            items: parse_script(sql)?.into_iter().map(|s| WorkloadItem::new(database, s)).collect(),
        })
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total event count (sum of weights).
    pub fn total_events(&self) -> f64 {
        self.items.iter().map(|i| i.weight).sum()
    }

    /// Fraction of events that are INSERT/UPDATE/DELETE.
    pub fn update_fraction(&self) -> f64 {
        let total = self.total_events();
        if total == 0.0 {
            return 0.0;
        }
        self.items.iter().filter(|i| i.statement.is_update()).map(|i| i.weight).sum::<f64>() / total
    }

    /// Databases referenced, sorted and de-duplicated.
    pub fn databases(&self) -> Vec<String> {
        let mut dbs: Vec<String> = self.items.iter().map(|i| i.database.clone()).collect();
        dbs.sort();
        dbs.dedup();
        dbs
    }

    /// Serialize to a profiler-style trace: one event per line,
    /// `database<TAB>weight<TAB>sql`.
    pub fn to_trace(&self) -> String {
        let mut out = String::new();
        for i in &self.items {
            out.push_str(&format!("{}\t{}\t{}\n", i.database, i.weight, i.statement));
        }
        out
    }

    /// Parse a profiler-style trace produced by [`Workload::to_trace`].
    pub fn from_trace(trace: &str) -> Result<Self, ParseError> {
        let mut items = Vec::new();
        for (lineno, line) in trace.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (db, w, sql) = match (parts.next(), parts.next(), parts.next()) {
                (Some(db), Some(w), Some(sql)) => (db, w, sql),
                _ => {
                    return Err(ParseError {
                        message: format!("trace line {} malformed", lineno + 1),
                        offset: 0,
                    })
                }
            };
            let weight: f64 = w.parse().map_err(|_| ParseError {
                message: format!("bad weight on line {}", lineno + 1),
                offset: 0,
            })?;
            items.push(WorkloadItem::weighted(db, parse_statement(sql)?, weight));
        }
        Ok(Self { items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_file_loading() {
        let w = Workload::from_sql_file(
            "db",
            "SELECT a FROM t; UPDATE t SET a = 1 WHERE b = 2; DELETE FROM t WHERE a = 9;",
        )
        .unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_events(), 3.0);
        assert!((w.update_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.databases(), vec!["db"]);
    }

    #[test]
    fn trace_roundtrip() {
        let mut w = Workload::from_sql_file("db1", "SELECT a FROM t WHERE x < 10;").unwrap();
        w.items[0].weight = 42.0;
        w.items
            .push(WorkloadItem::new("db2", dta_sql::parse_statement("SELECT b FROM u").unwrap()));
        let trace = w.to_trace();
        let back = Workload::from_trace(&trace).unwrap();
        assert_eq!(w, back);
        assert_eq!(back.databases(), vec!["db1", "db2"]);
    }

    #[test]
    fn malformed_traces_rejected() {
        assert!(Workload::from_trace("only-one-field\n").is_err());
        assert!(Workload::from_trace("db\tnot_a_number\tSELECT a FROM t\n").is_err());
        assert!(Workload::from_trace("db\t1\tNOT SQL AT ALL\n").is_err());
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.update_fraction(), 0.0);
        assert_eq!(Workload::from_trace("").unwrap(), w);
    }
}
