//! TPC-H: schema, `dbgen`-style data generation, and the 22 benchmark
//! queries in the reproduction's SQL dialect.
//!
//! The paper evaluates DTA on TPC-H 10 GB (§7.2) and 1 GB (§7.3). We
//! materialize a small scale factor and set each table's *logical scale*
//! so that page counts and storage bounds correspond to the target
//! gigabytes, while histograms and selectivities (built from the
//! materialized rows) remain faithful.
//!
//! Queries that use constructs outside the dialect (correlated
//! subqueries, outer joins, `EXTRACT`) are rewritten to join/aggregate
//! forms that reference the same tables, predicates and columns — the
//! physical-design signal DTA consumes is preserved.

use crate::model::{Workload, WorkloadItem};
use dta_catalog::{Column, ColumnType, Database, Table, Value};
use dta_server::Server;
use dta_sql::parse_statement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    /// Materialized scale factor (rows actually generated).
    pub sf: f64,
    /// Scale factor the database *presents* (page counts, storage).
    pub logical_sf: f64,
}

impl TpchScale {
    /// Materialize `sf`, present `logical_sf`.
    pub fn new(sf: f64, logical_sf: f64) -> Self {
        assert!(sf > 0.0 && logical_sf >= sf);
        Self { sf, logical_sf }
    }

    /// Small smoke-test scale.
    pub fn tiny() -> Self {
        Self::new(0.002, 0.002)
    }

    /// The §7.2 stand-in: materialize SF 0.01, present 10 GB.
    pub fn ten_gb() -> Self {
        Self::new(0.01, 10.0)
    }

    /// The §7.3 stand-in: materialize SF 0.01, present 1 GB.
    pub fn one_gb() -> Self {
        Self::new(0.01, 1.0)
    }

    fn rows(&self, base: u64) -> u64 {
        ((base as f64 * self.sf).round() as u64).max(1)
    }

    fn scale_multiplier(&self) -> f64 {
        (self.logical_sf / self.sf).max(1.0)
    }
}

/// The TPC-H database name used throughout.
pub const DB: &str = "tpch";

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const TYPE_A: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_B: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_C: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONT_A: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONT_B: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 10] =
    ["green", "blue", "red", "yellow", "ivory", "azure", "black", "coral", "misty", "plum"];

/// Days-since-1992-01-01 → ISO date string (proleptic Gregorian).
pub fn date_string(days_since_1992: i64) -> String {
    let mut year = 1992i64;
    let mut d = days_since_1992;
    loop {
        let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
        let ylen = if leap { 366 } else { 365 };
        if d < ylen {
            break;
        }
        d -= ylen;
        year += 1;
    }
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    let months = [31, if leap { 29 } else { 28 }, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut month = 0usize;
    while d >= months[month] {
        d -= months[month];
        month += 1;
    }
    format!("{year:04}-{:02}-{:02}", month + 1, d + 1)
}

/// Build the TPC-H schema.
pub fn schema() -> Database {
    let mut db = Database::new(DB);
    db.add_table(
        Table::new(
            "region",
            vec![
                Column::new("r_regionkey", ColumnType::Int),
                Column::new("r_name", ColumnType::Str(12)),
            ],
        )
        .with_primary_key(&["r_regionkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "nation",
            vec![
                Column::new("n_nationkey", ColumnType::Int),
                Column::new("n_name", ColumnType::Str(16)),
                Column::new("n_regionkey", ColumnType::Int),
            ],
        )
        .with_primary_key(&["n_nationkey"])
        .with_foreign_key(&["n_regionkey"], "region", &["r_regionkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "supplier",
            vec![
                Column::new("s_suppkey", ColumnType::BigInt),
                Column::new("s_name", ColumnType::Str(18)),
                Column::new("s_nationkey", ColumnType::Int),
                Column::new("s_acctbal", ColumnType::Float),
            ],
        )
        .with_primary_key(&["s_suppkey"])
        .with_foreign_key(&["s_nationkey"], "nation", &["n_nationkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "customer",
            vec![
                Column::new("c_custkey", ColumnType::BigInt),
                Column::new("c_name", ColumnType::Str(18)),
                Column::new("c_nationkey", ColumnType::Int),
                Column::new("c_mktsegment", ColumnType::Str(10)),
                Column::new("c_acctbal", ColumnType::Float),
            ],
        )
        .with_primary_key(&["c_custkey"])
        .with_foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "part",
            vec![
                Column::new("p_partkey", ColumnType::BigInt),
                Column::new("p_name", ColumnType::Str(32)),
                Column::new("p_brand", ColumnType::Str(10)),
                Column::new("p_type", ColumnType::Str(25)),
                Column::new("p_size", ColumnType::Int),
                Column::new("p_container", ColumnType::Str(10)),
                Column::new("p_retailprice", ColumnType::Float),
            ],
        )
        .with_primary_key(&["p_partkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "partsupp",
            vec![
                Column::new("ps_partkey", ColumnType::BigInt),
                Column::new("ps_suppkey", ColumnType::BigInt),
                Column::new("ps_availqty", ColumnType::Int),
                Column::new("ps_supplycost", ColumnType::Float),
            ],
        )
        .with_primary_key(&["ps_partkey", "ps_suppkey"])
        .with_foreign_key(&["ps_partkey"], "part", &["p_partkey"])
        .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::BigInt),
                Column::new("o_custkey", ColumnType::BigInt),
                Column::new("o_orderstatus", ColumnType::Str(1)),
                Column::new("o_totalprice", ColumnType::Float),
                Column::new("o_orderdate", ColumnType::Date),
                Column::new("o_orderpriority", ColumnType::Str(15)),
                Column::new("o_shippriority", ColumnType::Int),
            ],
        )
        .with_primary_key(&["o_orderkey"])
        .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"]),
    )
    .unwrap();
    db.add_table(
        Table::new(
            "lineitem",
            vec![
                Column::new("l_orderkey", ColumnType::BigInt),
                Column::new("l_partkey", ColumnType::BigInt),
                Column::new("l_suppkey", ColumnType::BigInt),
                Column::new("l_linenumber", ColumnType::Int),
                Column::new("l_quantity", ColumnType::Float),
                Column::new("l_extendedprice", ColumnType::Float),
                Column::new("l_discount", ColumnType::Float),
                Column::new("l_tax", ColumnType::Float),
                Column::new("l_returnflag", ColumnType::Str(1)),
                Column::new("l_linestatus", ColumnType::Str(1)),
                Column::new("l_shipdate", ColumnType::Date),
                Column::new("l_commitdate", ColumnType::Date),
                Column::new("l_receiptdate", ColumnType::Date),
                Column::new("l_shipmode", ColumnType::Str(10)),
                Column::new("l_shipinstruct", ColumnType::Str(25)),
            ],
        )
        .with_primary_key(&["l_orderkey", "l_linenumber"])
        .with_foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
        .with_foreign_key(&["l_partkey"], "part", &["p_partkey"])
        .with_foreign_key(&["l_suppkey"], "supplier", &["s_suppkey"]),
    )
    .unwrap();
    db
}

/// Generate a server loaded with TPC-H data at `scale`.
pub fn build_server(scale: TpchScale, seed: u64) -> Server {
    let mut server = Server::new("tpch-server");
    server.create_database(schema()).expect("tpch schema is valid");
    let mut rng = StdRng::seed_from_u64(seed);

    let n_supplier = scale.rows(10_000) as i64;
    let n_customer = scale.rows(150_000) as i64;
    let n_part = scale.rows(200_000) as i64;
    let n_orders = scale.rows(1_500_000) as i64;
    let mult = scale.scale_multiplier();

    {
        let t = server.table_data_mut(DB, "region").unwrap();
        for (i, name) in REGIONS.iter().enumerate() {
            t.push_row(vec![Value::Int(i as i64), Value::Str(name.to_string())]);
        }
    }
    {
        let t = server.table_data_mut(DB, "nation").unwrap();
        for (i, (name, region)) in NATIONS.iter().enumerate() {
            t.push_row(vec![
                Value::Int(i as i64),
                Value::Str(name.to_string()),
                Value::Int(*region as i64),
            ]);
        }
    }
    {
        let t = server.table_data_mut(DB, "supplier").unwrap();
        for i in 0..n_supplier {
            t.push_row(vec![
                Value::Int(i),
                Value::Str(format!("Supplier#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float((rng.gen_range(-99999..999999) as f64) / 100.0),
            ]);
        }
        t.set_scale(mult);
    }
    {
        let t = server.table_data_mut(DB, "customer").unwrap();
        for i in 0..n_customer {
            t.push_row(vec![
                Value::Int(i),
                Value::Str(format!("Customer#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
                Value::Float((rng.gen_range(-99999..999999) as f64) / 100.0),
            ]);
        }
        t.set_scale(mult);
    }
    {
        let t = server.table_data_mut(DB, "part").unwrap();
        for i in 0..n_part {
            let ty = format!(
                "{} {} {}",
                TYPE_A[rng.gen_range(0..TYPE_A.len())],
                TYPE_B[rng.gen_range(0..TYPE_B.len())],
                TYPE_C[rng.gen_range(0..TYPE_C.len())]
            );
            let container = format!(
                "{} {}",
                CONT_A[rng.gen_range(0..CONT_A.len())],
                CONT_B[rng.gen_range(0..CONT_B.len())]
            );
            let name = format!(
                "{} {}",
                COLORS[rng.gen_range(0..COLORS.len())],
                COLORS[rng.gen_range(0..COLORS.len())]
            );
            t.push_row(vec![
                Value::Int(i),
                Value::Str(name),
                Value::Str(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6))),
                Value::Str(ty),
                Value::Int(rng.gen_range(1..51)),
                Value::Str(container),
                Value::Float(900.0 + (i % 1000) as f64 / 10.0),
            ]);
        }
        t.set_scale(mult);
    }
    {
        let t = server.table_data_mut(DB, "partsupp").unwrap();
        for p in 0..n_part {
            for s in 0..4 {
                t.push_row(vec![
                    Value::Int(p),
                    Value::Int((p + s * (n_supplier / 4).max(1)) % n_supplier.max(1)),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Float(rng.gen_range(100..100_000) as f64 / 100.0),
                ]);
            }
        }
        t.set_scale(mult);
    }
    // orders + lineitem together so FKs line up
    {
        let mut orders_rows = Vec::new();
        let mut lineitem_rows = Vec::new();
        for o in 0..n_orders {
            let odate = rng.gen_range(0..2405i64); // 1992-01-01 .. 1998-08-02
            let lines = rng.gen_range(1..8);
            let mut total = 0.0;
            for ln in 0..lines {
                let qty = rng.gen_range(1..51) as f64;
                let price = qty * (900.0 + rng.gen_range(0..100_000) as f64 / 100.0) / 10.0;
                total += price;
                let ship = odate + rng.gen_range(1..122);
                let commit = odate + rng.gen_range(30..91);
                let receipt = ship + rng.gen_range(1..31);
                let returnflag = if receipt < 1263 {
                    // before 1995-06-17: R or A
                    if rng.gen_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                lineitem_rows.push(vec![
                    Value::Int(o),
                    Value::Int(rng.gen_range(0..n_part.max(1))),
                    Value::Int(rng.gen_range(0..n_supplier.max(1))),
                    Value::Int(ln),
                    Value::Float(qty),
                    Value::Float(price),
                    Value::Float(rng.gen_range(0..11) as f64 / 100.0),
                    Value::Float(rng.gen_range(0..9) as f64 / 100.0),
                    Value::Str(returnflag.to_string()),
                    Value::Str(if ship > 1263 { "O" } else { "F" }.to_string()),
                    Value::Str(date_string(ship)),
                    Value::Str(date_string(commit)),
                    Value::Str(date_string(receipt)),
                    Value::Str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())].to_string()),
                    Value::Str(INSTRUCTS[rng.gen_range(0..INSTRUCTS.len())].to_string()),
                ]);
            }
            orders_rows.push(vec![
                Value::Int(o),
                Value::Int(rng.gen_range(0..n_customer.max(1))),
                Value::Str(if odate > 1263 { "O" } else { "F" }.to_string()),
                Value::Float(total),
                Value::Str(date_string(odate)),
                Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string()),
                Value::Int(0),
            ]);
        }
        let t = server.table_data_mut(DB, "orders").unwrap();
        for r in orders_rows {
            t.push_row(r);
        }
        t.set_scale(mult);
        let t = server.table_data_mut(DB, "lineitem").unwrap();
        for r in lineitem_rows {
            t.push_row(r);
        }
        t.set_scale(mult);
    }
    server
}

/// The 22 TPC-H queries in the reproduction's dialect.
pub fn queries() -> Vec<&'static str> {
    vec![
        // Q1
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
        // Q2 (min-cost subquery dropped; same join graph and predicates)
        "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation, region WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 AND p_type = 'LARGE BRUSHED BRASS' AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE' ORDER BY s_acctbal DESC",
        // Q3
        "SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)), o_orderdate, o_shippriority FROM customer, orders, lineitem WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15' GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY o_orderdate",
        // Q4 (EXISTS rewritten as join)
        "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE l_orderkey = o_orderkey AND o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' AND l_commitdate < l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority",
        // Q5
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) FROM customer, orders, lineitem, supplier, nation, region WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'ASIA' AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' GROUP BY n_name ORDER BY n_name",
        // Q6
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        // Q7 (year extraction folded into the date range)
        "SELECT n1.n_name, n2.n_name, SUM(l_extendedprice * (1 - l_discount)) FROM supplier, lineitem, orders, customer, nation AS n1, nation AS n2 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey AND n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY' AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' GROUP BY n1.n_name, n2.n_name",
        // Q8 (market-share numerator join graph)
        "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) FROM part, supplier, lineitem, orders, customer, nation, region WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'AMERICA' AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' AND p_type = 'ECONOMY ANODIZED STEEL' GROUP BY o_orderdate",
        // Q9
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) FROM part, supplier, lineitem, partsupp, orders, nation WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey AND p_name LIKE 'green%' GROUP BY n_name ORDER BY n_name",
        // Q10
        "SELECT TOP 20 c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)), c_acctbal, n_name FROM customer, orders, lineitem, nation WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' AND l_returnflag = 'R' AND c_nationkey = n_nationkey GROUP BY c_custkey, c_name, c_acctbal, n_name ORDER BY c_custkey",
        // Q11 (HAVING-fraction subquery dropped)
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' GROUP BY ps_partkey ORDER BY ps_partkey",
        // Q12
        "SELECT l_shipmode, COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' GROUP BY l_shipmode ORDER BY l_shipmode",
        // Q13 (outer join approximated by inner join)
        "SELECT c_custkey, COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey GROUP BY c_custkey",
        // Q14
        "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'",
        // Q15 (revenue view inlined)
        "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) FROM lineitem WHERE l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01' GROUP BY l_suppkey ORDER BY l_suppkey",
        // Q16 (NOT IN supplier subquery dropped)
        "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM partsupp, part WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) GROUP BY p_brand, p_type, p_size ORDER BY p_brand",
        // Q17 (avg-quantity subquery replaced by its typical value)
        "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX' AND l_quantity < 5",
        // Q18 (IN-subquery folded into the aggregate + filter)
        "SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) FROM customer, orders, lineitem WHERE o_totalprice > 400000.0 AND c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice ORDER BY o_totalprice DESC",
        // Q19 (one branch of the disjunction)
        "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part WHERE p_partkey = l_partkey AND p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5 AND l_shipmode IN ('AIR', 'REG AIR')",
        // Q20 (nested subqueries dropped; same driving tables)
        "SELECT s_name, s_acctbal FROM supplier, nation WHERE s_nationkey = n_nationkey AND n_name = 'CANADA' AND s_acctbal > 0.0 ORDER BY s_name",
        // Q21 (EXISTS/NOT EXISTS dropped)
        "SELECT TOP 100 s_name, COUNT(*) FROM supplier, lineitem, orders, nation WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' GROUP BY s_name ORDER BY s_name",
        // Q22 (substring country-code matching simplified to nation key)
        "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer WHERE c_acctbal > 7500.0 GROUP BY c_nationkey ORDER BY c_nationkey",
    ]
}

/// The 22-query workload.
pub fn workload() -> Workload {
    Workload::from_items(
        queries()
            .into_iter()
            .map(|q| {
                WorkloadItem::new(
                    DB,
                    parse_statement(q)
                        .unwrap_or_else(|e| panic!("TPC-H query failed to parse: {e}\n{q}")),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        assert_eq!(workload().len(), 22);
    }

    #[test]
    fn date_strings() {
        assert_eq!(date_string(0), "1992-01-01");
        assert_eq!(date_string(31), "1992-02-01");
        assert_eq!(date_string(60), "1992-03-01"); // 1992 is a leap year
        assert_eq!(date_string(366), "1993-01-01");
        assert_eq!(date_string(1263), "1995-06-17");
    }

    #[test]
    fn server_builds_at_tiny_scale() {
        let server = build_server(TpchScale::tiny(), 1);
        let li = server.store().table(DB, "lineitem").unwrap();
        assert!(li.rows() > 5000, "lineitem rows = {}", li.rows());
        let orders = server.store().table(DB, "orders").unwrap();
        assert!(orders.rows() >= 2900, "orders rows = {}", orders.rows());
        assert_eq!(server.store().table(DB, "nation").unwrap().rows(), 25);
        // referential integrity of generated keys
        let ok = orders.column_by_name("o_custkey").unwrap();
        let n_cust = server.store().table(DB, "customer").unwrap().rows() as i64;
        assert!(ok.iter().all(|v| matches!(v, Value::Int(k) if *k < n_cust)));
    }

    #[test]
    fn logical_scaling_presents_target_size() {
        let server = build_server(TpchScale::new(0.002, 1.0), 2);
        let bytes = server.total_data_bytes();
        // ~1 GB raw-ish data (row widths are narrower than real TPC-H,
        // so accept a broad band)
        assert!(bytes > 200 << 20, "bytes = {bytes}");
        assert!(bytes < (4u64) << 30, "bytes = {bytes}");
    }

    #[test]
    fn queries_bind_against_schema() {
        let server = build_server(TpchScale::tiny(), 3);
        for (i, item) in workload().items.iter().enumerate() {
            let plan = server.whatif(DB, &item.statement, &server.raw_configuration());
            assert!(plan.is_ok(), "Q{} failed: {:?}", i + 1, plan.err());
        }
    }

    #[test]
    fn queries_execute_and_return_rows() {
        let server = build_server(TpchScale::tiny(), 4);
        server.deploy(server.raw_configuration());
        let mut non_empty = 0;
        for (i, item) in workload().items.iter().enumerate() {
            let res = server.execute(DB, &item.statement);
            let res = res.unwrap_or_else(|e| panic!("Q{} failed: {e}", i + 1));
            if !res.rows.is_empty() {
                non_empty += 1;
            }
        }
        // most queries should return data on generated rows
        assert!(non_empty >= 16, "only {non_empty} queries returned rows");
    }
}
