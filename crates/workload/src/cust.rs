//! CUST1–CUST4: synthetic stand-ins for the paper's customer databases
//! (Table 1), with each DBA's hand-tuned configuration (Table 2).
//!
//! The real databases are proprietary; these generators reproduce the
//! published *shape*:
//!
//! | name  | size   | #DBs | #tables | events | character |
//! |-------|--------|------|---------|--------|-----------|
//! | CUST1 | 120 GB | 2    | 580     | 15 K   | read-mostly, decent hand tuning |
//! | CUST2 | 42 GB  | 1    | 321     | 252 K  | read-mostly, poor hand tuning |
//! | CUST3 | 7.7 GB | 3    | 1 605   | 176 K  | update-heavy; hand tuning hurts |
//! | CUST4 | 0.1 GB | 1    | 94      | 9 K    | small, untuned |
//!
//! Quality expectations (paper): DTA ≈ hand for CUST1 (87% vs 82%),
//! DTA ≫ hand for CUST2 (41% vs 6%) and CUST4 (50% vs 0%), and for the
//! update-dominated CUST3 the hand design is *worse than raw* (−5%)
//! while DTA correctly recommends nothing (0%).

use crate::gen_util::{build_database, TableSpec};
use crate::model::{Workload, WorkloadItem};
use crate::Benchmark;
use dta_physical::{Configuration, Index, PhysicalStructure};
use dta_server::Server;
use dta_sql::parse_statement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which customer workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustId {
    Cust1,
    Cust2,
    Cust3,
    Cust4,
}

impl CustId {
    /// All four, in order.
    pub fn all() -> [CustId; 4] {
        [CustId::Cust1, CustId::Cust2, CustId::Cust3, CustId::Cust4]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CustId::Cust1 => "CUST1",
            CustId::Cust2 => "CUST2",
            CustId::Cust3 => "CUST3",
            CustId::Cust4 => "CUST4",
        }
    }

    /// Paper event count (Table 2's "#events tuned").
    pub fn paper_events(self) -> usize {
        match self {
            CustId::Cust1 => 15_000,
            CustId::Cust2 => 252_000,
            CustId::Cust3 => 176_000,
            CustId::Cust4 => 9_000,
        }
    }

    /// Table 1 rows: (size GB, #DBs, #tables).
    pub fn paper_profile(self) -> (f64, usize, usize) {
        match self {
            CustId::Cust1 => (120.0, 2, 580),
            CustId::Cust2 => (42.0, 1, 321),
            CustId::Cust3 => (7.7, 3, 1_605),
            CustId::Cust4 => (0.1, 1, 94),
        }
    }
}

struct Shape {
    databases: usize,
    tables_per_db: usize,
    hot_per_db: usize,
    hot_rows: usize,
    hot_scale: f64,
    distinct_a: i64,
    templates: usize,
    update_fraction: f64,
    /// fraction of *read* templates that no structure can improve
    dead_fraction: f64,
}

fn shape(id: CustId) -> Shape {
    match id {
        CustId::Cust1 => Shape {
            databases: 2,
            tables_per_db: 290,
            hot_per_db: 16,
            hot_rows: 20_000,
            hot_scale: 1500.0,
            distinct_a: 1000,
            templates: 30,
            update_fraction: 0.02,
            dead_fraction: 0.12,
        },
        CustId::Cust2 => Shape {
            databases: 1,
            tables_per_db: 321,
            hot_per_db: 20,
            hot_rows: 20_000,
            hot_scale: 900.0,
            distinct_a: 1000,
            templates: 40,
            update_fraction: 0.05,
            dead_fraction: 0.45,
        },
        CustId::Cust3 => Shape {
            databases: 3,
            tables_per_db: 535,
            hot_per_db: 10,
            hot_rows: 10_000,
            hot_scale: 40.0,
            distinct_a: 500,
            templates: 25,
            update_fraction: 0.65,
            dead_fraction: 0.9,
        },
        CustId::Cust4 => Shape {
            databases: 1,
            tables_per_db: 94,
            hot_per_db: 10,
            hot_rows: 2_000,
            hot_scale: 1.0,
            distinct_a: 100,
            templates: 12,
            update_fraction: 0.0,
            dead_fraction: 0.4,
        },
    }
}

/// One statement template of a customer workload.
enum Template {
    /// `SELECT pad FROM t WHERE a = ?` — index on `a` helps, covering more
    PointSelect { db: String, table: String, spec_a: i64 },
    /// `SELECT b, COUNT(*), SUM(c) FROM t WHERE a BETWEEN ? AND ?+w GROUP BY b`
    RangeGroup { db: String, table: String, spec_a: i64, width: i64 },
    /// `SELECT t1.pad FROM t1, t2 WHERE t1.k = t2.k AND t2.a = ?`
    JoinSelect { db: String, left: String, right: String, spec_a: i64 },
    /// `SELECT k, pad FROM t` — unimprovable full projection
    DeadScan { db: String, table: String },
    /// `SELECT c FROM t WHERE k = ?` — already answered by the PK index
    PkLookup { db: String, table: String, rows: i64 },
    /// `UPDATE t SET c = ? WHERE k = ?`
    Update { db: String, table: String, rows: i64 },
}

impl Template {
    fn instantiate(&self, rng: &mut StdRng) -> (String, String) {
        match self {
            Template::PointSelect { db, table, spec_a } => (
                db.clone(),
                format!("SELECT pad FROM {table} WHERE a = {}", rng.gen_range(0..*spec_a)),
            ),
            Template::RangeGroup { db, table, spec_a, width } => {
                let lo = rng.gen_range(0..(*spec_a - *width).max(1));
                (
                    db.clone(),
                    format!(
                        "SELECT b, COUNT(*), SUM(c) FROM {table} WHERE a BETWEEN {lo} AND {} GROUP BY b",
                        lo + width
                    ),
                )
            }
            Template::JoinSelect { db, left, right, spec_a } => (
                db.clone(),
                format!(
                    "SELECT {left}.pad FROM {left}, {right} WHERE {left}.k = {right}.k AND {right}.a = {}",
                    rng.gen_range(0..*spec_a)
                ),
            ),
            Template::DeadScan { db, table } => {
                (db.clone(), format!("SELECT k, pad FROM {table}"))
            }
            Template::PkLookup { db, table, rows } => (
                db.clone(),
                format!("SELECT c FROM {table} WHERE k = {}", rng.gen_range(0..*rows)),
            ),
            Template::Update { db, table, rows } => (
                db.clone(),
                format!(
                    "UPDATE {table} SET c = {} WHERE k = {}",
                    rng.gen_range(0..1000),
                    rng.gen_range(0..*rows)
                ),
            ),
        }
    }
}

/// Build a customer benchmark. `events_fraction` scales the paper's
/// event count (1.0 = full size; smaller for quick runs).
pub fn build(id: CustId, events_fraction: f64, seed: u64) -> Benchmark {
    let sh = shape(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = Server::new(id.name());

    // databases and tables
    let mut hot_tables: Vec<(String, String)> = Vec::new(); // (db, table)
    for d in 0..sh.databases {
        let db_name = format!("{}db{}", id.name().to_lowercase(), d + 1);
        let mut specs = Vec::new();
        for t in 0..sh.tables_per_db {
            let hot = t < sh.hot_per_db;
            let name = format!("t{:03}", t);
            let spec = if hot {
                TableSpec::new(&name, sh.hot_rows).scale(sh.hot_scale).distincts(sh.distinct_a, 20)
            } else {
                // cold tables: tiny, give the catalog its realistic bulk
                TableSpec::new(&name, 32).distincts(8, 2).pad(40)
            };
            if hot {
                hot_tables.push((db_name.clone(), name.clone()));
            }
            specs.push(spec);
        }
        build_database(&mut server, &db_name, &specs, &mut rng);
    }

    // templates
    let mut templates: Vec<Template> = Vec::new();
    let n_dead = (sh.templates as f64 * sh.dead_fraction).round() as usize;
    for i in 0..sh.templates {
        let (db, table) = hot_tables[i % hot_tables.len()].clone();
        let t = if i < n_dead {
            match id {
                // CUST3's "dead" statements are PK lookups the raw design
                // already answers optimally
                CustId::Cust3 => Template::PkLookup { db, table, rows: sh.hot_rows as i64 },
                _ => Template::DeadScan { db, table },
            }
        } else {
            match i % 3 {
                0 => Template::PointSelect { db, table, spec_a: sh.distinct_a },
                1 => Template::RangeGroup {
                    db,
                    table,
                    spec_a: sh.distinct_a,
                    width: (sh.distinct_a / 20).max(1),
                },
                _ => {
                    let (db2, t2) = hot_tables[(i + 1) % hot_tables.len()].clone();
                    if db2 == db && t2 != table {
                        Template::JoinSelect { db, left: table, right: t2, spec_a: sh.distinct_a }
                    } else {
                        Template::PointSelect { db, table, spec_a: sh.distinct_a }
                    }
                }
            }
        };
        templates.push(t);
    }
    let update_templates: Vec<Template> = hot_tables
        .iter()
        .map(|(db, t)| Template::Update {
            db: db.clone(),
            table: t.clone(),
            rows: sh.hot_rows as i64,
        })
        .collect();

    // events
    let total_events = ((id.paper_events() as f64 * events_fraction).round() as usize).max(50);
    let mut items = Vec::with_capacity(total_events);
    for _ in 0..total_events {
        let (db, sql) = if rng.gen_bool(sh.update_fraction) {
            update_templates[rng.gen_range(0..update_templates.len())].instantiate(&mut rng)
        } else {
            templates[rng.gen_range(0..templates.len())].instantiate(&mut rng)
        };
        items.push(WorkloadItem::new(&db, parse_statement(&sql).expect("generated SQL parses")));
    }

    let hand_tuned = hand_tuned_config(id, &server, &hot_tables);
    let databases = server.catalog().databases().map(|d| d.name.clone()).collect();
    Benchmark {
        name: id.name().to_string(),
        server,
        workload: Workload::from_items(items),
        hand_tuned: Some(hand_tuned),
        databases,
    }
}

/// The DBA's hand-tuned design of Table 2.
fn hand_tuned_config(
    id: CustId,
    server: &Server,
    hot_tables: &[(String, String)],
) -> Configuration {
    let mut cfg = server.raw_configuration();
    match id {
        CustId::Cust1 => {
            // competent: non-covering indexes on `a` for most hot tables
            for (db, t) in hot_tables.iter().take(hot_tables.len() * 4 / 5) {
                cfg.add(PhysicalStructure::Index(Index::non_clustered(db, t, &["a"], &[])));
            }
        }
        CustId::Cust2 => {
            // poor: indexes on `c`, a column the workload rarely filters
            for (db, t) in hot_tables {
                cfg.add(PhysicalStructure::Index(Index::non_clustered(db, t, &["c"], &[])));
            }
        }
        CustId::Cust3 => {
            // harmful under updates: several indexes per hot table,
            // including the frequently-updated column `c`
            for (db, t) in hot_tables {
                cfg.add(PhysicalStructure::Index(Index::non_clustered(db, t, &["c"], &[])));
                cfg.add(PhysicalStructure::Index(Index::non_clustered(db, t, &["a"], &["c"])));
                cfg.add(PhysicalStructure::Index(Index::non_clustered(db, t, &["d"], &[])));
            }
        }
        CustId::Cust4 => {
            // untuned: primary keys only (the raw configuration)
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table_1() {
        for id in CustId::all() {
            let b = build(id, 0.01, 42);
            let (_, dbs, tables) = id.paper_profile();
            assert_eq!(b.databases.len(), dbs, "{}", id.name());
            assert_eq!(b.server.catalog().total_table_count(), tables, "{}", id.name());
        }
    }

    #[test]
    fn cust3_is_update_heavy() {
        let b = build(CustId::Cust3, 0.01, 42);
        assert!(b.workload.update_fraction() > 0.5);
        let b1 = build(CustId::Cust1, 0.01, 42);
        assert!(b1.workload.update_fraction() < 0.1);
    }

    #[test]
    fn workload_binds_and_costs() {
        let b = build(CustId::Cust4, 0.02, 42);
        let raw = b.server.raw_configuration();
        for item in &b.workload.items {
            let plan = b.server.whatif(&item.database, &item.statement, &raw);
            assert!(plan.is_ok(), "{:?}: {:?}", item.statement.to_string(), plan.err());
        }
    }

    #[test]
    fn hand_tuned_is_valid() {
        for id in CustId::all() {
            let b = build(id, 0.005, 7);
            let errors = b.hand_tuned.as_ref().unwrap().validate(b.server.catalog());
            assert!(errors.is_empty(), "{}: {errors:?}", id.name());
        }
    }

    #[test]
    fn sizes_land_in_the_right_decade() {
        let b = build(CustId::Cust1, 0.005, 7);
        let gb = b.server.total_data_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb > 30.0, "CUST1 presents {gb} GB");
        let b4 = build(CustId::Cust4, 0.005, 7);
        let gb4 = b4.server.total_data_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb4 < 1.0, "CUST4 presents {gb4} GB");
    }

    #[test]
    fn event_scaling() {
        let small = build(CustId::Cust1, 0.01, 1);
        assert_eq!(small.workload.len(), 150);
    }
}
