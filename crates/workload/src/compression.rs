//! Workload compression (§5.1).
//!
//! Workloads are heavily templatized: statements arrive from a small
//! number of stored procedures / prepared statements, differing only in
//! constants. Compression partitions the workload by statement
//! *signature* and keeps a small set of clustered representatives per
//! partition, each carrying the weight of the events it stands for.
//! Tuning the compressed workload is dramatically cheaper and loses
//! almost no recommendation quality.
//!
//! The two strawmen the paper argues against are also provided for the
//! ablation: [`uniform_sample`] (ignores structure entirely) and
//! [`top_k_by_cost`] (can starve whole templates).

use crate::model::{Workload, WorkloadItem};
use dta_sql::signature::parameter_vector;
use dta_sql::Signature;
use std::collections::BTreeMap;

/// Knobs for compression.
#[derive(Debug, Clone, Copy)]
pub struct CompressionOptions {
    /// Partitions at or below this size are kept whole.
    pub keep_whole_below: usize,
    /// Representative count for a partition of size `n` is
    /// `ceil(n.powf(rep_exponent) * rep_scale)`, clamped to `[1, n]`.
    pub rep_exponent: f64,
    pub rep_scale: f64,
}

impl Default for CompressionOptions {
    fn default() -> Self {
        Self { keep_whole_below: 3, rep_exponent: 0.5, rep_scale: 0.5 }
    }
}

impl CompressionOptions {
    fn reps_for(&self, n: usize) -> usize {
        let k = ((n as f64).powf(self.rep_exponent) * self.rep_scale).ceil() as usize;
        k.clamp(1, n)
    }
}

/// What compression did.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The compressed workload (weights preserved in total).
    pub compressed: Workload,
    /// Number of distinct signatures found.
    pub partitions: usize,
    /// Items before compression.
    pub before: usize,
}

impl CompressionOutcome {
    /// `before / after` item ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed.is_empty() {
            return 1.0;
        }
        self.before as f64 / self.compressed.len() as f64
    }
}

/// Compress a workload by signature partitioning + clustering.
pub fn compress(workload: &Workload, options: CompressionOptions) -> CompressionOutcome {
    // partition by (database, signature)
    let mut partitions: BTreeMap<(String, Signature), Vec<usize>> = BTreeMap::new();
    for (i, item) in workload.items.iter().enumerate() {
        let sig = dta_sql::signature(&item.statement);
        partitions.entry((item.database.clone(), sig)).or_default().push(i);
    }
    let n_partitions = partitions.len();

    let mut out = Vec::new();
    for (_, members) in partitions {
        if members.len() <= options.keep_whole_below {
            out.extend(members.iter().map(|&i| workload.items[i].clone()));
            continue;
        }
        let k = options.reps_for(members.len());
        out.extend(cluster_representatives(workload, &members, k));
    }
    CompressionOutcome {
        compressed: Workload::from_items(out),
        partitions: n_partitions,
        before: workload.len(),
    }
}

/// k-center clustering on normalized parameter vectors; each medoid is
/// returned with the total weight of its cluster.
fn cluster_representatives(workload: &Workload, members: &[usize], k: usize) -> Vec<WorkloadItem> {
    let vectors: Vec<Vec<f64>> =
        members.iter().map(|&i| parameter_vector(&workload.items[i].statement)).collect();
    let dims = vectors.iter().map(Vec::len).max().unwrap_or(0);

    // per-dimension ranges for normalization
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for v in &vectors {
        for d in 0..dims {
            let x = v.get(d).copied().unwrap_or(0.0);
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        let mut s = 0.0;
        for d in 0..dims {
            let range = (hi[d] - lo[d]).max(1e-12);
            let x = a.get(d).copied().unwrap_or(0.0);
            let y = b.get(d).copied().unwrap_or(0.0);
            let diff = (x - y) / range;
            s += diff * diff;
        }
        s.sqrt()
    };

    // greedy k-center: seed with the heaviest member
    let seed = members
        .iter()
        .enumerate()
        .max_by(|(_, &a), (_, &b)| workload.items[a].weight.total_cmp(&workload.items[b].weight))
        .map(|(pos, _)| pos)
        .expect("non-empty partition");
    let mut medoids = vec![seed];
    let mut nearest: Vec<f64> = vectors.iter().map(|v| dist(v, &vectors[seed])).collect();
    while medoids.len() < k {
        let (far, far_d) = nearest
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, d)| (i, *d))
            .expect("non-empty");
        if far_d <= 0.0 {
            break; // all identical
        }
        medoids.push(far);
        for (i, v) in vectors.iter().enumerate() {
            let d = dist(v, &vectors[far]);
            if d < nearest[i] {
                nearest[i] = d;
            }
        }
    }

    // assign members to the nearest medoid; fold weights
    let mut cluster_weight = vec![0.0f64; medoids.len()];
    for (i, v) in vectors.iter().enumerate() {
        let (best, _) = medoids
            .iter()
            .enumerate()
            .map(|(mi, &m)| (mi, dist(v, &vectors[m])))
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("at least one medoid");
        cluster_weight[best] += workload.items[members[i]].weight;
    }

    medoids
        .iter()
        .zip(cluster_weight)
        .map(|(&pos, weight)| {
            let mut item = workload.items[members[pos]].clone();
            item.weight = weight;
            item
        })
        .collect()
}

/// Strawman 1: uniform random sampling of `fraction` of the items,
/// re-weighted to preserve total event count.
pub fn uniform_sample(workload: &Workload, fraction: f64, seed: u64) -> Workload {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..workload.len()).collect();
    idx.shuffle(&mut rng);
    let keep = ((workload.len() as f64 * fraction).ceil() as usize).clamp(1, workload.len());
    idx.truncate(keep);
    let scale = workload.len() as f64 / keep as f64;
    Workload::from_items(
        idx.into_iter()
            .map(|i| {
                let mut item = workload.items[i].clone();
                item.weight *= scale;
                item
            })
            .collect(),
    )
}

/// Strawman 2: keep the most expensive statements until `cost_fraction`
/// of the total cost is covered. `costs[i]` must align with items.
pub fn top_k_by_cost(workload: &Workload, costs: &[f64], cost_fraction: f64) -> Workload {
    assert_eq!(costs.len(), workload.len());
    let total: f64 = costs.iter().zip(&workload.items).map(|(c, i)| c * i.weight).sum();
    let mut order: Vec<usize> = (0..workload.len()).collect();
    order.sort_by(|&a, &b| {
        (costs[b] * workload.items[b].weight).total_cmp(&(costs[a] * workload.items[a].weight))
    });
    let mut kept = Vec::new();
    let mut acc = 0.0;
    for i in order {
        if acc >= total * cost_fraction && !kept.is_empty() {
            break;
        }
        acc += costs[i] * workload.items[i].weight;
        kept.push(workload.items[i].clone());
    }
    Workload::from_items(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_sql::parse_statement;

    /// Workload with `t` templates × `per` instances each.
    fn templated(t: usize, per: usize) -> Workload {
        let mut items = Vec::new();
        for template in 0..t {
            for inst in 0..per {
                let sql = format!(
                    "SELECT c{template} FROM t{template} WHERE k{template} < {}",
                    inst * 10
                );
                items.push(WorkloadItem::new("db", parse_statement(&sql).unwrap()));
            }
        }
        Workload::from_items(items)
    }

    #[test]
    fn compression_finds_templates() {
        let w = templated(10, 100);
        let out = compress(&w, CompressionOptions::default());
        assert_eq!(out.partitions, 10);
        assert!(out.compressed.len() < w.len() / 10, "kept {}", out.compressed.len());
        assert!(out.compression_ratio() > 10.0);
        // total weight preserved
        assert!((out.compressed.total_events() - w.total_events()).abs() < 1e-6);
    }

    #[test]
    fn small_partitions_kept_whole() {
        let w = templated(5, 2);
        let out = compress(&w, CompressionOptions::default());
        assert_eq!(out.compressed.len(), w.len());
    }

    #[test]
    fn distinct_statements_not_compressed() {
        // like TPCH22: all queries structurally different
        let mut items = Vec::new();
        for i in 0..22 {
            let sql = format!("SELECT c{i} FROM t{i} WHERE k{i} < 5 GROUP BY c{i}");
            items.push(WorkloadItem::new("db", parse_statement(&sql).unwrap()));
        }
        let w = Workload::from_items(items);
        let out = compress(&w, CompressionOptions::default());
        assert_eq!(out.compressed.len(), 22);
        assert_eq!(out.partitions, 22);
    }

    #[test]
    fn representatives_span_value_range() {
        // one template whose constants form two far-apart clusters: the
        // representatives should cover both
        let mut items = Vec::new();
        for v in (0..50).chain((0..50).map(|i| 100_000 + i)) {
            let sql = format!("SELECT a FROM t WHERE k < {v}");
            items.push(WorkloadItem::new("db", parse_statement(&sql).unwrap()));
        }
        let w = Workload::from_items(items);
        let out = compress(&w, CompressionOptions::default());
        let params: Vec<f64> =
            out.compressed.items.iter().map(|i| parameter_vector(&i.statement)[0]).collect();
        assert!(params.iter().any(|&p| p < 1000.0));
        assert!(params.iter().any(|&p| p > 99_000.0));
    }

    #[test]
    fn uniform_sampling_preserves_event_mass() {
        let w = templated(4, 50);
        let s = uniform_sample(&w, 0.1, 7);
        assert!(s.len() <= 20);
        assert!((s.total_events() - w.total_events()).abs() < 1e-6);
    }

    #[test]
    fn top_k_starves_cheap_templates() {
        // template 0 queries all cost 100; template 1 queries cost 1 —
        // top-k by cost never tunes template 1 (the §5.1 failure mode)
        let w = templated(2, 10);
        let costs: Vec<f64> =
            w.items.iter().enumerate().map(|(i, _)| if i < 10 { 100.0 } else { 1.0 }).collect();
        let kept = top_k_by_cost(&w, &costs, 0.9);
        let sigs: std::collections::BTreeSet<_> =
            kept.items.iter().map(|i| dta_sql::signature(&i.statement)).collect();
        assert_eq!(sigs.len(), 1, "only the expensive template survives");
    }

    #[test]
    fn identical_items_collapse_to_one() {
        let mut items = Vec::new();
        for _ in 0..100 {
            items.push(WorkloadItem::new(
                "db",
                parse_statement("SELECT a FROM t WHERE k < 5").unwrap(),
            ));
        }
        let w = Workload::from_items(items);
        let out = compress(&w, CompressionOptions::default());
        assert_eq!(out.compressed.len(), 1);
        assert_eq!(out.compressed.items[0].weight, 100.0);
    }
}
